//! # clp — Composable Lightweight Processors
//!
//! A full-stack reproduction of *"Composable Lightweight Processors"*
//! (Kim et al., MICRO 2007): the TFlex composable chip multiprocessor,
//! its EDGE instruction set, the distributed microarchitectural protocols
//! that make composition work, and the paper's complete evaluation
//! harness.
//!
//! This facade crate re-exports every layer of the stack:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`isa`] | `clp-isa` | block-atomic EDGE ISA, hyperblocks, assembler |
//! | [`compiler`] | `clp-compiler` | mini-IR, if-conversion, EDGE codegen |
//! | [`lint`] | `clp-lint` | semantic static analysis of blocks and programs |
//! | [`noc`] | `clp-noc` | 2-D mesh operand/control networks |
//! | [`predictor`] | `clp-predictor` | composable next-block predictor |
//! | [`mem`] | `clp-mem` | L1 banks, LSQs, S-NUCA L2, coherence, DRAM |
//! | [`obs`] | `clp-obs` | cycle-level tracing + unified stats registry |
//! | [`sim`] | `clp-sim` | the TFlex/TRIPS cycle-level simulator |
//! | [`power`] | `clp-power` | area and energy models |
//! | [`workloads`] | `clp-workloads` | the 26-kernel benchmark suite |
//! | [`baseline`] | `clp-baseline` | conventional out-of-order reference |
//! | [`alloc`] | `clp-alloc` | weighted-speedup core allocation |
//! | [`core`] | `clp-core` | high-level experiment API |
//! | [`serve`] | `clp-serve` | deterministic fault-tolerant job service |
//!
//! ## Quickstart
//!
//! ```
//! use clp::core::{run_workload, ProcessorConfig};
//! use clp::workloads::suite;
//!
//! let kernel = suite::by_name("conv").expect("kernel exists");
//! let result = run_workload(&kernel, &ProcessorConfig::tflex(4)).expect("runs");
//! assert!(result.stats.cycles > 0);
//! assert!(result.correct, "golden output must match");
//! ```

pub use clp_alloc as alloc;
pub use clp_baseline as baseline;
pub use clp_compiler as compiler;
pub use clp_core as core;
pub use clp_isa as isa;
pub use clp_lint as lint;
pub use clp_mem as mem;
pub use clp_noc as noc;
pub use clp_obs as obs;
pub use clp_power as power;
pub use clp_predictor as predictor;
pub use clp_serve as serve;
pub use clp_sim as sim;
pub use clp_workloads as workloads;
