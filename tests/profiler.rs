//! clp-prof acceptance tests: the cycle-accounting layer is exact
//! (per-block buckets tile the fetch-to-commit span), bounded (the
//! critical path never exceeds elapsed cycles), deterministic, and free
//! (profiled and unprofiled runs produce bit-identical cycle counts).

mod common;

use clp::core::{
    compile_workload, run_compiled, run_compiled_observed, ObsOptions, ProcessorConfig,
};
use clp::obs::ProfileReport;
use clp::workloads::suite;
use proptest::prelude::*;

fn profiled(name: &str, cfg: &ProcessorConfig) -> (u64, ProfileReport) {
    let cw = compile_workload(&suite::by_name(name).unwrap()).unwrap();
    let obs = ObsOptions {
        profile: true,
        ..ObsOptions::default()
    };
    let r = run_compiled_observed(&cw, cfg, &obs).expect("runs");
    (r.stats.cycles, r.profile.expect("profile present"))
}

fn check_invariants(report: &ProfileReport, cycles: u64) {
    assert_eq!(report.elapsed, cycles);
    assert!(
        report.crit_path_cycles() <= report.elapsed,
        "critical path {} exceeds elapsed {}",
        report.crit_path_cycles(),
        report.elapsed
    );
    for (pi, pp) in report.procs.iter().enumerate() {
        assert!(pp.blocks > 0, "proc {pi} committed no blocks");
        // Per-block top-down buckets sum exactly to the summed
        // fetch-to-commit spans (the walk tiles each span).
        assert_eq!(
            pp.block_buckets.total(),
            pp.block_cycles,
            "proc {pi}: block buckets do not tile the block spans"
        );
        // Run-level commit-pull accounting sums to the final commit
        // cycle, which is bounded by the elapsed time.
        assert_eq!(
            pp.run_buckets.total(),
            pp.crit_path_cycles,
            "proc {pi}: run buckets do not sum to the critical path"
        );
        assert!(pp.crit_path_cycles <= report.elapsed);
    }
    // Per-core attribution is exactly the run-level book, re-binned.
    let core_total: u64 = report.core_cycles.iter().sum();
    let run_total: u64 = report.procs.iter().map(|p| p.run_buckets.total()).sum();
    assert_eq!(core_total, run_total);
}

/// Buckets sum to spans and the critical path is bounded, across the
/// suite and composition sizes (including TRIPS centralized control).
#[test]
fn buckets_tile_spans_across_the_suite() {
    for name in ["conv", "tblook", "bezier", "genalg"] {
        for n in [1usize, 4, 16] {
            let (cycles, report) = profiled(name, &ProcessorConfig::tflex(n));
            check_invariants(&report, cycles);
        }
    }
    let (cycles, report) = profiled("conv", &ProcessorConfig::trips());
    check_invariants(&report, cycles);
}

/// Same seed, same configuration: the full breakdown (JSON schema
/// included) is identical between runs.
#[test]
fn profile_is_deterministic() {
    for name in ["conv", "equake"] {
        let (c1, r1) = profiled(name, &ProcessorConfig::tflex(8));
        let (c2, r2) = profiled(name, &ProcessorConfig::tflex(8));
        assert_eq!(c1, c2, "{name} cycles drifted between runs");
        assert_eq!(
            r1.to_json_value(),
            r2.to_json_value(),
            "{name} breakdown drifted between runs"
        );
    }
}

/// Profiling is observation only: enabling it leaves every cycle count
/// bit-identical, including against the pre-fault-layer goldens that
/// gate the fig5/TRIPS numbers.
#[test]
fn profiling_never_perturbs_cycle_counts() {
    let goldens: [(&str, usize, u64); 3] = [
        ("conv", 4, 9_383),
        ("conv", 32, 7_085),
        ("bezier", 32, 5_012),
    ];
    for (name, cores, want) in goldens {
        let cfg = ProcessorConfig::tflex(cores);
        let cw = compile_workload(&suite::by_name(name).unwrap()).unwrap();
        let off = run_compiled(&cw, &cfg).expect("runs");
        let (on_cycles, _) = profiled(name, &cfg);
        assert_eq!(off.stats.cycles, want, "{name} x{cores} golden drifted");
        assert_eq!(
            on_cycles, want,
            "{name} x{cores}: profiling perturbed the cycle count"
        );
    }
    // TRIPS golden too (centralized control path).
    let cw = compile_workload(&suite::by_name("conv").unwrap()).unwrap();
    let off = run_compiled(&cw, &ProcessorConfig::trips()).expect("runs");
    let (on_cycles, _) = profiled("conv", &ProcessorConfig::trips());
    assert_eq!(off.stats.cycles, 7_672);
    assert_eq!(on_cycles, 7_672);
}

/// The profile also lands in the stats registry under `profile/`.
#[test]
fn profile_appears_in_the_snapshot() {
    let cw = compile_workload(&suite::by_name("conv").unwrap()).unwrap();
    let obs = ObsOptions {
        profile: true,
        ..ObsOptions::default()
    };
    let r = run_compiled_observed(&cw, &ProcessorConfig::tflex(4), &obs).expect("runs");
    assert!(r.snapshot.expect("profile/elapsed") > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The tiling invariant holds for arbitrary generated programs, not
    /// just the hand-written suite.
    #[test]
    fn buckets_tile_spans_on_generated_programs(
        stmts in prop::collection::vec(common::arb_stmt(2), 1..6),
        seeds in prop::collection::vec(-50i64..50, 1..4),
    ) {
        let w = common::build_workload(&stmts, &seeds);
        let cw = compile_workload(&w).unwrap();
        let obs = ObsOptions { profile: true, ..ObsOptions::default() };
        for n in [1usize, 4] {
            let r = run_compiled_observed(&cw, &ProcessorConfig::tflex(n), &obs).expect("runs");
            let report = r.profile.expect("profile present");
            prop_assert_eq!(report.elapsed, r.stats.cycles);
            prop_assert!(report.crit_path_cycles() <= report.elapsed);
            for pp in &report.procs {
                prop_assert_eq!(pp.block_buckets.total(), pp.block_cycles);
                prop_assert_eq!(pp.run_buckets.total(), pp.crit_path_cycles);
            }
        }
    }
}
