//! Integration suite for clp-serve: deterministic replay, panic
//! isolation, deadline kills with budget escalation, recovery-failure
//! retries, overload shedding, graceful degradation, and full drain.
//!
//! Everything here leans on the service's central contract: no
//! wall-clock anywhere, so one `(arrival schedule, config)` pair
//! reproduces the entire run — including every retry, panic, and shed
//! job — byte-for-byte.

use clp::serve::{
    arrivals::{self, ArrivalConfig},
    serve, JobOutcome, JobSpec, Rejected, ServiceConfig, ServiceReport,
};
use clp::sim::FaultPlan;

fn chaos_arrivals() -> ArrivalConfig {
    // A small but fully loaded schedule: a planted panic, a doomed
    // one-core kill job (guaranteed recovery failure on attempt 0), and
    // tight budgets that force deadline kills + escalation.
    ArrivalConfig {
        jobs: 10,
        seed: 1234,
        mean_gap: 4_000,
        budget: 200_000,
        // Stride 4 puts the tight budgets on ids 3 and 7 — deliberately
        // away from the kill job, which must recover on a full budget.
        tight_every: 4,
        tight_budget: 2_500,
        plant_panic: vec![2],
        kill_at: vec![(4, 600)],
    }
}

fn quiet_cfg() -> ServiceConfig {
    ServiceConfig {
        workers: 3,
        seed: 1234,
        ..ServiceConfig::default()
    }
}

#[test]
fn same_seed_replays_byte_for_byte() {
    let acfg = chaos_arrivals();
    let scfg = quiet_cfg();
    let run = || {
        let result = serve(arrivals::generate(&acfg), &scfg);
        ServiceReport::new(&acfg, &scfg, &result).to_json()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "clp-serve-v1 reports must be byte-identical");
    assert!(a.contains("\"schema\": \"clp-serve-v1\""));
}

#[test]
fn chaos_run_survives_panic_kill_and_deadline_without_corrupting_siblings() {
    // The acceptance run: one seeded service run absorbing a worker
    // panic, a no-survivor core kill (recovery failure), and deadline
    // kills — while every job not deliberately doomed completes.
    let acfg = chaos_arrivals();
    let scfg = quiet_cfg();
    let result = serve(arrivals::generate(&acfg), &scfg);
    let t = &result.totals;
    assert_eq!(t.submitted, 10);
    assert_eq!(t.panics, 1, "the planted panic fired");
    assert_eq!(t.respawns, 1, "the poisoned worker was respawned");
    assert!(t.transient_failures >= 1, "the kill job failed transiently");
    assert!(t.deadline_kills >= 1, "tight budgets were reaped");
    // Every submitted job reached a terminal state; nothing hung or
    // vanished.
    assert_eq!(result.records.len(), 10);
    // The sabotaged and killed jobs recovered via retry.
    let by_id = |id: u64| {
        result
            .records
            .iter()
            .find(|r| r.id == id)
            .expect("record exists")
    };
    assert!(by_id(2).outcome.is_completed(), "panicked job retried OK");
    assert!(by_id(4).outcome.is_completed(), "killed job retried OK");
    assert!(by_id(2).attempts >= 2);
    assert!(by_id(4).attempts >= 2);
    // No permanent failures: all of the suite verifies.
    assert_eq!(t.failed_permanent, 0);
}

#[test]
fn planted_panic_leaves_sibling_cycle_counts_untouched() {
    // Two identical schedules, except one plants a panic in job 1.
    // Simulated cycle counts are pure functions of (workload, cores,
    // budget, faults), so every *other* job must report exactly the
    // same cycles in both runs — panic isolation down to the cycle.
    let schedule = |sabotage: bool| {
        let mut jobs = vec![
            (1_000u64, JobSpec::new(0, "conv", 8, 200_000)),
            (2_000, JobSpec::new(1, "bezier", 4, 200_000)),
            (3_000, JobSpec::new(2, "autocor", 4, 200_000)),
            (4_000, JobSpec::new(3, "tblook", 2, 200_000)),
        ];
        jobs[1].1.sabotage = sabotage;
        jobs
    };
    let cfg = quiet_cfg();
    let clean = serve(schedule(false), &cfg);
    let chaotic = serve(schedule(true), &cfg);
    assert_eq!(chaotic.totals.panics, 1);
    assert_eq!(clean.totals.panics, 0);
    for id in [0u64, 2, 3] {
        let cycles = |r: &clp::serve::ServiceResult| match r
            .records
            .iter()
            .find(|rec| rec.id == id)
            .expect("record")
            .outcome
        {
            JobOutcome::Completed { cycles } => cycles,
            ref other => panic!("job {id} should complete, got {other:?}"),
        };
        assert_eq!(
            cycles(&clean),
            cycles(&chaotic),
            "job {id} cycle count perturbed by sibling panic"
        );
    }
    // The sabotaged job itself still completes, one retry later.
    assert!(chaotic
        .records
        .iter()
        .find(|r| r.id == 1)
        .unwrap()
        .outcome
        .is_completed());
}

#[test]
fn deadline_kills_escalate_budget_until_success() {
    // conv at 8 cores needs ~7k cycles. A 2k budget dies, 4k dies, 8k
    // succeeds: two deadline kills, two retries, then completion.
    let jobs = vec![(1u64, JobSpec::new(0, "conv", 8, 2_000))];
    let r = serve(jobs, &quiet_cfg());
    assert_eq!(r.totals.deadline_kills, 2);
    assert_eq!(r.totals.retries, 2);
    assert_eq!(r.totals.completed, 1);
    assert_eq!(r.records[0].attempts, 3);
}

#[test]
fn recovery_failure_from_kill_schedule_is_retried_fault_free() {
    // Killing the only core of a 1-core composition leaves no survivor:
    // attempt 0 fails transiently; the retry runs fault-free by policy
    // and completes.
    let mut spec = JobSpec::new(0, "conv", 1, 500_000);
    spec.faults.add_kill(0, 500).expect("valid kill");
    let r = serve(vec![(1, spec)], &quiet_cfg());
    assert_eq!(r.totals.transient_failures, 1);
    assert_eq!(r.totals.retries, 1);
    assert_eq!(r.totals.completed, 1);
    assert_eq!(r.records[0].attempts, 2);
}

#[test]
fn overload_sheds_at_a_pinned_deterministic_rate() {
    // One worker, queue capped at 3: ten near-simultaneous long jobs.
    // Job 0 dispatches, jobs 1-3 queue; every later arrival sees a full
    // queue and is shed with a typed Overloaded rejection.
    let cfg = ServiceConfig {
        workers: 1,
        queue_cap: 3,
        degrade_at: 2,
        seed: 7,
        ..ServiceConfig::default()
    };
    let jobs: Vec<(u64, JobSpec)> = (0..10)
        .map(|i| (i + 1, JobSpec::new(i, "conv", 8, 200_000)))
        .collect();
    let r = serve(jobs, &cfg);
    assert_eq!(r.totals.rejected_overloaded, 6, "exactly jobs 4..=9 shed");
    assert_eq!(r.totals.admitted, 4);
    assert_eq!(r.totals.completed, 4);
    assert_eq!(r.totals.max_queue_depth, 3);
    for rec in r.records.iter().filter(|rec| rec.id >= 4) {
        assert!(
            matches!(
                rec.outcome,
                JobOutcome::Rejected(Rejected::Overloaded { depth: 3 })
            ),
            "job {} should be shed at depth 3, got {:?}",
            rec.id,
            rec.outcome
        );
    }
}

#[test]
fn degradation_halves_composition_before_refusing() {
    // Queue deep enough to cross the degrade watermark but not the cap:
    // later arrivals are admitted at half their requested size.
    let cfg = ServiceConfig {
        workers: 1,
        queue_cap: 8,
        degrade_at: 2,
        seed: 7,
        ..ServiceConfig::default()
    };
    let jobs: Vec<(u64, JobSpec)> = (0..5)
        .map(|i| (i + 1, JobSpec::new(i, "conv", 16, 200_000)))
        .collect();
    let r = serve(jobs, &cfg);
    assert_eq!(r.totals.rejected_overloaded, 0);
    assert_eq!(r.totals.degraded, 2, "jobs 3 and 4 arrive above watermark");
    let granted: Vec<usize> = r.records.iter().map(|rec| rec.cores_granted).collect();
    assert_eq!(granted, vec![16, 16, 16, 8, 8]);
    assert_eq!(r.totals.completed, 5, "degraded jobs still run and verify");
}

#[test]
fn malformed_jobs_get_typed_rejections_not_panics() {
    let jobs = vec![
        (1u64, JobSpec::new(0, "not-a-workload", 8, 1_000)),
        (2, JobSpec::new(1, "conv", 5, 1_000)),
        (3, JobSpec::new(2, "conv", 8, 0)),
        (4, JobSpec::new(3, "conv", 8, 200_000)),
    ];
    let r = serve(jobs, &quiet_cfg());
    assert_eq!(r.totals.rejected_invalid, 3);
    assert_eq!(r.totals.completed, 1, "the well-formed job is unaffected");
    assert!(matches!(
        r.records[0].outcome,
        JobOutcome::Rejected(Rejected::UnknownWorkload { .. })
    ));
    assert!(matches!(
        r.records[1].outcome,
        JobOutcome::Rejected(Rejected::InvalidCores { cores: 5 })
    ));
    assert!(matches!(
        r.records[2].outcome,
        JobOutcome::Rejected(Rejected::ZeroBudget)
    ));
}

#[test]
fn service_drains_gracefully_on_shutdown() {
    // Drain contract: serve() returns only after every admitted job —
    // including retries in flight when arrivals stop — reaches a
    // terminal record, and the pool threads are joined on drop.
    let acfg = chaos_arrivals();
    let scfg = quiet_cfg();
    let r = serve(arrivals::generate(&acfg), &scfg);
    let t = &r.totals;
    let terminal =
        t.completed + t.rejected_overloaded + t.rejected_invalid + t.failed_permanent + t.exhausted;
    assert_eq!(terminal, t.submitted, "every job reached a terminal state");
    assert_eq!(r.records.len(), acfg.jobs);
    // Drained strictly after the last arrival was processed.
    let last_arrival = arrivals::generate(&acfg).last().unwrap().0;
    assert!(t.drained_at >= last_arrival);
    // Ids are unique and sorted in the report.
    for pair in r.records.windows(2) {
        assert!(pair[0].id < pair[1].id);
    }
}

#[test]
fn fault_free_plan_is_default_and_kill_plans_round_trip() {
    // Sanity on the job-facing fault surface the service exposes.
    let spec = JobSpec::new(0, "conv", 4, 1_000);
    assert_eq!(spec.faults, FaultPlan::none());
    let mut with_kill = spec.clone();
    with_kill.faults.add_kill(2, 99).expect("valid");
    assert_ne!(with_kill.faults, FaultPlan::none());
}
