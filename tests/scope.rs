//! Integration suite for clp-scope: span-tree invariants over random
//! seeded arrival streams, byte-identical scope-on replay against the
//! committed `SCOPE_serve.json` golden, and the observational guarantee
//! that turning scope on does not change the `clp-serve-v1` document.
//!
//! The span invariants are structural: a job's lifecycle must *tile* —
//! queued, attempt, and backoff spans meet edge-to-edge from arrival to
//! finish with no gaps and no overlaps — and the worker occupancy
//! tracks must never double-book a slot. Any scheduler change that
//! breaks the event ordering contract shows up here as a torn span.

use clp::obs::{ScopeOptions, ScopeReport, Terminal};
use clp::serve::{
    arrivals::{self, ArrivalConfig},
    serve_scoped, ServiceConfig, ServiceReport,
};
use proptest::prelude::*;

/// The exact configuration `clp-serve --bench` / `clp-scope --bench`
/// pin, so this suite guards the same run CI replays.
fn bench_arrivals() -> ArrivalConfig {
    ArrivalConfig {
        jobs: 48,
        seed: 42,
        mean_gap: 3_000,
        budget: 200_000,
        tight_every: 7,
        tight_budget: 2_500,
        plant_panic: vec![5, 23],
        kill_at: vec![(11, 800)],
    }
}

fn bench_cfg() -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        queue_cap: 8,
        degrade_at: 6,
        max_retries: 3,
        seed: 42,
        ..ServiceConfig::default()
    }
}

/// Asserts every structural span invariant on one scope report.
fn assert_span_invariants(rep: &ScopeReport) {
    let mut completed = 0u64;
    for j in &rep.jobs {
        let executed = !matches!(j.terminal, Terminal::Shed | Terminal::Invalid);
        if !executed {
            // Rejected at admission: no lifecycle beyond the arrival.
            assert!(j.queued.is_empty(), "job {}: shed jobs have no spans", j.id);
            assert!(j.attempts.is_empty());
            assert_eq!(j.finish, j.arrival);
            continue;
        }
        if matches!(j.terminal, Terminal::Completed { .. }) {
            completed += 1;
        }
        // The lifecycle tiles: queued[k] | attempt[k] | backoff[k] |
        // queued[k+1] | ... with every edge meeting exactly.
        assert_eq!(
            j.attempts.len(),
            j.backoffs.len() + 1,
            "job {}: one more attempt than backoffs",
            j.id
        );
        assert_eq!(j.queued.len(), j.attempts.len(), "job {}", j.id);
        assert_eq!(j.queued[0].start, j.arrival, "job {}", j.id);
        for (k, a) in j.attempts.iter().enumerate() {
            assert_eq!(j.queued[k].end, a.start, "job {} attempt {k}", j.id);
            assert!(a.start <= a.end, "job {} attempt {k}", j.id);
            if let Some(c) = &a.compile {
                // A cache miss compiles inside the attempt, never a hit.
                assert!(!a.cache_hit, "job {} attempt {k}: hit never compiles", j.id);
                assert!(c.start >= a.start && c.end <= a.end, "job {}", j.id);
            }
            if let Some(b) = j.backoffs.get(k) {
                assert_eq!(a.end, b.start, "job {} backoff {k}", j.id);
                assert_eq!(
                    b.end,
                    j.queued[k + 1].start,
                    "job {} backoff {k} releases into the next queued span",
                    j.id
                );
            }
        }
        assert_eq!(
            j.attempts.last().expect("executed jobs attempt").end,
            j.finish,
            "job {}: the last attempt ends the lifecycle",
            j.id
        );
        assert!(j.finish <= rep.drained_at, "job {}", j.id);
    }

    // Worker occupancy: per-slot slices are sorted and disjoint.
    assert_eq!(rep.tracks.len(), rep.workers);
    for (w, track) in rep.tracks.iter().enumerate() {
        for pair in track.slices.windows(2) {
            assert!(
                pair[0].end <= pair[1].start,
                "worker {w}: occupancy overlaps ({:?} then {:?})",
                (pair[0].job, pair[0].start, pair[0].end),
                (pair[1].job, pair[1].start, pair[1].end),
            );
        }
    }
    // Every occupancy slice is some job's attempt, edge for edge.
    for track in &rep.tracks {
        for s in &track.slices {
            let j = rep.jobs.iter().find(|j| j.id == s.job).expect("job exists");
            let a = &j.attempts[s.attempt as usize];
            assert_eq!((a.start, a.end), (s.start, s.end));
        }
    }

    // The fleet book is exactly the sum of the per-job run-level books.
    assert_eq!(rep.fleet.total.jobs, completed);
    let mut want = clp::obs::BucketCycles::default();
    let mut want_sim = 0u64;
    for j in &rep.jobs {
        if let Some(book) = &j.book {
            want.merge(book);
        }
        if let Terminal::Completed { cycles } = &j.terminal {
            want_sim += cycles;
        }
    }
    assert_eq!(rep.fleet.total.buckets, want, "fleet book = sum of job books");
    assert_eq!(rep.fleet.total.sim_cycles, want_sim);
    let by_class: u64 = rep.fleet.by_class.values().map(|b| b.sim_cycles).sum();
    let by_cores: u64 = rep.fleet.by_cores.values().map(|b| b.sim_cycles).sum();
    assert_eq!(by_class, want_sim, "class rollups partition the fleet");
    assert_eq!(by_cores, want_sim, "size rollups partition the fleet");
}

#[test]
fn bench_replay_is_byte_identical_and_matches_the_committed_goldens() {
    let acfg = bench_arrivals();
    let scfg = bench_cfg();
    let opts = ScopeOptions::default();
    let run = || serve_scoped(arrivals::generate(&acfg), &scfg, Some(&opts));

    let (result_a, scope_a) = run();
    let (result_b, scope_b) = run();
    let scope_a = scope_a.expect("scope on");
    let scope_b = scope_b.expect("scope on");

    // Same (seed, job list) => byte-identical clp-scope-v1 documents.
    assert_eq!(
        scope_a.to_json(),
        scope_b.to_json(),
        "scope replay must be byte-identical"
    );
    assert_eq!(result_a, result_b);

    // ... and identical to the committed golden.
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/SCOPE_serve.json");
    let golden = std::fs::read_to_string(golden_path).expect("committed SCOPE_serve.json");
    assert_eq!(
        scope_a.to_json(),
        golden,
        "replay diverged from SCOPE_serve.json; regenerate with \
         `clp-scope --bench --json SCOPE_serve.json` if intentional"
    );

    // Scope is observational: the clp-serve-v1 document of the scope-on
    // run is the committed scope-off benchmark, byte for byte.
    let bench_path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_serve.json");
    let bench = std::fs::read_to_string(bench_path).expect("committed BENCH_serve.json");
    let rep = ServiceReport::new(&acfg, &scfg, &result_a).to_json();
    assert_eq!(rep, bench, "scope on must not perturb the service document");

    // The chaotic bench run satisfies every span invariant too.
    assert_span_invariants(&scope_a);
    assert_eq!(scope_a.fleet.total.jobs, result_a.totals.completed);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 50,
        ..ProptestConfig::default()
    })]

    #[test]
    fn span_invariants_hold_over_random_arrival_streams(
        jobs in 1usize..10,
        seed in 0u64..512,
        workers in 1usize..4,
        queue_cap in 1usize..6,
        tight_every in 0usize..5,
        panic_pick in 0u64..4,
    ) {
        let acfg = ArrivalConfig {
            jobs,
            seed,
            mean_gap: 2_500,
            budget: 150_000,
            tight_every,
            tight_budget: 2_000,
            // Sometimes sabotage a job that may or may not exist.
            plant_panic: vec![panic_pick],
            kill_at: vec![],
        };
        let scfg = ServiceConfig {
            workers,
            queue_cap,
            degrade_at: queue_cap.max(2) - 1,
            max_retries: 2,
            seed,
            ..ServiceConfig::default()
        };
        let (result, scope) =
            serve_scoped(arrivals::generate(&acfg), &scfg, Some(&ScopeOptions::default()));
        let scope = scope.expect("scope on");
        prop_assert_eq!(scope.jobs.len(), jobs, "every submitted job gets a span tree");
        prop_assert_eq!(scope.fleet.total.jobs, result.totals.completed);
        prop_assert_eq!(scope.drained_at, result.totals.drained_at);
        assert_span_invariants(&scope);
    }
}
