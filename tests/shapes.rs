//! Shape-regression tests: pin the qualitative results the paper's
//! figures claim, so refactors cannot silently flatten a curve or flip a
//! comparison. (Exact cycle counts are free to drift; these inequalities
//! are not.)

use clp::core::{compile_workload, run_compiled, ProcessorConfig};
use clp::power::{perf2_per_watt, perf_per_area};
use clp::workloads::suite;

fn cycles(name: &str, cores: usize) -> (u64, clp::core::RunOutcome) {
    let cw = compile_workload(&suite::by_name(name).unwrap()).unwrap();
    let r = run_compiled(&cw, &ProcessorConfig::tflex(cores)).unwrap();
    (r.stats.cycles, r)
}

/// Fig. 6 shape: a high-ILP kernel speeds up substantially toward
/// mid-size compositions; a serial kernel does not.
#[test]
fn high_ilp_scales_low_ilp_does_not() {
    let (a1, _) = cycles("autocor", 1);
    let (a8, _) = cycles("autocor", 8);
    assert!(
        a1 as f64 / a8 as f64 > 2.0,
        "autocor speedup at 8 cores: {:.2}",
        a1 as f64 / a8 as f64
    );
    // tblook (dependent-branch binary search, tiny footprint) gains
    // little from more cores. (mcf is deliberately NOT used here: its
    // pointer chase speeds up from composed L1 *capacity*, which is a
    // real TFlex effect the paper calls out, not an ILP effect.)
    let (t1, _) = cycles("tblook", 1);
    let (t32, _) = cycles("tblook", 32);
    assert!(
        t1 as f64 / (t32 as f64) < 2.0,
        "tblook must not scale like a parallel kernel"
    );
}

/// Fig. 6 shape: 32 cores is past the knee for most work — bigger is not
/// always faster.
#[test]
fn thirty_two_cores_is_past_the_knee_for_serial_code() {
    let (t4, _) = cycles("tblook", 4);
    let (t32, _) = cycles("tblook", 32);
    assert!(
        t32 > t4,
        "tblook at 32 cores ({t32}) should be slower than at 4 ({t4})"
    );
}

/// Fig. 7 shape: area efficiency peaks at small compositions.
#[test]
fn area_efficiency_peaks_small() {
    for name in ["conv", "gcc"] {
        let (c1, r1) = cycles(name, 1);
        let (c16, r16) = cycles(name, 16);
        let e1 = perf_per_area(c1, r1.area_mm2);
        let e16 = perf_per_area(c16, r16.area_mm2);
        assert!(e1 > e16, "{name}: 1-core must be more area-efficient");
    }
}

/// Fig. 8 shape: power efficiency peaks strictly between the extremes
/// for a kernel with moderate ILP.
#[test]
fn power_efficiency_peaks_in_the_middle() {
    let (c1, r1) = cycles("conv", 1);
    let (c4, r4) = cycles("conv", 4);
    let (c32, r32) = cycles("conv", 32);
    let e1 = perf2_per_watt(c1, r1.power.total());
    let e4 = perf2_per_watt(c4, r4.power.total());
    let e32 = perf2_per_watt(c32, r32.power.total());
    assert!(e4 > e1, "4 cores should beat 1 on perf^2/W for conv");
    assert!(e4 > e32, "4 cores should beat 32 on perf^2/W for conv");
}

/// Fig. 6's TRIPS comparison: the 8-core TFlex (same issue width and
/// area) is at least as fast as the TRIPS baseline on high-ILP kernels.
#[test]
fn eight_core_tflex_matches_or_beats_trips() {
    for name in ["conv", "autocor", "art"] {
        let cw = compile_workload(&suite::by_name(name).unwrap()).unwrap();
        let tflex = run_compiled(&cw, &ProcessorConfig::tflex(8)).unwrap();
        let trips = run_compiled(&cw, &ProcessorConfig::trips()).unwrap();
        assert!(
            tflex.stats.cycles <= trips.stats.cycles * 11 / 10,
            "{name}: 8-core TFlex ({}) should not lose badly to TRIPS ({})",
            tflex.stats.cycles,
            trips.stats.cycles
        );
    }
}

/// Fig. 5's window argument: the EDGE machine's large distributed window
/// wins on memory-latency-bound pointer chasing.
#[test]
fn trips_beats_the_ooo_baseline_on_mcf() {
    let w = suite::by_name("mcf").unwrap();
    let cw = compile_workload(&w).unwrap();
    let trips = run_compiled(&cw, &ProcessorConfig::trips()).unwrap();
    let base = clp::baseline::run_baseline(
        &w.program,
        &w.args,
        &w.init_mem,
        &clp::baseline::BaselineConfig::core2(),
    );
    assert!(
        trips.stats.cycles < base.cycles,
        "TRIPS ({}) should beat the 96-entry-window baseline ({}) on mcf",
        trips.stats.cycles,
        base.cycles
    );
}
