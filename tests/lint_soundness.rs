//! Lint soundness: the error-severity diagnostics in `clp-lint` claim a
//! block *cannot* execute correctly (an exit never fires, a write or
//! store slot deadlocks, memory order is ambiguous). So on randomly
//! generated programs that provably run clean — the reference
//! interpreter terminates and the self-checking workload verifies — the
//! linter must report **zero errors**. Warnings and infos are heuristic
//! and allowed.
//!
//! The generator (see `tests/common/mod.rs`) covers predicated
//! hyperblocks (if-conversion of diamonds), multi-exit blocks
//! (conditional early returns, rotated loops), and disambiguated memory
//! traffic, so this exercises every block-level analysis on realistic
//! codegen output.

mod common;

use clp::compiler::{compile, interpret, CompileOptions};
use clp::lint::{lint_program, LintConfig, Severity};
use common::{arb_stmt, build_workload, Stmt};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn clean_programs_have_zero_error_lints(
        stmts in prop::collection::vec(arb_stmt(3), 1..8),
        seeds in prop::collection::vec(-50i64..50, 1..4),
    ) {
        let w = build_workload(&stmts, &seeds);

        // Prove the program runs clean before holding the linter to it.
        let mut image = w.initial_image();
        let golden = interpret(&w.program, &w.args, &mut image, 50_000_000)
            .expect("generated programs terminate");
        prop_assert!(golden.ret.is_some());

        let edge = compile(&w.program, &CompileOptions::default()).expect("compiles");
        let report = lint_program(&edge, &LintConfig::default());
        let errors: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        prop_assert!(
            errors.is_empty(),
            "sound lints fired on a clean program: {errors:#?}"
        );
    }
}

#[test]
fn generator_reaches_predicated_and_multi_exit_blocks() {
    // The soundness property is only meaningful if the generator really
    // produces the shapes the lints reason about. Build a directed
    // program and check the compiled output has them.
    let stmts = vec![
        Stmt::If {
            cond: 0,
            then_s: vec![Stmt::Store(1, 2), Stmt::Const(3)],
            else_s: vec![Stmt::Store(2, 1)],
        },
        Stmt::IfRet { cond: 1, val: 0 },
        Stmt::Loop {
            trips: 3,
            body: vec![Stmt::Bin(clp::isa::Opcode::Add, 0, 1)],
        },
    ];
    let w = build_workload(&stmts, &[7, 9]);
    let edge = compile(&w.program, &CompileOptions::default()).expect("compiles");
    let predicated = edge
        .iter()
        .any(|(_, b)| b.instructions().iter().any(|i| i.pred.is_some()));
    let multi_exit = edge.iter().any(|(_, b)| b.exits().len() >= 2);
    assert!(predicated, "no predicated instructions generated");
    assert!(multi_exit, "no multi-exit blocks generated");

    let report = lint_program(&edge, &LintConfig::default());
    assert_eq!(
        report.error_count(),
        0,
        "directed program lints clean:\n{}",
        clp::lint::render_report(&report, Some(&edge))
    );
}
