//! Chaos suite: deterministic fault injection across the distributed
//! protocols must cost cycles, never correctness.
//!
//! Sweeps every fault kind alone and all of them together, at
//! composition sizes 1, 4, and 32, over several workloads. Every
//! injected run must still verify against the interpreter golden and
//! terminate without tripping the watchdog; `FaultPlan::none()` must be
//! bit-identical to the pre-fault-layer simulator.

use clp::core::{
    compile_workload, run_compiled, run_compiled_observed, CompiledWorkload, FaultPlan, ObsOptions,
    ProcessorConfig, ALL_FAULT_KINDS,
};
use clp::obs::{RingRecorder, Tracer};
use clp::sim::{ComposeError, Machine, SimConfig};
use std::sync::{Arc, Mutex};

/// The composition sizes the chaos suite sweeps.
const CHAOS_SIZES: [usize; 3] = [1, 4, 32];

fn compiled(name: &str) -> CompiledWorkload {
    let w = clp::workloads::suite::by_name(name).expect("known workload");
    compile_workload(&w).expect("compiles")
}

#[test]
fn each_fault_kind_alone_stays_correct_at_every_size() {
    let workloads = [compiled("conv"), compiled("tblook")];
    for kind in ALL_FAULT_KINDS {
        let mut injected_total = 0;
        for cw in &workloads {
            for (i, &cores) in CHAOS_SIZES.iter().enumerate() {
                let plan = FaultPlan::only(kind, 0xC1A0_5000 + i as u64, 150);
                let cfg = ProcessorConfig::tflex(cores).with_faults(plan);
                // `run_compiled` verifies against the golden internally:
                // Ok means the run terminated and the outputs matched.
                let r = run_compiled(cw, &cfg).unwrap_or_else(|e| {
                    panic!("{} under {kind} on {cores} cores: {e}", cw.workload.name)
                });
                assert!(r.correct);
                assert_eq!(
                    r.stats.faults.total(),
                    r.stats.faults.count(kind),
                    "only {kind} was enabled"
                );
                injected_total += r.stats.faults.count(kind);
            }
        }
        // Single-core runs keep some kinds silent (no cross-core operand
        // traffic, no hand-offs), but across the sweep each kind fires.
        assert!(injected_total > 0, "{kind} never fired across the sweep");
    }
}

#[test]
fn combined_chaos_still_verifies_and_counts_injections() {
    for name in ["conv", "tblook", "bezier"] {
        let cw = compiled(name);
        for &cores in &CHAOS_SIZES {
            let cfg = ProcessorConfig::tflex(cores).with_faults(FaultPlan::chaos(97, 100));
            let r = run_compiled(&cw, &cfg)
                .unwrap_or_else(|e| panic!("{name} under chaos on {cores} cores: {e}"));
            assert!(r.correct);
            assert!(
                r.stats.faults.total() > 0,
                "{name} on {cores} cores: chaos plan injected nothing"
            );
            // Injection counts are part of the unified stats registry.
            assert_eq!(
                r.snapshot.expect("faults/total"),
                r.stats.faults.total() as f64
            );
        }
    }
}

#[test]
fn faults_cost_cycles_and_same_seed_reproduces_them() {
    let cw = compiled("conv");
    let clean = run_compiled(&cw, &ProcessorConfig::tflex(4)).expect("runs");

    let cfg = ProcessorConfig::tflex(4).with_faults(FaultPlan::chaos(42, 100));
    let a = run_compiled(&cw, &cfg).expect("runs under chaos");
    let b = run_compiled(&cw, &cfg).expect("runs under chaos");
    assert_eq!(
        a.stats.cycles, b.stats.cycles,
        "same seed + same plan must reproduce the cycle count"
    );
    assert_eq!(a.stats.faults, b.stats.faults);
    assert!(
        a.stats.cycles >= clean.stats.cycles,
        "faults may only add cycles: {} < {}",
        a.stats.cycles,
        clean.stats.cycles
    );

    // A different seed draws a different injection stream.
    let c = run_compiled(
        &cw,
        &ProcessorConfig::tflex(4).with_faults(FaultPlan::chaos(43, 100)),
    )
    .expect("runs under chaos");
    assert!(
        c.stats.cycles != a.stats.cycles || c.stats.faults != a.stats.faults,
        "different seeds should perturb differently"
    );
}

#[test]
fn none_plan_is_bit_identical_to_the_default_config() {
    let cw = compiled("tblook");
    let default_cfg = ProcessorConfig::tflex(4);
    // A none() plan with a nonzero seed: zero rates never draw from the
    // PRNG, so the seed must not matter either.
    let mut none_plan = FaultPlan::none();
    none_plan.seed = 0xDEAD_BEEF;
    let with_none = ProcessorConfig::tflex(4).with_faults(none_plan);

    let a = run_compiled(&cw, &default_cfg).expect("runs");
    let b = run_compiled(&cw, &with_none).expect("runs");
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.faults.total(), 0);
    assert_eq!(b.stats.faults.total(), 0);
}

/// Pre-fault-layer cycle counts, captured on the commit before the fault
/// layer and the completion-queue rewrite landed. `FaultPlan::none()`
/// runs must reproduce them bit-for-bit (the S2/S7 acceptance gate).
#[test]
fn fault_free_cycle_counts_match_the_pre_fault_layer_goldens() {
    let goldens: [(&str, usize, u64); 5] = [
        ("conv", 1, 29_721),
        ("conv", 4, 9_383),
        ("conv", 32, 7_085),
        ("tblook", 4, 19_286),
        ("bezier", 32, 5_012),
    ];
    for (name, cores, want) in goldens {
        let cw = compiled(name);
        let r = run_compiled(&cw, &ProcessorConfig::tflex(cores)).expect("runs");
        assert_eq!(
            r.stats.cycles, want,
            "{name} on {cores} cores drifted from the pre-fault-layer golden"
        );
    }
    // TRIPS exercises the completion queue under centralized control.
    let trips: [(&str, u64); 3] = [("conv", 7_672), ("bezier", 4_397), ("tblook", 24_312)];
    for (name, want) in trips {
        let cw = compiled(name);
        let r = run_compiled(&cw, &ProcessorConfig::trips()).expect("runs");
        assert_eq!(
            r.stats.cycles, want,
            "{name} on TRIPS drifted from the pre-fault-layer golden"
        );
    }
}

#[test]
fn injections_appear_in_the_trace_stream() {
    let cw = compiled("conv");
    let rec = Arc::new(Mutex::new(RingRecorder::new(1 << 16)));
    let obs = ObsOptions {
        tracer: Tracer::shared(rec.clone()),
        ..ObsOptions::default()
    };
    let cfg = ProcessorConfig::tflex(4).with_faults(FaultPlan::chaos(11, 100));
    let r = run_compiled_observed(&cw, &cfg, &obs).expect("runs under chaos");
    assert!(r.stats.faults.total() > 0);
    let recorder = rec.lock().expect("not poisoned");
    let fault_events = recorder
        .events()
        .filter(|(_, e)| e.kind() == "fault_injected")
        .count();
    assert!(fault_events > 0, "no fault_injected events in the trace");
}

#[test]
fn compose_rejects_more_than_eight_args() {
    let cw = compiled("conv");
    let mut m = Machine::new(SimConfig::tflex());
    let err = m
        .compose(4, 0, cw.edge.clone(), &[0; 9])
        .expect_err("nine arguments exceed the argument registers");
    assert!(matches!(err, ComposeError::TooManyArgs(9)));
    assert!(err.to_string().contains('8'), "message names the limit");
    // Exactly eight is fine (the core is free again after the error).
    let mut m = Machine::new(SimConfig::tflex());
    m.compose(4, 0, cw.edge.clone(), &[0; 8])
        .expect("eight arguments fit r1..=r8");
}
