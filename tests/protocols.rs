//! Integration tests for the paper's protocol-level claims: composition
//! changes without cache flushes (§4.7), handshake-overhead behavior
//! (§6.4), the Figure 9 latency trends, and cross-run determinism.

use clp::core::{compile_workload, run_compiled, ProcessorConfig};
use clp::mem::{dbank_for, LoadResponse, MemConfig, MemorySystem};
use clp::sim::ProtocolTiming;
use clp::workloads::suite;

/// §4.7: after a composition change the new interleaving misses, and the
/// directory forwards/invalidates stale lines — no flush required.
#[test]
fn recomposition_preserves_coherence_without_flush() {
    let mut mem = MemorySystem::new(MemConfig::tflex(), 32);
    // Phase 1: a single-core processor on core 0 writes a line (all
    // addresses hash to bank 0 when n=1).
    let addr = 0x4000u64;
    assert_eq!(dbank_for(addr, 1), 0);
    let r = mem.execute_store(0, 32, addr, 8, 123);
    assert!(matches!(r, clp::mem::StoreResponse::Ok { .. }));
    mem.commit_stores(&[0], 32, 64);

    // Phase 2: recomposed as 4 cores; the same address now hashes to a
    // different participating bank. The load must see the committed value
    // and the access is a (coherence-served) miss, not a stale hit.
    let bank = dbank_for(addr, 4);
    let before = mem.stats();
    let resp = mem.execute_load(bank, 96, addr, 8);
    let LoadResponse::Ok { value, latency, .. } = resp else {
        panic!("load NACKed");
    };
    assert_eq!(value, 123, "directory must deliver the newest data");
    let after = mem.stats();
    if bank != 0 {
        assert_eq!(
            after.l1d_misses,
            before.l1d_misses + 1,
            "new bank misses on first access"
        );
        assert!(latency > 2, "coherence-served access is not an L1 hit");
    }
}

/// §6.4: idealized (instantaneous) handshakes are at least as fast as the
/// modeled protocol, and the gap at large compositions is modest.
#[test]
fn instant_handshakes_bound_the_modeled_protocol() {
    for name in ["conv", "tblook"] {
        let cw = compile_workload(&suite::by_name(name).unwrap()).unwrap();
        for n in [8usize, 32] {
            let modeled = run_compiled(&cw, &ProcessorConfig::tflex(n)).unwrap();
            let mut ideal_cfg = ProcessorConfig::tflex(n);
            ideal_cfg.sim.protocol = ProtocolTiming::Instant;
            let ideal = run_compiled(&cw, &ideal_cfg).unwrap();
            assert!(
                ideal.stats.cycles <= modeled.stats.cycles,
                "{name} x{n}: ideal {} > modeled {}",
                ideal.stats.cycles,
                modeled.stats.cycles
            );
            let overhead = modeled.stats.cycles as f64 / ideal.stats.cycles as f64 - 1.0;
            assert!(
                overhead < 0.6,
                "{name} x{n}: handshake overhead {overhead:.2} is implausible"
            );
        }
    }
}

/// Figure 9 trends: hand-off + fetch-distribution grow with composition
/// size while dispatch time shrinks; commit handshake grows while the
/// architectural update does not grow.
#[test]
fn fetch_and_commit_breakdown_trends() {
    let cw = compile_workload(&suite::by_name("genalg").unwrap()).unwrap();
    let mut prev_ctl = 0.0;
    let mut first_dispatch = 0.0;
    let mut last_dispatch = 0.0;
    let mut prev_handshake = 0.0;
    for (i, &n) in [2usize, 8, 32].iter().enumerate() {
        let r = run_compiled(&cw, &ProcessorConfig::tflex(n)).unwrap();
        let ps = &r.stats.procs[0];
        let f = ps.fetch_latency();
        let c = ps.commit_latency();
        let ctl = f.hand_off + f.fetch_distribution;
        assert!(
            ctl >= prev_ctl,
            "control overhead must grow with cores: {ctl} < {prev_ctl} at x{n}"
        );
        assert!(
            c.handshake >= prev_handshake,
            "commit handshake must grow with cores"
        );
        if i == 0 {
            first_dispatch = f.dispatch;
        }
        last_dispatch = f.dispatch;
        prev_ctl = ctl;
        prev_handshake = c.handshake;
    }
    assert!(
        last_dispatch <= first_dispatch,
        "dispatch time must shrink as fetch bandwidth scales: {first_dispatch} -> {last_dispatch}"
    );
}

/// Operand bandwidth: halving the mesh bandwidth never speeds things up.
#[test]
fn operand_bandwidth_monotonicity() {
    let cw = compile_workload(&suite::by_name("autocor").unwrap()).unwrap();
    let wide = run_compiled(&cw, &ProcessorConfig::tflex(16)).unwrap();
    let mut narrow_cfg = ProcessorConfig::tflex(16);
    narrow_cfg.sim.operand_net.link_bandwidth = 1;
    let narrow = run_compiled(&cw, &narrow_cfg).unwrap();
    assert!(narrow.stats.cycles >= wide.stats.cycles);
}

/// Same configuration, same inputs: identical cycle counts, for every
/// organization (the simulator is deterministic).
#[test]
fn determinism_across_the_suite() {
    for name in ["conv", "gcc", "equake"] {
        let cw = compile_workload(&suite::by_name(name).unwrap()).unwrap();
        for cfg in [ProcessorConfig::tflex(8), ProcessorConfig::trips()] {
            let a = run_compiled(&cw, &cfg).unwrap();
            let b = run_compiled(&cw, &cfg).unwrap();
            assert_eq!(
                a.stats.cycles, b.stats.cycles,
                "{name} must be deterministic"
            );
        }
    }
}

/// The dependence predictor: a block whose load races its own store makes
/// forward progress (conservative re-execution rather than livelock).
#[test]
fn same_block_store_load_race_terminates() {
    use clp::compiler::{FunctionBuilder, ProgramBuilder};

    // if (c) { a[0] = x; } y = a[0];  — merged into one hyperblock, the
    // load can issue before the predicated store.
    let mut f = FunctionBuilder::new("race", 2);
    let base = f.param(0);
    let c = f.param(1);
    let (tb, eb, join) = (f.new_block(), f.new_block(), f.new_block());
    let x = f.c(77);
    f.branch(c, tb, eb);
    f.switch_to(tb);
    f.store(base, 0, x);
    f.jump(join);
    f.switch_to(eb);
    f.jump(join);
    f.switch_to(join);
    let y = f.load(base, 0);
    f.ret(Some(y));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let program = pb.finish(id);

    let edge = clp::compiler::compile(&program, &clp::compiler::CompileOptions::default())
        .expect("compiles");
    for cores in [1usize, 8] {
        let mut cfg = clp::sim::SimConfig::tflex();
        cfg.max_cycles = 1_000_000;
        let mut m = clp::sim::Machine::new(cfg);
        m.memory_mut().image.write_u64(0x8000, 5);
        let pid = m.compose(cores, 0, edge.clone(), &[0x8000, 1]).unwrap();
        m.run()
            .unwrap_or_else(|e| panic!("livelock on {cores} cores: {e}"));
        assert_eq!(m.register(pid, clp::isa::Reg::new(1)), 77);
    }
}
