//! Recovery property suite: randomly generated structured programs,
//! with cores hard-killed at random points mid-run, must still match
//! the reference interpreter's golden result — and the same kill
//! schedule must reproduce the same cycle count.
//!
//! This is the hard-fault sibling of `chaos_props`: the same generated
//! programs (shared generator in `tests/common/mod.rs`), but instead of
//! transient perturbations, cores permanently die and the composition
//! recomposes around them (including to non-power-of-two sizes).

mod common;

use clp::compiler::{compile, interpret, CompileOptions};
use clp::isa::Reg;
use clp::sim::{FaultPlan, Machine, SimConfig};
use common::{arb_stmt, build_workload, ARRAY_BASE, ARRAY_WORDS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_programs_survive_random_kills(
        stmts in prop::collection::vec(arb_stmt(3), 1..8),
        seeds in prop::collection::vec(-50i64..50, 1..4),
        kill_seed in 0u64..1024,
        n_kills in 1usize..3,
    ) {
        let w = build_workload(&stmts, &seeds);

        // Golden: the interpreter (never sees faults).
        let mut gimage = w.initial_image();
        let golden = interpret(&w.program, &w.args, &mut gimage, 50_000_000)
            .expect("generated programs terminate");
        let want = gimage.read_words(ARRAY_BASE, ARRAY_WORDS);

        let edge = compile(&w.program, &CompileOptions::default()).expect("compiles");
        for cores in [4usize, 8] {
            // A clean run first: execution before a kill lands is
            // bit-identical to it, so scheduling kills inside the first
            // half of the clean run guarantees they actually fire.
            let clean_cycles = {
                let mut m = Machine::new(SimConfig::tflex());
                for (addr, words) in &w.init_mem {
                    m.memory_mut().image.load_words(*addr, words);
                }
                m.compose(cores, 0, edge.clone(), &w.args).expect("composes");
                m.run().expect("clean run completes");
                m.cycle()
            };
            // Kill targets must be participants: mesh regions are not
            // identity-numbered, so resolve the composition's core set
            // the same way the machine does.
            let region: Vec<usize> = clp::noc::region_for(&SimConfig::tflex().operand_net, cores, 0)
                .expect("region exists")
                .iter()
                .map(|n| n.0)
                .collect();
            // Deterministic per (seed, composition): the kill schedule is
            // drawn from the plan's forked PRNG, not wall-clock anything.
            let mut plan = FaultPlan::none();
            plan.seed = kill_seed;
            let window_hi = (clean_cycles / 2).max(2);
            plan.add_random_kills(&region, n_kills, 1, window_hi).expect("schedule fits");
            let mut cfg = SimConfig::tflex();
            cfg.max_cycles = 20_000_000;
            cfg.faults = plan;

            let mut cycles = [0u64; 2];
            for (attempt, slot) in cycles.iter_mut().enumerate() {
                let mut m = Machine::new(cfg);
                for (addr, words) in &w.init_mem {
                    m.memory_mut().image.load_words(*addr, words);
                }
                let pid = m.compose(cores, 0, edge.clone(), &w.args).expect("composes");
                // The global watchdog still guards termination: a hung
                // recovery would surface as a Deadlock error here.
                let stats = m.run().expect("killed run completes");
                *slot = m.cycle();
                prop_assert!(stats.recovery.cores_killed >= 1,
                    "kill inside the clean run's first half must fire on {} cores", cores);
                prop_assert_eq!(Some(m.register(pid, Reg::new(1))), golden.ret,
                    "return value differs after kills on {} cores (kill seed {}, attempt {})",
                    cores, kill_seed, attempt);
                let got = m.memory().image.read_words(ARRAY_BASE, ARRAY_WORDS);
                prop_assert_eq!(&got, &want,
                    "memory differs after kills on {} cores (kill seed {})",
                    cores, kill_seed);
            }
            prop_assert_eq!(cycles[0], cycles[1],
                "same kill schedule must reproduce the same cycle count on {} cores",
                cores);
        }
    }
}
