//! Workspace integration test: every workload in the suite runs
//! correctly (verified against the reference interpreter) on a sample of
//! TFlex compositions, on the TRIPS baseline configuration, and on the
//! conventional out-of-order reference.

use clp::baseline::{run_baseline, BaselineConfig};
use clp::core::{compile_workload, run_compiled, ProcessorConfig};
use clp::workloads::suite;

#[test]
fn every_workload_correct_on_tflex_1_and_8() {
    for w in suite::all() {
        let cw = compile_workload(&w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        for n in [1usize, 8] {
            let r = run_compiled(&cw, &ProcessorConfig::tflex(n))
                .unwrap_or_else(|e| panic!("{} on {n} cores: {e}", w.name));
            assert!(r.correct, "{} on {n} cores", w.name);
            assert!(r.stats.cycles > 0);
        }
    }
}

#[test]
fn every_workload_correct_on_tflex_2_16_32() {
    for w in suite::all() {
        let cw = compile_workload(&w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        for n in [2usize, 16, 32] {
            let r = run_compiled(&cw, &ProcessorConfig::tflex(n))
                .unwrap_or_else(|e| panic!("{} on {n} cores: {e}", w.name));
            assert!(r.correct, "{} on {n} cores", w.name);
        }
    }
}

#[test]
fn every_workload_correct_on_trips() {
    for w in suite::all() {
        let cw = compile_workload(&w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let r = run_compiled(&cw, &ProcessorConfig::trips())
            .unwrap_or_else(|e| panic!("{} on TRIPS: {e}", w.name));
        assert!(r.correct, "{} on TRIPS", w.name);
    }
}

#[test]
fn every_workload_correct_on_the_ooo_baseline() {
    for w in suite::all() {
        let golden = w.golden();
        let r = run_baseline(&w.program, &w.args, &w.init_mem, &BaselineConfig::core2());
        if w.check.check_ret {
            assert_eq!(r.ret, golden.ret, "{} return value", w.name);
        }
        for &(base, len) in &w.check.regions {
            for k in 0..len {
                let a = base + 8 * k as u64;
                assert_eq!(
                    r.image.read_u64(a),
                    golden.image.read_u64(a),
                    "{} mem[{a:#x}]",
                    w.name
                );
            }
        }
        assert!(r.cycles > 100, "{} suspiciously fast", w.name);
    }
}
