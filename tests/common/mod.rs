//! Shared random-program generator for the cross-engine and chaos
//! property suites: structured statement ASTs (constants, ALU ops,
//! masked array loads/stores, if/else diamonds, bounded counted loops)
//! that always terminate by construction while still exercising
//! hyperblock formation, predication, memory disambiguation, and the
//! distributed protocols.

// Each integration-test binary compiles this module independently and
// uses a different subset of it.
#![allow(dead_code)]

use clp::compiler::{FunctionBuilder, ProgramBuilder, VReg};
use clp::isa::Opcode;
use clp::workloads::Workload;
use proptest::prelude::*;

/// Base address of the scratch array every generated program reads and
/// writes.
pub const ARRAY_BASE: u64 = 0x9_0000;
/// Scratch-array length in 64-bit words (a power of two: indices are
/// masked, so every access is in bounds).
pub const ARRAY_WORDS: usize = 32;

#[derive(Clone, Debug)]
pub enum Stmt {
    Const(i64),
    Bin(Opcode, u8, u8),
    Load(u8),
    Store(u8, u8),
    If {
        cond: u8,
        then_s: Vec<Stmt>,
        else_s: Vec<Stmt>,
    },
    /// Conditional early return. The return block is never inlined under
    /// a predicate (returns must stay sole unpredicated exits), so this
    /// reliably produces *multi-exit* hyperblocks: the guarding block
    /// keeps both the branch to the return and the fall-through exit.
    IfRet {
        cond: u8,
        val: u8,
    },
    Loop {
        trips: u8,
        body: Vec<Stmt>,
    },
}

fn arb_bin_op() -> impl Strategy<Value = Opcode> {
    prop_oneof![
        Just(Opcode::Add),
        Just(Opcode::Sub),
        Just(Opcode::Mul),
        Just(Opcode::And),
        Just(Opcode::Or),
        Just(Opcode::Xor),
        Just(Opcode::Tlt),
        Just(Opcode::Teq),
        Just(Opcode::Shl),
    ]
}

/// Strategy for one statement, recursing to the given depth.
pub fn arb_stmt(depth: u32) -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(Stmt::Const),
        (arb_bin_op(), any::<u8>(), any::<u8>()).prop_map(|(o, a, b)| Stmt::Bin(o, a, b)),
        any::<u8>().prop_map(Stmt::Load),
        (any::<u8>(), any::<u8>()).prop_map(|(i, v)| Stmt::Store(i, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(cond, val)| Stmt::IfRet { cond, val }),
    ];
    leaf.prop_recursive(depth, 24, 6, |inner| {
        prop_oneof![
            (
                any::<u8>(),
                prop::collection::vec(inner.clone(), 1..4),
                prop::collection::vec(inner.clone(), 0..4)
            )
                .prop_map(|(cond, then_s, else_s)| Stmt::If {
                    cond,
                    then_s,
                    else_s
                }),
            (1u8..6, prop::collection::vec(inner, 1..4))
                .prop_map(|(trips, body)| Stmt::Loop { trips, body }),
        ]
    })
}

/// Emits statements into the builder; `vals` is the pool of defined
/// values random operand indices select from.
fn emit(f: &mut FunctionBuilder, stmts: &[Stmt], vals: &mut Vec<VReg>, base: VReg) {
    for s in stmts {
        match s {
            Stmt::Const(c) => {
                let v = f.c(*c);
                vals.push(v);
            }
            Stmt::Bin(op, a, b) => {
                let x = vals[*a as usize % vals.len()];
                let y = vals[*b as usize % vals.len()];
                let v = f.bin(*op, x, y);
                vals.push(v);
            }
            Stmt::Load(i) => {
                let idx = vals[*i as usize % vals.len()];
                let mask = f.c(ARRAY_WORDS as i64 - 1);
                let m = f.bin(Opcode::And, idx, mask);
                let three = f.c(3);
                let off = f.bin(Opcode::Shl, m, three);
                let addr = f.bin(Opcode::Add, base, off);
                let v = f.load(addr, 0);
                vals.push(v);
            }
            Stmt::Store(i, vv) => {
                let idx = vals[*i as usize % vals.len()];
                let val = vals[*vv as usize % vals.len()];
                let mask = f.c(ARRAY_WORDS as i64 - 1);
                let m = f.bin(Opcode::And, idx, mask);
                let three = f.c(3);
                let off = f.bin(Opcode::Shl, m, three);
                let addr = f.bin(Opcode::Add, base, off);
                f.store(addr, 0, val);
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let c = vals[*cond as usize % vals.len()];
                let (tb, eb, join) = (f.new_block(), f.new_block(), f.new_block());
                f.branch(c, tb, eb);
                // Branch arms may only *mutate existing* state (stores and
                // assignments), not grow the value pool, so the pool stays
                // path-independent.
                let n = vals.len();
                f.switch_to(tb);
                emit(f, then_s, vals, base);
                vals.truncate(n);
                f.jump(join);
                f.switch_to(eb);
                emit(f, else_s, vals, base);
                vals.truncate(n);
                f.jump(join);
                f.switch_to(join);
            }
            Stmt::IfRet { cond, val } => {
                let c = vals[*cond as usize % vals.len()];
                let v = vals[*val as usize % vals.len()];
                let (rb, cont) = (f.new_block(), f.new_block());
                f.branch(c, rb, cont);
                f.switch_to(rb);
                // Mix in a marker so early returns are distinguishable
                // from the final checksum.
                let marker = f.c(0x5eed);
                let out = f.bin(Opcode::Xor, v, marker);
                f.ret(Some(out));
                f.switch_to(cont);
            }
            Stmt::Loop { trips, body } => {
                let i = f.c(0);
                let n = f.c(i64::from(*trips));
                let (h, b, exit) = (f.new_block(), f.new_block(), f.new_block());
                f.jump(h);
                f.switch_to(h);
                let c = f.bin(Opcode::Tlt, i, n);
                f.branch(c, b, exit);
                f.switch_to(b);
                let len = vals.len();
                vals.push(i);
                emit(f, body, vals, base);
                vals.truncate(len);
                let one = f.c(1);
                f.bin_into(i, Opcode::Add, i, one);
                f.jump(h);
                f.switch_to(exit);
            }
        }
    }
}

/// Builds a self-checking workload from generated statements: the return
/// value folds every live value into one checksum, and the scratch array
/// is a checked memory region.
pub fn build_workload(stmts: &[Stmt], seed_vals: &[i64]) -> Workload {
    let mut f = FunctionBuilder::new("fuzz", 1);
    let base = f.param(0);
    let mut vals: Vec<VReg> = seed_vals.iter().map(|&c| f.c(c)).collect();
    if vals.is_empty() {
        vals.push(f.c(1));
    }
    emit(&mut f, stmts, &mut vals, base);
    // Fold the pool into a single checksum so the return value observes
    // everything.
    let mut acc = vals[0];
    for &v in &vals[1..] {
        let m = f.c(3);
        let t = f.bin(Opcode::Mul, acc, m);
        acc = f.bin(Opcode::Add, t, v);
    }
    f.ret(Some(acc));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let init: Vec<u64> = (0..ARRAY_WORDS as u64).map(|k| k * 11 + 5).collect();
    Workload {
        name: "fuzz",
        class: clp::workloads::WorkloadClass::SpecInt,
        ilp: clp::workloads::IlpClass::Low,
        program: pb.finish(id),
        args: vec![ARRAY_BASE],
        init_mem: vec![(ARRAY_BASE, init)],
        check: clp::workloads::CheckSpec {
            check_ret: true,
            regions: vec![(ARRAY_BASE, ARRAY_WORDS)],
        },
    }
}
