//! Property-based cross-engine validation: randomly generated structured
//! programs must produce identical results on
//!
//! 1. the reference IR interpreter,
//! 2. the TFlex cycle-level simulator (several composition sizes), and
//! 3. the conventional out-of-order baseline.
//!
//! The program generator lives in `tests/common/mod.rs` (shared with the
//! chaos property suite): every generated program terminates by
//! construction while still exercising hyperblock formation,
//! predication, memory disambiguation, and the distributed protocols.

mod common;

use clp::baseline::{run_baseline, BaselineConfig};
use clp::compiler::{compile, interpret, CompileOptions};
use clp::isa::Reg;
use clp::mem::MemoryImage;
use clp::sim::{Machine, SimConfig};
use common::{arb_stmt, build_workload, ARRAY_BASE, ARRAY_WORDS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_programs_agree_across_engines(
        stmts in prop::collection::vec(arb_stmt(3), 1..8),
        seeds in prop::collection::vec(-50i64..50, 1..4),
        cores in prop::sample::select(vec![1usize, 2, 8, 32]),
    ) {
        let w = build_workload(&stmts, &seeds);

        // Golden: the interpreter.
        let mut gimage = w.initial_image();
        let golden = interpret(&w.program, &w.args, &mut gimage, 50_000_000)
            .expect("generated programs terminate");

        // Engine 2: the TFlex simulator.
        let edge = compile(&w.program, &CompileOptions::default()).expect("compiles");
        let mut cfg = SimConfig::tflex();
        cfg.max_cycles = 20_000_000;
        let mut m = Machine::new(cfg);
        for (addr, words) in &w.init_mem {
            m.memory_mut().image.load_words(*addr, words);
        }
        let pid = m.compose(cores, 0, edge, &w.args).expect("composes");
        m.run().expect("tflex run completes");
        prop_assert_eq!(Some(m.register(pid, Reg::new(1))), golden.ret,
            "return value differs on {} cores", cores);
        let got = m.memory().image.read_words(ARRAY_BASE, ARRAY_WORDS);
        let want = gimage.read_words(ARRAY_BASE, ARRAY_WORDS);
        prop_assert_eq!(got, want, "memory differs on {} cores", cores);

        // Engine 3: the conventional baseline.
        let b = run_baseline(&w.program, &w.args, &w.init_mem, &BaselineConfig::core2());
        prop_assert_eq!(b.ret, golden.ret, "baseline return value differs");
        let got = b.image.read_words(ARRAY_BASE, ARRAY_WORDS);
        prop_assert_eq!(got, want2(&gimage), "baseline memory differs");
    }
}

fn want2(gimage: &MemoryImage) -> Vec<u64> {
    gimage.read_words(ARRAY_BASE, ARRAY_WORDS)
}
