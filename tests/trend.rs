//! clp-trend acceptance tests: the time-series layer is deterministic
//! (byte-identical `clp-trend-v1` JSON between identical runs), exact
//! (per-interval bucket deltas tile the profiler's run-level totals),
//! pinned (phase goldens for two suite kernels at two composition
//! sizes), and useful (clp-diff on a clean-vs-dram_spike pair names the
//! memory buckets, cores, and links that moved).

mod common;

use clp::core::{
    compile_workload, run_compiled_observed, FaultKind, FaultPlan, ObsOptions, ProcessorConfig,
};
use clp::obs::{diff_documents, Bucket, TrendOptions, TrendReport};
use clp::workloads::suite;
use proptest::prelude::*;
use serde::Value;

fn trended(name: &str, cfg: &ProcessorConfig) -> (u64, TrendReport) {
    let cw = compile_workload(&suite::by_name(name).unwrap()).unwrap();
    let obs = ObsOptions {
        trend: Some(TrendOptions::default()),
        ..ObsOptions::default()
    };
    let r = run_compiled_observed(&cw, cfg, &obs).expect("runs");
    (r.stats.cycles, r.trend.expect("trend present"))
}

/// Same workload, same configuration: the full `clp-trend-v1` document
/// is byte-identical between runs — the series is safe to pin in CI.
#[test]
fn trend_json_is_byte_identical_between_runs() {
    let (c1, r1) = trended("conv", &ProcessorConfig::tflex(8));
    let (c2, r2) = trended("conv", &ProcessorConfig::tflex(8));
    assert_eq!(c1, c2, "cycles drifted between runs");
    assert_eq!(r1.to_json(), r2.to_json(), "series drifted between runs");
}

/// Phase-table goldens: interval boundaries, change-point scores, and
/// dominant buckets for two suite kernels at two composition sizes.
/// These pin the integer change-point detector end to end; a modeling
/// change that legitimately moves them must re-pin.
#[test]
fn phase_goldens_hold_for_suite_kernels() {
    // (workload, cores, cycles, intervals,
    //  phases as (start_interval, end_interval, score, dominant)).
    struct Golden {
        name: &'static str,
        cores: usize,
        cycles: u64,
        intervals: usize,
        phases: &'static [(usize, usize, u64, Bucket)],
    }
    let goldens = [
        Golden {
            name: "conv",
            cores: 4,
            cycles: 9_383,
            intervals: 10,
            phases: &[(0, 8, 0, Bucket::Commit), (9, 9, 708, Bucket::Commit)],
        },
        Golden {
            name: "conv",
            cores: 16,
            cycles: 5_668,
            intervals: 6,
            phases: &[(0, 5, 0, Bucket::Commit)],
        },
        Golden {
            name: "tblook",
            cores: 4,
            cycles: 19_286,
            intervals: 20,
            phases: &[(0, 17, 0, Bucket::Commit), (18, 19, 552, Bucket::Commit)],
        },
        Golden {
            name: "tblook",
            cores: 16,
            cycles: 23_261,
            intervals: 24,
            phases: &[
                (0, 14, 0, Bucket::Commit),
                (15, 22, 169, Bucket::Commit),
                (23, 23, 160, Bucket::Commit),
            ],
        },
    ];
    for g in goldens {
        let (cycles, report) = trended(g.name, &ProcessorConfig::tflex(g.cores));
        let tag = format!("{} x{}", g.name, g.cores);
        assert_eq!(cycles, g.cycles, "{tag}: cycle golden drifted");
        assert_eq!(
            report.ends.len(),
            g.intervals,
            "{tag}: interval count drifted"
        );
        let got: Vec<(usize, usize, u64, Bucket)> = report
            .phases
            .iter()
            .map(|p| (p.start_interval, p.end_interval, p.score, p.dominant))
            .collect();
        assert_eq!(got, g.phases, "{tag}: phase table drifted");
    }
}

/// The interval deltas reconstruct the profiler's totals exactly: each
/// bucket column sums to the run-level bucket, interval ends are
/// strictly increasing, and the last end is the elapsed cycle count.
fn check_tiling(report: &TrendReport, cycles: u64, run_buckets: &clp::obs::BucketCycles) {
    assert_eq!(report.cycles, cycles);
    assert!(!report.ends.is_empty(), "run produced no intervals");
    for w in report.ends.windows(2) {
        assert!(w[0] < w[1], "interval ends not strictly increasing");
    }
    assert_eq!(
        *report.ends.last().unwrap(),
        cycles,
        "last interval does not end at the elapsed cycle"
    );
    for (i, col) in report.buckets.iter().enumerate() {
        assert_eq!(col.len(), report.ends.len(), "ragged bucket column {i}");
        let col_sum: u64 = col.iter().sum();
        assert_eq!(
            col_sum,
            run_buckets.0[i],
            "bucket column {} does not tile the run total",
            Bucket::ALL[i].label()
        );
    }
}

/// Tiling holds across the suite and composition sizes.
#[test]
fn interval_deltas_tile_the_run_totals() {
    for name in ["conv", "tblook", "bezier"] {
        for n in [1usize, 4, 16] {
            let cw = compile_workload(&suite::by_name(name).unwrap()).unwrap();
            let obs = ObsOptions {
                trend: Some(TrendOptions::default()),
                ..ObsOptions::default()
            };
            let r = run_compiled_observed(&cw, &ProcessorConfig::tflex(n), &obs).expect("runs");
            let report = r.trend.expect("trend present");
            let profile = r.profile.expect("trend implies profiling");
            check_tiling(&report, r.stats.cycles, &profile.run_buckets());
        }
    }
}

/// clp-diff on a clean run against a dram_spike-faulted run names the
/// memory-system movement (mem_wait grows) and the affected cores and
/// links — the acceptance scenario for attribution.
#[test]
fn diff_attributes_a_dram_spike_to_memory_buckets_cores_and_links() {
    let cw = compile_workload(&suite::by_name("conv").unwrap()).unwrap();
    let obs = ObsOptions {
        profile: true,
        ..ObsOptions::default()
    };
    let clean = run_compiled_observed(&cw, &ProcessorConfig::tflex(8), &obs).expect("clean runs");
    let plan = FaultPlan::only(FaultKind::DramSpike, 1, 200);
    let spiked = run_compiled_observed(&cw, &ProcessorConfig::tflex(8).with_faults(plan), &obs)
        .expect("faulted run completes");
    assert!(
        spiked.stats.cycles > clean.stats.cycles,
        "the spike must cost cycles for the diff to attribute"
    );

    let before = clean.profile.expect("profiled").to_json_value();
    let after = spiked.profile.expect("profiled").to_json_value();
    let report = diff_documents(&before, &after).expect("same schema");
    assert_eq!(report.kind, "clp-prof-v1");
    assert_eq!(
        report.cycles,
        Some((clean.stats.cycles, spiked.stats.cycles))
    );

    // The memory system must be named: mem_wait grew.
    let mem_wait = report
        .buckets
        .iter()
        .find(|e| e.label == "mem_wait")
        .expect("mem_wait appears in the bucket attribution");
    assert!(
        mem_wait.delta() > 0,
        "dram spike must grow mem_wait, got {:+}",
        mem_wait.delta()
    );
    // And the delta localizes: specific cores and NoC links moved.
    assert!(!report.cores.is_empty(), "no per-core attribution");
    assert!(!report.links.is_empty(), "no per-link attribution");
    let text = report.render(10);
    assert!(text.contains("mem_wait"));
    assert!(text.contains("core "));
    assert!(text.contains("link "));

    // The snapshot-level diff names the same movement from the stats
    // registry alone (the `clp-diff` path for `--stats-json` files).
    let sa = serde_json::from_str::<Value>(&clean.snapshot.to_json()).expect("parses");
    let sb = serde_json::from_str::<Value>(&spiked.snapshot.to_json()).expect("parses");
    let snap_report = diff_documents(&sa, &sb).expect("same schema");
    assert_eq!(snap_report.kind, "stats-snapshot");
    let snap_mem = snap_report
        .buckets
        .iter()
        .find(|e| e.label == "mem_wait")
        .expect("snapshot diff carries the bucket section");
    assert!(snap_mem.delta() > 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Tiling holds for arbitrary generated programs and periods, not
    /// just the hand-written suite at the default period.
    #[test]
    fn interval_deltas_tile_on_generated_programs(
        stmts in prop::collection::vec(common::arb_stmt(2), 1..6),
        seeds in prop::collection::vec(-50i64..50, 1..4),
        period in prop_oneof![Just(64u64), Just(250), Just(1000)],
    ) {
        let w = common::build_workload(&stmts, &seeds);
        let cw = compile_workload(&w).unwrap();
        let obs = ObsOptions {
            trend: Some(TrendOptions { period, ..TrendOptions::default() }),
            ..ObsOptions::default()
        };
        let r = run_compiled_observed(&cw, &ProcessorConfig::tflex(4), &obs).expect("runs");
        let report = r.trend.expect("trend present");
        let profile = r.profile.expect("trend implies profiling");
        prop_assert_eq!(report.cycles, r.stats.cycles);
        for w in report.ends.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert_eq!(*report.ends.last().unwrap(), r.stats.cycles);
        let totals = profile.run_buckets();
        for (i, col) in report.buckets.iter().enumerate() {
            let col_sum: u64 = col.iter().sum();
            prop_assert_eq!(col_sum, totals.0[i]);
        }
    }
}
