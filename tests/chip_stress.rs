//! Chip-wide stress: the Figure 1 configurations — (a) maximum TLP with
//! 32 single-core processors, and (b) a mixed-granularity chip — all
//! running simultaneously with shared L2/DRAM, every program verified.

use clp::core::{compile_workload, ProcessorConfig};
use clp::isa::Reg;
use clp::sim::Machine;
use clp::workloads::suite;

/// Figure 1a: 32 independent single-core processors.
#[test]
fn thirty_two_single_core_threads() {
    let names = ["a2time", "rspeed", "tblook", "parser"];
    let compiled: Vec<_> = names
        .iter()
        .map(|n| compile_workload(&suite::by_name(n).unwrap()).unwrap())
        .collect();

    let mut m = Machine::new(ProcessorConfig::tflex(1).sim);
    let mut pids = Vec::new();
    for idx in 0..32 {
        let cw = &compiled[idx % compiled.len()];
        let pid = m
            .compose(1, idx, cw.edge.clone(), &cw.workload.args)
            .unwrap_or_else(|e| panic!("compose {idx}: {e}"));
        let base = m.addr_base(pid);
        for (addr, words) in &cw.workload.init_mem {
            m.memory_mut().image.load_words(base + addr, words);
        }
        pids.push((pid, idx % compiled.len()));
    }
    let stats = m.run().expect("all 32 run to completion");
    assert_eq!(stats.procs.len(), 32);

    for (pid, wi) in pids {
        let cw = &compiled[wi];
        let ret = m.register(pid, Reg::new(1));
        let base = m.addr_base(pid);
        // Verify ret and regions within this processor's address space.
        if cw.workload.check.check_ret {
            assert_eq!(
                Some(ret),
                cw.golden.ret,
                "proc {pid:?} ({})",
                cw.workload.name
            );
        }
        for &(region, len) in &cw.workload.check.regions {
            for k in 0..len {
                let a = region + 8 * k as u64;
                assert_eq!(
                    m.memory().image.read_u64(base + a),
                    cw.golden.image.read_u64(a),
                    "proc {pid:?} mem[{a:#x}]"
                );
            }
        }
    }
}

/// Figure 1b: an energy-style mixed-granularity configuration
/// (8 processors: 8+8+4+4+2+2+2+2 cores).
#[test]
fn mixed_granularity_chip_of_eight_processors() {
    let plan: [(usize, &str); 8] = [
        (8, "conv"),
        (8, "autocor"),
        (4, "bezier"),
        (4, "genalg"),
        (2, "rspeed"),
        (2, "tblook"),
        (2, "a2time"),
        (2, "parser"),
    ];
    let specs: Vec<clp::core::ProgramSpec> = plan
        .iter()
        .map(|&(cores, name)| clp::core::ProgramSpec {
            workload: suite::by_name(name).unwrap(),
            cores,
        })
        .collect();
    let out = clp::core::run_multiprogram(&specs).expect("chip runs");
    for (i, ok) in out.correct.iter().enumerate() {
        assert!(ok, "program {} ({}) incorrect", i, plan[i].1);
    }
    // Shared-L2 contention exists: some L2 traffic from multiple procs.
    assert!(out.stats.mem.l2_hits + out.stats.mem.l2_misses > 8);
}
