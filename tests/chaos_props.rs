//! Chaos property suite: randomly generated structured programs, run
//! under a nonzero fault-injection plan, must still match the reference
//! interpreter's golden result at 1, 2, and 4 cores.
//!
//! This is the adversarial version of `cross_engine_props`: the same
//! generated programs (shared generator in `tests/common/mod.rs`), but
//! with operand-NoC delays, contention bursts, forced LSQ NACKs, flipped
//! predictions, DRAM spikes, and delayed hand-offs all enabled. Faults
//! may only add cycles — never change what the machine computes.

mod common;

use clp::compiler::{compile, interpret, CompileOptions};
use clp::isa::Reg;
use clp::sim::{FaultPlan, Machine, SimConfig};
use common::{arb_stmt, build_workload, ARRAY_BASE, ARRAY_WORDS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_programs_survive_fault_injection(
        stmts in prop::collection::vec(arb_stmt(3), 1..8),
        seeds in prop::collection::vec(-50i64..50, 1..4),
        fault_seed in 0u64..1024,
    ) {
        let w = build_workload(&stmts, &seeds);

        // Golden: the interpreter (never sees faults).
        let mut gimage = w.initial_image();
        let golden = interpret(&w.program, &w.args, &mut gimage, 50_000_000)
            .expect("generated programs terminate");
        let want = gimage.read_words(ARRAY_BASE, ARRAY_WORDS);

        let edge = compile(&w.program, &CompileOptions::default()).expect("compiles");
        for cores in [1usize, 2, 4] {
            let mut cfg = SimConfig::tflex();
            cfg.max_cycles = 20_000_000;
            cfg.faults = FaultPlan::chaos(fault_seed, 100);
            let mut m = Machine::new(cfg);
            for (addr, words) in &w.init_mem {
                m.memory_mut().image.load_words(*addr, words);
            }
            let pid = m.compose(cores, 0, edge.clone(), &w.args).expect("composes");
            // The watchdog still guards termination under injection.
            m.run().expect("faulted run completes");
            prop_assert_eq!(Some(m.register(pid, Reg::new(1))), golden.ret,
                "return value differs under faults on {} cores (fault seed {})",
                cores, fault_seed);
            let got = m.memory().image.read_words(ARRAY_BASE, ARRAY_WORDS);
            prop_assert_eq!(&got, &want,
                "memory differs under faults on {} cores (fault seed {})",
                cores, fault_seed);
        }
    }
}
