//! clp-bound soundness: the static cycle bounds claim to be *provable
//! lower bounds* on what the simulator measures, so on randomly
//! generated programs the program-level bound must never exceed the
//! measured cycle count, and no per-block bound may exceed the
//! shortest fetch-to-commit span the profiler records for that block —
//! at every composition size.
//!
//! The generator (see `tests/common/mod.rs`) covers predicated
//! hyperblocks, multi-exit blocks, loops, and memory traffic, so the
//! bound analyzer's predicate-path enumeration, commit-gating closure,
//! and interval bounds are all exercised against the real machine.
//!
//! Degenerate shapes additionally pin the bound to its closed form:
//! a lone-branch block costs exactly 1 cycle, and a pure dependence
//! chain of k unit-latency instructions into a register write costs
//! exactly 2(k+1) cycles (each operand edge is one execute plus one
//! delivery cycle on a single core).

mod common;

use clp::core::{compile_workload, run_compiled_observed, ObsOptions, ProcessorConfig};
use clp::isa::asm::parse_program;
use clp::lint::{bound_block, bound_program, LintConfig};
use common::{arb_stmt, build_workload};
use proptest::prelude::*;

const SIZES: [usize; 3] = [1, 4, 16];

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 100,
        ..ProptestConfig::default()
    })]

    #[test]
    fn bounds_never_exceed_measured(
        stmts in prop::collection::vec(arb_stmt(3), 1..8),
        seeds in prop::collection::vec(-50i64..50, 1..4),
    ) {
        let w = build_workload(&stmts, &seeds);
        let cw = compile_workload(&w).expect("generated programs compile");
        let cfg = LintConfig::default();
        for cores in SIZES {
            let pb = bound_program(&cw.edge, &cfg, cores);
            let obs = ObsOptions {
                profile: true,
                ..ObsOptions::default()
            };
            let r = run_compiled_observed(&cw, &ProcessorConfig::tflex(cores), &obs)
                .expect("generated programs run");
            prop_assert!(
                pb.cycles <= r.stats.cycles,
                "program bound {} > measured {} at {cores} cores",
                pb.cycles,
                r.stats.cycles
            );
            let spans = r.profile.expect("profiling enabled").block_spans();
            for bb in &pb.blocks {
                if let Some(s) = spans.get(&bb.addr) {
                    prop_assert!(
                        bb.cycles <= s.min_cycles,
                        "block @{:#x} bound {} ({}) > measured min span {} at {cores} cores",
                        bb.addr,
                        bb.cycles,
                        bb.binding.label(),
                        s.min_cycles
                    );
                }
            }
        }
    }
}

#[test]
fn lone_branch_block_bound_is_one() {
    let p = parse_program(
        "entry @0x1000
         block @0x1000 {
           i0: bro halt e0
         }",
    )
    .expect("valid program");
    let cfg = LintConfig::default();
    for cores in SIZES {
        let b = p.block(0x1000).expect("block exists");
        assert_eq!(bound_block(b, &cfg, cores).cycles, 1, "at {cores} cores");
        assert_eq!(bound_program(&p, &cfg, cores).cycles, 1, "at {cores} cores");
    }
}

#[test]
fn pure_chain_bound_matches_closed_form() {
    // movi -> k movs -> write, all on one core: the write's value
    // arrives after k+1 operand edges, each costing one execute cycle
    // plus one delivery cycle, so the height (and the bound — the
    // chain dominates issue and dispatch) is exactly 2(k+1).
    for k in [1usize, 4, 11] {
        let mut src = String::from("entry @0x1000\nblock @0x1000 {\n");
        src.push_str("  i0: movi #7 -> i1.L\n");
        for i in 1..=k {
            src.push_str(&format!("  i{}: mov -> i{}.L\n", i, i + 1));
        }
        src.push_str(&format!("  i{}: write r1\n", k + 1));
        src.push_str(&format!("  i{}: bro halt e0\n", k + 2));
        src.push_str("}\n");
        let p = parse_program(&src).expect("valid program");
        let b = p.block(0x1000).expect("block exists");
        let bb = bound_block(b, &LintConfig::default(), 1);
        assert_eq!(bb.cycles, 2 * (k as u64 + 1), "chain of {k} movs");
        assert_eq!(bb.binding.label(), "height");
        assert_eq!(bb.height, bb.flat_height, "no hops on one core");
    }
}
