//! Hard-fault recovery suite: killing cores mid-run must degrade the
//! composition, never the answer.
//!
//! Every killed run must still verify bit-identical against the
//! interpreter golden, report its recovery through the unified stats
//! registry, and reproduce exactly under the same kill schedule.
//! Kill-free plans stay bit-identical to the pre-recovery simulator.

use clp::core::{
    compile_workload, run_compiled, run_compiled_observed, CompiledWorkload, FaultPlan, ObsOptions,
    ProcessorConfig, RunFailure,
};
use clp::obs::{RingRecorder, Tracer};
use clp::sim::{FaultPlanError, RunError, MAX_KILLS};
use std::sync::{Arc, Mutex};

fn compiled(name: &str) -> CompiledWorkload {
    let w = clp::workloads::suite::by_name(name).expect("known workload");
    compile_workload(&w).expect("compiles")
}

fn killed(cores: usize, kills: &[(usize, u64)]) -> ProcessorConfig {
    let mut plan = FaultPlan::none();
    for &(core, cycle) in kills {
        plan.add_kill(core, cycle).expect("valid kill");
    }
    ProcessorConfig::tflex(cores).with_faults(plan)
}

#[test]
fn mid_run_kill_on_8_cores_recovers_and_verifies() {
    let cw = compiled("conv");
    let clean = run_compiled(&cw, &ProcessorConfig::tflex(8)).expect("clean run");
    let kill_at = clean.stats.cycles / 2;
    let r = run_compiled(&cw, &killed(8, &[(3, kill_at)])).expect("recovers");
    assert!(r.correct, "degraded run must still match the golden");

    let rec = r.stats.recovery;
    assert_eq!(rec.cores_killed, 1);
    assert_eq!(rec.recoveries, 1);
    assert!(rec.probes >= 1, "detection goes through the watchdog");
    assert!(rec.detection_cycles > 0, "detection is never instantaneous");
    assert!(rec.flushed_blocks >= 1, "in-flight work was discarded");
    assert!(rec.migrated_regs > 0, "the dead core owned register banks");
    assert!(rec.degraded_cycles > 0, "the run continued on 7 cores");
    assert!(
        r.stats.cycles > clean.stats.cycles,
        "losing a core mid-run must cost cycles"
    );

    // The recovery counters are part of the unified stats registry.
    assert_eq!(
        r.snapshot.expect("recovery/recoveries"),
        rec.recoveries as f64
    );
    assert_eq!(
        r.snapshot.expect("recovery/cores_killed"),
        rec.cores_killed as f64
    );
    assert!(r.snapshot.expect("recovery/mean_detection_latency") > 0.0);
}

#[test]
fn same_kill_schedule_reproduces_bit_identically() {
    let cw = compiled("tblook");
    let cfg = killed(8, &[(5, 4_000)]);
    let a = run_compiled(&cw, &cfg).expect("first run");
    let b = run_compiled(&cw, &cfg).expect("second run");
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.recovery, b.stats.recovery);
    assert_eq!(a.ret, b.ret);
}

#[test]
fn recovery_to_a_non_power_of_two_composition() {
    // 16 cores minus one leaves 15 survivors: every interleaving hash
    // (register banks, D-banks/LSQ, block owner, instruction slots) must
    // work modulo a non-power-of-two core count.
    let cw = compiled("conv");
    let r = run_compiled(&cw, &killed(16, &[(9, 2_000)])).expect("recovers to 15 cores");
    assert!(r.correct);
    assert_eq!(r.stats.recovery.cores_killed, 1);
    assert!(r.stats.recovery.recoveries >= 1);
}

#[test]
fn multiple_kills_degrade_stepwise() {
    // 8 -> 6 cores across two separate kill events.
    let cw = compiled("bezier");
    let r = run_compiled(&cw, &killed(8, &[(1, 1_000), (6, 2_500)])).expect("recovers twice");
    assert!(r.correct);
    assert_eq!(r.stats.recovery.cores_killed, 2);
    assert!(r.stats.recovery.recoveries >= 1);
}

#[test]
fn two_core_composition_degrades_to_one() {
    let cw = compiled("tblook");
    let r = run_compiled(&cw, &killed(2, &[(1, 3_000)])).expect("finishes on one core");
    assert!(r.correct);
    assert_eq!(r.stats.recovery.cores_killed, 1);
}

#[test]
fn kill_outside_the_composition_is_a_typed_run_error() {
    let cw = compiled("conv");
    // Core 12 exists on the chip but is not part of a 4-core composition.
    let err = run_compiled(&cw, &killed(4, &[(12, 1_000)])).expect_err("must be rejected");
    match err {
        RunFailure::Run(RunError::InvalidKill { core }) => assert_eq!(core, 12),
        other => panic!("expected InvalidKill, got {other}"),
    }
}

#[test]
fn kill_schedules_leaving_no_survivor_are_rejected() {
    let cw = compiled("conv");
    let err = run_compiled(&cw, &killed(2, &[(0, 1_000), (1, 2_000)]))
        .expect_err("a composition must keep one survivor");
    match err {
        RunFailure::Run(RunError::NoSurvivors { proc }) => assert_eq!(proc, 0),
        other => panic!("expected NoSurvivors, got {other}"),
    }
}

#[test]
fn plan_builder_rejects_malformed_kills() {
    let mut plan = FaultPlan::none();
    assert_eq!(
        plan.add_kill(3, 0),
        Err(FaultPlanError::KillCycleZero { core: 3 })
    );
    plan.add_kill(3, 100).expect("valid");
    assert_eq!(
        plan.add_kill(3, 200),
        Err(FaultPlanError::DuplicateKillTarget { core: 3 })
    );
    for core in 4..(3 + MAX_KILLS) {
        plan.add_kill(core, 100 * core as u64).expect("fits");
    }
    assert_eq!(
        plan.add_kill(30, 400),
        Err(FaultPlanError::TooManyKills { max: MAX_KILLS })
    );
}

#[test]
fn kill_free_plans_stay_bit_identical() {
    // The entire recovery layer (watchdog, guards, clamps) must be
    // invisible when no kill is scheduled: same cycle counts as the
    // plain default config, zero recovery activity.
    let cw = compiled("conv");
    let a = run_compiled(&cw, &ProcessorConfig::tflex(8)).expect("runs");
    let b = run_compiled(
        &cw,
        &ProcessorConfig::tflex(8).with_faults(FaultPlan::none()),
    )
    .expect("runs");
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(b.stats.recovery.cores_killed, 0);
    assert_eq!(b.stats.recovery.recoveries, 0);
    assert_eq!(b.stats.recovery.probes, 0);
}

/// Detection-latency goldens: for pinned kill schedules the watchdog's
/// behaviour is fully deterministic, so the latency from kill to
/// declaration is an exact number. Drift here means the detection
/// protocol changed.
#[test]
fn detection_latency_matches_the_goldens() {
    let goldens: [(&str, usize, usize, u64, u64, u64); 3] = [
        // (workload, cores, victim, kill_cycle, detection_cycles, recoveries)
        ("conv", 8, 3, 4_000, 253, 1),
        ("tblook", 8, 5, 4_000, 287, 1),
        ("conv", 16, 9, 2_000, 434, 1),
    ];
    for (name, cores, victim, at, want_det, want_rec) in goldens {
        let cw = compiled(name);
        let r = run_compiled(&cw, &killed(cores, &[(victim, at)])).expect("recovers");
        assert!(r.correct);
        assert_eq!(
            r.stats.recovery.detection_cycles, want_det,
            "{name}/{cores}c kill {victim}@{at}: detection latency drifted"
        );
        assert_eq!(r.stats.recovery.recoveries, want_rec);
    }
}

#[test]
fn recovery_lifecycle_appears_in_the_trace_stream() {
    let cw = compiled("conv");
    let rec = Arc::new(Mutex::new(RingRecorder::new(1 << 16)));
    let obs = ObsOptions {
        tracer: Tracer::shared(rec.clone()),
        ..ObsOptions::default()
    };
    let r = run_compiled_observed(&cw, &killed(8, &[(3, 4_000)]), &obs).expect("recovers");
    assert!(r.correct);
    let recorder = rec.lock().expect("not poisoned");
    let kinds: Vec<&str> = recorder.events().map(|(_, e)| e.kind()).collect();
    for want in ["core_killed", "core_declared_dead", "recovery_completed"] {
        assert!(kinds.contains(&want), "missing {want} in the trace stream");
    }
}
