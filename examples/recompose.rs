//! Dynamic recomposition: run a phase on a small processor, release the
//! cores, and recompose a bigger processor *in the same address space* —
//! the hand-off happens through the cache-coherence protocol, with no
//! flush on the composition change (§4.7).
//!
//! ```sh
//! cargo run --release --example recompose
//! ```

use clp::compiler::{compile, CompileOptions, FunctionBuilder, ProgramBuilder};
use clp::isa::{Opcode, Reg};
use clp::sim::{Machine, SimConfig};

const DATA: u64 = 0x6000;
const N: i64 = 64;

fn produce_program() -> clp::isa::EdgeProgram {
    // data[i] = i * 7
    let mut f = FunctionBuilder::new("produce", 1);
    let base = f.param(0);
    let n = f.c(N);
    let i = f.c(0);
    let (h, b, x) = (f.new_block(), f.new_block(), f.new_block());
    f.jump(h);
    f.switch_to(h);
    let c = f.bin(Opcode::Tlt, i, n);
    f.branch(c, b, x);
    f.switch_to(b);
    let three = f.c(3);
    let off = f.bin(Opcode::Shl, i, three);
    let addr = f.bin(Opcode::Add, base, off);
    let seven = f.c(7);
    let v = f.bin(Opcode::Mul, i, seven);
    f.store(addr, 0, v);
    let one = f.c(1);
    f.bin_into(i, Opcode::Add, i, one);
    f.jump(h);
    f.switch_to(x);
    f.ret(Some(i));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    compile(&pb.finish(id), &CompileOptions::default()).expect("compiles")
}

fn consume_program() -> clp::isa::EdgeProgram {
    // sum(data)
    let mut f = FunctionBuilder::new("consume", 1);
    let base = f.param(0);
    let n = f.c(N);
    let acc = f.c(0);
    let i = f.c(0);
    let (h, b, x) = (f.new_block(), f.new_block(), f.new_block());
    f.jump(h);
    f.switch_to(h);
    let c = f.bin(Opcode::Tlt, i, n);
    f.branch(c, b, x);
    f.switch_to(b);
    let three = f.c(3);
    let off = f.bin(Opcode::Shl, i, three);
    let addr = f.bin(Opcode::Add, base, off);
    let v = f.load(addr, 0);
    f.bin_into(acc, Opcode::Add, acc, v);
    let one = f.c(1);
    f.bin_into(i, Opcode::Add, i, one);
    f.jump(h);
    f.switch_to(x);
    f.ret(Some(acc));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    compile(&pb.finish(id), &CompileOptions::default()).expect("compiles")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut m = Machine::new(SimConfig::tflex());

    // Phase 1: a serial producer runs on one core.
    let p1 = m.compose(1, 0, produce_program(), &[DATA])?;
    m.run()?;
    let phase1 = m.cycle();
    println!("phase 1: produced {N} values on 1 core  ({phase1} cycles)");

    // Release the core; its dirty L1 lines stay where they are.
    let base = m.addr_base(p1);
    m.decompose(p1);

    // Phase 2: a 16-core consumer over the SAME region and address space.
    let p2 = m.compose_at(16, 0, consume_program(), &[DATA], base)?;
    m.run()?;
    let sum = m.register(p2, Reg::new(1));
    let want: u64 = (0..N as u64).map(|i| i * 7).sum();
    println!(
        "phase 2: summed on 16 cores -> {sum} (expected {want})  ({} more cycles)",
        m.cycle() - phase1
    );
    assert_eq!(sum, want);

    let s = m.memory().stats();
    println!(
        "coherence during hand-off: {} dirty forwards, {} invalidations — no flush needed",
        s.dirty_forwards, s.invalidations
    );
    Ok(())
}
