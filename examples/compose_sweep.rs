//! Composition sweep: run one benchmark on every TFlex composition from
//! one core to the full 32-core chip (Figure 1c's "one big processor"
//! story), plus the TRIPS baseline, and report the speedup curve and the
//! best operating points for performance, area efficiency, and power
//! efficiency.
//!
//! ```sh
//! cargo run --release --example compose_sweep [workload]
//! ```

use clp::core::{compile_workload, run_compiled, sweep, ProcessorConfig};
use clp::power::{perf2_per_watt, perf_per_area};
use clp::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "autocor".into());
    let workload = suite::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload '{name}'; see clp::workloads::suite"));

    let runs = sweep(&workload, &[1, 2, 4, 8, 16, 32])?;
    let base_cycles = runs[0].1.stats.cycles;

    println!("{name}: composition sweep");
    println!(
        "{:>6} {:>10} {:>9} {:>12} {:>12}",
        "cores", "cycles", "speedup", "perf/area", "perf^2/W"
    );
    let mut best = (0usize, 0.0f64);
    let mut best_area = (0usize, 0.0f64);
    let mut best_power = (0usize, 0.0f64);
    for (n, r) in &runs {
        let speedup = base_cycles as f64 / r.stats.cycles as f64;
        let pa = perf_per_area(r.stats.cycles, r.area_mm2);
        let pw = perf2_per_watt(r.stats.cycles, r.power.total());
        println!(
            "{n:>6} {:>10} {speedup:>8.2}x {pa:>12.3e} {pw:>12.3e}",
            r.stats.cycles
        );
        if speedup > best.1 {
            best = (*n, speedup);
        }
        if pa > best_area.1 {
            best_area = (*n, pa);
        }
        if pw > best_power.1 {
            best_power = (*n, pw);
        }
    }

    let cw = compile_workload(&workload)?;
    let trips = run_compiled(&cw, &ProcessorConfig::trips())?;
    println!(
        "{:>6} {:>10}   (TRIPS baseline)",
        "trips", trips.stats.cycles
    );

    println!();
    println!("best performance      : {} cores ({:.2}x)", best.0, best.1);
    println!("best area efficiency  : {} cores", best_area.0);
    println!("best power efficiency : {} cores", best_power.0);
    println!();
    println!("The composable array can pick any of these operating points at");
    println!("run time without recompiling — that is the paper's central claim.");
    Ok(())
}
