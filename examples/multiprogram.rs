//! Multiprogramming: compose one chip into asymmetric logical processors
//! running different programs simultaneously (Figure 1b's story), with a
//! shared L2 and real inter-processor contention, then verify every
//! program's outputs.
//!
//! ```sh
//! cargo run --release --example multiprogram
//! ```

use clp::core::{run_multiprogram, ProgramSpec};
use clp::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A high-ILP kernel gets a 16-core processor; medium and low-ILP
    // programs get 8 and 4; two tiny serial tasks get 2 cores each.
    let specs = vec![
        ProgramSpec {
            workload: suite::by_name("autocor").expect("exists"),
            cores: 16,
        },
        ProgramSpec {
            workload: suite::by_name("conv").expect("exists"),
            cores: 8,
        },
        ProgramSpec {
            workload: suite::by_name("gcc").expect("exists"),
            cores: 4,
        },
        ProgramSpec {
            workload: suite::by_name("tblook").expect("exists"),
            cores: 2,
        },
        ProgramSpec {
            workload: suite::by_name("rspeed").expect("exists"),
            cores: 2,
        },
    ];
    let total: usize = specs.iter().map(|s| s.cores).sum();
    println!("composing {} programs over {total}/32 cores:", specs.len());
    for s in &specs {
        println!("  {:<8} on {:>2} cores", s.workload.name, s.cores);
    }

    let out = run_multiprogram(&specs)?;
    println!();
    println!(
        "{:<8} {:>8} {:>9} {:>8}",
        "program", "cores", "cycles", "correct"
    );
    for (i, s) in specs.iter().enumerate() {
        println!(
            "{:<8} {:>8} {:>9} {:>8}",
            s.workload.name, s.cores, out.cycles[i], out.correct[i]
        );
    }
    println!();
    println!(
        "chip totals: {} cycles, {} blocks committed, {} L2 accesses",
        out.stats.cycles,
        out.stats.total_blocks_committed(),
        out.stats.mem.l2_hits + out.stats.mem.l2_misses
    );
    assert!(out.correct.iter().all(|&c| c), "all programs must verify");
    Ok(())
}
