//! EDGE assembly tour: build a hyperblock by hand with the block
//! builder, print its textual assembly, round-trip it through the binary
//! encoding, and show how composition reinterprets instruction IDs as
//! placement coordinates.
//!
//! ```sh
//! cargo run --release --example edge_assembly
//! ```

use clp::isa::{
    asm, decode_instruction, encode_instruction, BlockBuilder, BranchKind, Opcode, PredSense, Reg,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // r3 = (r1 < r2) ? r1*2 : r2+1, then loop back to ourselves.
    let mut b = BlockBuilder::new(0x4000);
    let x = b.read(Reg::new(1));
    let y = b.read(Reg::new(2));
    let cmp = b.op2(Opcode::Tlt, x, y);
    b.set_pred(Some((cmp, PredSense::OnTrue)));
    let two = b.movi(2);
    let doubled = b.op2(Opcode::Mul, x, two);
    b.set_pred(Some((cmp, PredSense::OnFalse)));
    let bumped = b.op1i(Opcode::Addi, y, 1);
    b.set_pred(None);
    let w = b.write_id(Reg::new(3));
    b.connect(doubled, w, clp::isa::Operand::Left);
    b.connect(bumped, w, clp::isa::Operand::Left);
    b.branch(BranchKind::Branch, Some(0x4000), 0);
    let block = b.finish()?;

    println!("=== textual assembly ===");
    let text = asm::format_block(&block);
    print!("{text}");

    // Round-trip through the parser and the binary encoding.
    let parsed = asm::parse_block(&text)?;
    assert_eq!(parsed, block);
    println!("=== binary encoding (first 4 instructions) ===");
    for (i, inst) in block.instructions().iter().take(4).enumerate() {
        let enc = encode_instruction(inst);
        let dec = decode_instruction(enc)?;
        assert_eq!(&dec, inst);
        println!("i{i}: {:#018x} ext={:?}", enc.primary, enc.ext);
    }

    println!("=== composition reinterprets the same target bits ===");
    for n_cores in [1usize, 4, 32] {
        let placements: Vec<String> = block
            .instructions()
            .iter()
            .enumerate()
            .take(6)
            .map(|(i, _)| {
                let id = clp::isa::InstId::new(i);
                format!(
                    "i{i}->core{}slot{}",
                    id.core_of(n_cores),
                    id.slot_of(n_cores)
                )
            })
            .collect();
        println!("{n_cores:>2} cores: {}", placements.join(" "));
    }
    Ok(())
}
