//! Adaptive composition: the paper's future-work story (§8) — run-time
//! software monitors a thread and grows or shrinks its processor to the
//! goal at hand, with no recompilation between epochs.
//!
//! ```sh
//! cargo run --release --example adaptive [workload]
//! ```

use clp::core::{adapt_composition, AdaptGoal};
use clp::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "conv".into());
    let workload = suite::by_name(&name).unwrap_or_else(|| panic!("unknown workload '{name}'"));

    for (goal, label) in [
        (AdaptGoal::Performance, "performance      "),
        (AdaptGoal::AreaEfficiency, "area efficiency  "),
        (AdaptGoal::PowerEfficiency, "power efficiency "),
    ] {
        let out = adapt_composition(&workload, goal, 4)?;
        let path: Vec<String> = out
            .history
            .iter()
            .map(|s| format!("{}c({})", s.cores, s.cycles))
            .collect();
        println!(
            "{label} -> {:>2} cores   search path: {}",
            out.cores,
            path.join(" -> ")
        );
    }
    println!();
    println!("Same binary, three operating points — the composable array");
    println!("moves between them at run time (cf. §8 of the paper).");
    Ok(())
}
