//! Quickstart: compile one benchmark to EDGE code, compose a 4-core
//! TFlex processor, run it, verify against the reference interpreter,
//! and print performance/power/area.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use clp::core::{run_workload, ProcessorConfig};
use clp::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = suite::by_name("conv").expect("conv is in the suite");
    println!(
        "workload: {} ({:?}, {:?} ILP)",
        workload.name, workload.class, workload.ilp
    );

    let outcome = run_workload(&workload, &ProcessorConfig::tflex(4))?;
    let proc = &outcome.stats.procs[0];
    println!("correct:  {}", outcome.correct);
    println!("cycles:   {}", outcome.stats.cycles);
    println!(
        "blocks:   {} committed, {} flushed",
        proc.blocks_committed, proc.blocks_flushed
    );
    println!("IPC:      {:.2}", proc.ipc());
    println!(
        "branch prediction: {}/{} mispredicted",
        proc.predictor.mispredictions, proc.predictor.predictions
    );
    println!("power:    {:.2} W", outcome.power.total());
    println!("area:     {:.1} mm^2 (4 TFlex cores)", outcome.area_mm2);
    Ok(())
}
