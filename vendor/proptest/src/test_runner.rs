//! Deterministic case runner and configuration.

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
///
/// Only the fields this workspace sets are present; construct with struct
/// update syntax (`..ProptestConfig::default()`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for API compatibility; this implementation never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for API compatibility; generation here never rejects.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256 cases; 64 keeps tier-1 runtime
        // modest while still exercising each property broadly.
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message (mirrors `TestCaseError::fail`).
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// A rejected case (treated as failure here; no rejection budget).
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic split-mix RNG driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// FNV-1a, used to derive a stable per-test base seed from its name.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `config.cases` generated cases of the property `body`, panicking
/// on the first failure with the case number and seed.
///
/// # Panics
///
/// Panics when a case returns `Err`, reporting the reproduction seed.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(test_name);
    for case in 0..config.cases {
        let seed = base.wrapping_add(u64::from(case).wrapping_mul(0x5851_f42d_4c95_7f2d));
        let mut rng = TestRng::new(seed);
        if let Err(e) = body(&mut rng) {
            panic!(
                "property `{test_name}` failed at case {case}/{} (seed {seed:#x}):\n{e}",
                config.cases
            );
        }
    }
}
