//! The [`Strategy`] trait and combinators.
//!
//! A strategy here is simply a deterministic generator driven by
//! [`TestRng`]; there is no shrinking tree.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn gen_one(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.gen_one(rng)))
    }

    /// Builds a recursive strategy: `recurse` wraps the current strategy
    /// into one more level of structure, applied up to `depth` times.
    /// (`_desired_size` and `_expected_branch_size` are accepted for
    /// proptest signature compatibility; sizes are bounded instead by
    /// mixing the leaf strategy back in at every level.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            cur = Union::new(vec![deeper, leaf.clone()]).boxed();
        }
        cur
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_one(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_one(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_one(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn gen_one(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_one(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_one(rng))
    }
}

/// Uniform choice among several strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    /// A union over the given (type-erased) strategies.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn gen_one(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() as usize) % self.options.len();
        self.options[i].gen_one(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn gen_one(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn gen_one(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn gen_one(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.gen_one(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
}

// ---------------------------------------------------------------------------
// Collection sizes
// ---------------------------------------------------------------------------

/// A collection-length specification (`5`, `0..8`, or `1..=4`).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    /// Draws a length.
    #[must_use]
    pub fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.max - self.min).max(1) as u64;
        self.min + (rng.next_u64() % span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}
