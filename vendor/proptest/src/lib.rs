//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the subset of proptest this workspace's property tests
//! use: `Strategy`/`BoxedStrategy`/`Just`/ranges/tuples, the
//! `collection`, `option`, and `sample` modules, and the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, and `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its seed and generated
//!   inputs (via `Debug` in the assertion message) but is not minimized.
//! - **Deterministic seeding.** Case `i` of test `t` always sees the same
//!   RNG stream, so failures reproduce without a persistence file.
//! - Default `cases` is 64 (not 256) to keep tier-1 runtime modest.

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform in [0, 1) scaled over a modest exponent range; adequate
        // for tests that just need "some" floats.
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let scale = (rng.next_u64() % 61) as i32 - 30;
        frac * 2f64.powi(scale)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
    type Value = T;
    fn gen_one(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained strategy for `T` (`any::<u64>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`vec`).
pub mod collection {
    use super::strategy::{SizeRange, Strategy};
    use super::test_runner::TestRng;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                size: self.size,
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_one(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.gen_one(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, 1..8)` — a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`of`).
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<T>` (`None` one time in four).
    pub struct OptionStrategy<S>(S);

    impl<S: Clone> Clone for OptionStrategy<S> {
        fn clone(&self) -> Self {
            OptionStrategy(self.0.clone())
        }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_one(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.0.gen_one(rng))
            }
        }
    }

    /// `proptest::option::of(inner)` — an optional-value strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Sampling strategies (`select`, `Index`).
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::Arbitrary;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Clone for Select<T> {
        fn clone(&self) -> Self {
            Select(self.0.clone())
        }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn gen_one(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() as usize) % self.0.len();
            self.0[i].clone()
        }
    }

    /// `proptest::sample::select(vec![...])` — pick one of the given values.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select of empty list");
        Select(options)
    }

    /// A position into a collection whose length is chosen later
    /// (`index.index(len)`).
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Maps this sample onto a collection of length `len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __strategies = ($($strat,)+);
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::gen_one(&__strategies, __rng);
                    let __ret: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    __ret
                });
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)*
        }
    };
}

/// One-of strategy: `prop_oneof![a, b, c]` (unweighted).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            let __msg = format!($($fmt)*);
            $crate::prop_assert!(
                false,
                "{}\nassertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                __msg, stringify!($a), stringify!($b), __a, __b
            );
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}
