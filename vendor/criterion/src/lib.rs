//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! `criterion_group!`, `criterion_main!` — timed with `std::time::Instant`.
//! There is no statistical analysis; each benchmark reports the mean
//! wall-clock time over `sample_size` samples after a warm-up run.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    samples: u64,
    /// Mean duration of one routine invocation, filled in by `iter*`.
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, calling it once per sample after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.mean = start.elapsed() / u32::try_from(self.samples).unwrap_or(1);
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / u32::try_from(self.samples).unwrap_or(1);
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "bench {name:<48} {:>12.3?}/iter ({} samples)",
            b.mean, b.samples
        );
        self
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// Declares a benchmark group, in either positional or struct-like form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
