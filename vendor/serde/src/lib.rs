//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this vendored crate provides the subset of serde's surface the
//! workspace actually uses: `#[derive(Serialize, Deserialize)]` on
//! non-generic structs and enums, trait bounds `T: Serialize` /
//! `T: Deserialize`, and (through the sibling `serde_json` stand-in)
//! JSON text round-trips.
//!
//! Unlike real serde's visitor architecture, serialization here goes
//! through an owned [`Value`] tree — dramatically simpler, and fully
//! adequate for the statistics/figure payloads this workspace emits.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization value (the JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64` (or naturally unsigned).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The value as an `f64`, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as a `bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object (list of key/value pairs).
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a field of an object by key (`Null` if absent or not an
    /// object).
    #[must_use]
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }

    /// Whether the value is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Error produced when a [`Value`] cannot be converted to the requested
/// type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A new error with the given message.
    #[must_use]
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] if the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::msg("expected f64"))
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::msg("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::msg("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .and_then(|s| {
                let mut it = s.chars();
                match (it.next(), it.next()) {
                    (Some(c), None) => Some(c),
                    _ => None,
                }
            })
            .ok_or_else(|| DeError::msg("expected single-char string"))
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| DeError::msg("array length mismatch"))
    }
}

/// Stringifies a map key for the JSON data model.
fn key_string<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Value::String(s) => s,
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Float(f) => f.to_string(),
        other => crate::json::to_string_value(&other, false),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::msg("expected object"))?
            .iter()
            .map(|(k, val)| {
                let key = K::from_value(&crate::json::parse_scalar_key(k))?;
                Ok((key, V::from_value(val)?))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::msg("expected tuple array"))?;
                Ok(($($t::from_value(a.get($n).unwrap_or(&Value::Null))?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

pub mod json;
