//! JSON text emission and parsing for [`Value`](crate::Value).
//!
//! The sibling `serde_json` stand-in re-exports these helpers; they live
//! here so the `Value` type and its text format stay in one crate.

use crate::{DeError, Value};
use std::fmt::Write as _;

/// Renders a [`Value`] as JSON text. `pretty` uses 2-space indentation.
#[must_use]
pub fn to_string_value(v: &Value, pretty: bool) -> String {
    let mut out = String::new();
    write_value(&mut out, v, pretty, 0);
    out
}

fn write_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_value(out: &mut String, v: &Value, pretty: bool, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    write_indent(out, depth + 1);
                }
                write_value(out, item, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                write_indent(out, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    write_indent(out, depth + 1);
                }
                write_escaped(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                write_indent(out, depth);
            }
            out.push('}');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() || f.is_infinite() {
        // JSON has no NaN/Inf; follow serde_json's lossy convention.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Re-wraps an object key (always stored as a string) so integer-keyed
/// maps like `BTreeMap<usize, f64>` can round-trip.
#[must_use]
pub fn parse_scalar_key(k: &str) -> Value {
    if let Ok(u) = k.parse::<u64>() {
        Value::UInt(u)
    } else if let Ok(i) = k.parse::<i64>() {
        Value::Int(i)
    } else {
        Value::String(k.to_string())
    }
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`DeError`] on malformed input.
pub fn parse(text: &str) -> Result<Value, DeError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(DeError::msg(format!("trailing data at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), DeError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(DeError::msg(format!("expected `{lit}` at byte {}", *pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, DeError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(DeError::msg("unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(DeError::msg(format!("expected , or ] at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                entries.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(DeError::msg(format!("expected , or }} at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, DeError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(DeError::msg(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(DeError::msg("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| DeError::msg("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| DeError::msg("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| DeError::msg("bad \\u escape"))?;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(DeError::msg("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 code point.
                let rest =
                    std::str::from_utf8(&b[*pos..]).map_err(|_| DeError::msg("invalid utf-8"))?;
                let c = rest.chars().next().unwrap();
                s.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, DeError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap_or("");
    if text.is_empty() || text == "-" {
        return Err(DeError::msg(format!("expected number at byte {start}")));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| DeError::msg(format!("bad number `{text}`")))
}
