//! Offline stand-in for `serde_json`, backed by the vendored serde's
//! [`Value`] tree and JSON text codec.

#![warn(missing_docs)]

pub use serde::Value;

use serde::{DeError, Deserialize, Serialize};

/// Error type for JSON encoding/decoding.
pub type Error = DeError;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for this implementation; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::json::to_string_value(&value.to_value(), false))
}

/// Serializes `value` to a pretty-printed JSON string.
///
/// # Errors
///
/// Never fails for this implementation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::json::to_string_value(&value.to_value(), true))
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let v = serde::json::parse(text)?;
    T::from_value(&v)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on a shape mismatch.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T> {
    T::from_value(v)
}

/// Builds a [`Value`] from JSON-ish literal syntax (subset used in tests).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([$($item:tt),* $(,)?]) => {
        $crate::Value::Array(vec![$($crate::json!($item)),*])
    };
    ({$($key:literal : $val:tt),* $(,)?}) => {
        $crate::Value::Object(vec![$(($key.to_string(), $crate::json!($val))),*])
    };
    ($other:expr) => { ::serde::Serialize::to_value(&$other) };
}
