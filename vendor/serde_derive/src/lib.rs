//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote, which
//! are unavailable offline). The parser covers exactly the shapes this
//! workspace uses: non-generic structs (named, tuple, unit) and enums
//! whose variants are unit (optionally with a discriminant), newtype,
//! tuple, or struct-like. Serialization follows serde's external-tagging
//! conventions so the JSON output looks like real serde's.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree conversion).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (value-tree reconstruction).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

enum Fields {
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (count only; types are recovered by inference).
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found `{other}`"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "derive(Serialize/Deserialize): generic types are not supported by the vendored serde"
        );
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("expected enum body"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Advances past outer attributes (`#[...]`) and a visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Advances past tokens until a comma at angle-bracket depth zero
/// (or end of input). Grouped delimiters are single trees, so only
/// `<`/`>` need explicit depth tracking (e.g. `BTreeMap<usize, f64>`).
fn skip_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => names.push(id.to_string()),
            other => panic!("expected field name, found `{other}`"),
        }
        i += 1; // name
        i += 1; // `:`
        skip_to_comma(&tokens, &mut i);
        i += 1; // `,`
    }
    Fields::Named(names)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut n = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        n += 1;
        skip_to_comma(&tokens, &mut i);
        i += 1;
    }
    n
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found `{other}`"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                parse_named_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // A unit variant may carry an explicit discriminant (`Name = 3`).
        skip_to_comma(&tokens, &mut i);
        i += 1; // `,`
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (string-based; parsed back into a TokenStream)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))")
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let pats: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Array(vec![{}]))]),",
                                pats.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let pats = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {pats} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Object(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("let _ = value; Ok({name})"),
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_value(value.get({f:?}))?")
                        })
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| format!(
                            "::serde::Deserialize::from_value(a.get({k}).unwrap_or(&::serde::Value::Null))?"
                        ))
                        .collect();
                    format!(
                        "let a = value.as_array().ok_or_else(|| ::serde::DeError::msg(\"expected tuple-struct array\"))?;\n\
                         Ok({name}({}))",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{vn:?} => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| format!(
                                    "::serde::Deserialize::from_value(a.get({k}).unwrap_or(&::serde::Value::Null))?"
                                ))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let a = inner.as_array().ok_or_else(|| ::serde::DeError::msg(\"expected variant array\"))?;\n\
                                     Ok({name}::{vn}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::Deserialize::from_value(inner.get({f:?}))?")
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         if let Some(s) = value.as_str() {{\n\
                             return match s {{\n{unit}\n\
                                 other => Err(::serde::DeError::msg(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }};\n\
                         }}\n\
                         if let Some(entries) = value.as_object() {{\n\
                             if let Some((tag, inner)) = entries.first() {{\n\
                                 let _ = inner;\n\
                                 return match tag.as_str() {{\n{tagged}\n\
                                     other => Err(::serde::DeError::msg(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }};\n\
                             }}\n\
                         }}\n\
                         Err(::serde::DeError::msg(\"expected {name} enum value\"))\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    }
}
