//! Offline stand-in for the `rand` crate.
//!
//! The workspace declares `rand` as a dev-dependency but does not
//! currently use it in source; this minimal deterministic PRNG satisfies
//! dependency resolution offline and gives future tests a usable
//! generator.

#![warn(missing_docs)]

/// A small xorshift64* generator.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// A generator seeded from `seed` (zero is remapped).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed.max(1) }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A value uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range_u64 bound must be positive");
        self.next_u64() % bound
    }

    /// A float uniform in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
