//! Opcode definitions and classification.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of control transfer performed by a branch instruction.
///
/// The branch-type (`Btype`) predictor guesses this kind to select among
/// the BTB, CTB, RAS, and sequential-address target predictors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Regular branch to a statically known block address (BTB-predicted).
    Branch,
    /// Function call (CTB-predicted; pushes the return address onto the RAS).
    Call,
    /// Function return; the actual target arrives as the branch's operand
    /// (RAS-predicted).
    Return,
    /// Fall through to the next sequential block.
    Seq,
    /// Terminate the program (no successor block).
    Halt,
}

impl BranchKind {
    /// All branch kinds, in encoding order.
    pub const ALL: [BranchKind; 5] = [
        BranchKind::Branch,
        BranchKind::Call,
        BranchKind::Return,
        BranchKind::Seq,
        BranchKind::Halt,
    ];

    /// Three-bit encoding.
    #[must_use]
    pub fn encode(self) -> u8 {
        match self {
            BranchKind::Branch => 0,
            BranchKind::Call => 1,
            BranchKind::Return => 2,
            BranchKind::Seq => 3,
            BranchKind::Halt => 4,
        }
    }

    /// Decodes the three-bit branch-kind field.
    #[must_use]
    pub fn decode(bits: u8) -> Option<Self> {
        BranchKind::ALL.get(bits as usize).copied()
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Branch => "br",
            BranchKind::Call => "call",
            BranchKind::Return => "ret",
            BranchKind::Seq => "seq",
            BranchKind::Halt => "halt",
        };
        f.write_str(s)
    }
}

/// Coarse functional-unit classification of an opcode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpcodeClass {
    /// Integer ALU operations (issue on an INT port).
    Int,
    /// Floating-point operations (issue on the FP port).
    Float,
    /// Memory operations (effective-address computation on an INT port,
    /// then routed to a data-cache bank).
    Memory,
    /// Branches (INT port).
    Branch,
    /// Register-interface pseudo-ops (`READ`/`WRITE`).
    RegInterface,
}

macro_rules! opcodes {
    ($( $(#[$meta:meta])* $name:ident = $code:expr => ($class:expr, $arity:expr, $lat:expr, $mnem:expr) ),+ $(,)?) => {
        /// An EDGE instruction opcode.
        ///
        /// The tuple in each definition is `(class, data-operand arity,
        /// execution latency in cycles, mnemonic)`.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
        #[repr(u8)]
        pub enum Opcode {
            $( $(#[$meta])* $name = $code ),+
        }

        impl Opcode {
            /// Every defined opcode.
            pub const ALL: &'static [Opcode] = &[ $(Opcode::$name),+ ];

            /// The functional-unit class of this opcode.
            #[must_use]
            pub fn class(self) -> OpcodeClass {
                match self { $(Opcode::$name => $class),+ }
            }

            /// Number of data operands (`Left`/`Right`) the instruction
            /// waits for before firing (excluding any predicate operand).
            #[must_use]
            pub fn arity(self) -> usize {
                match self { $(Opcode::$name => $arity),+ }
            }

            /// Execution latency in cycles on its functional unit.
            #[must_use]
            pub fn latency(self) -> u32 {
                match self { $(Opcode::$name => $lat),+ }
            }

            /// Assembler mnemonic.
            #[must_use]
            pub fn mnemonic(self) -> &'static str {
                match self { $(Opcode::$name => $mnem),+ }
            }

            /// Decodes the eight-bit opcode field.
            #[must_use]
            pub fn decode(bits: u8) -> Option<Self> {
                match bits {
                    $( $code => Some(Opcode::$name), )+
                    _ => None,
                }
            }

            /// Looks an opcode up by its assembler mnemonic.
            #[must_use]
            pub fn from_mnemonic(s: &str) -> Option<Self> {
                match s {
                    $( $mnem => Some(Opcode::$name), )+
                    _ => None,
                }
            }
        }
    };
}

use OpcodeClass::{Branch, Float, Int, Memory, RegInterface};

opcodes! {
    // ---- integer ALU ----
    /// 64-bit integer addition.
    Add = 0x00 => (Int, 2, 1, "add"),
    /// 64-bit integer subtraction.
    Sub = 0x01 => (Int, 2, 1, "sub"),
    /// 64-bit integer multiplication (low 64 bits).
    Mul = 0x02 => (Int, 2, 3, "mul"),
    /// Signed 64-bit division (division by zero yields zero).
    Div = 0x03 => (Int, 2, 12, "div"),
    /// Signed 64-bit remainder (modulo zero yields zero).
    Rem = 0x04 => (Int, 2, 12, "rem"),
    /// Bitwise AND.
    And = 0x05 => (Int, 2, 1, "and"),
    /// Bitwise OR.
    Or = 0x06 => (Int, 2, 1, "or"),
    /// Bitwise XOR.
    Xor = 0x07 => (Int, 2, 1, "xor"),
    /// Logical shift left (shift amount taken modulo 64).
    Shl = 0x08 => (Int, 2, 1, "shl"),
    /// Logical shift right.
    Shr = 0x09 => (Int, 2, 1, "shr"),
    /// Arithmetic shift right.
    Sar = 0x0a => (Int, 2, 1, "sar"),
    /// Bitwise NOT (unary).
    Not = 0x0b => (Int, 1, 1, "not"),
    /// Two's-complement negate (unary).
    Neg = 0x0c => (Int, 1, 1, "neg"),

    // ---- tests (produce 0/1, usable as data or predicates) ----
    /// Set to 1 if equal.
    Teq = 0x10 => (Int, 2, 1, "teq"),
    /// Set to 1 if not equal.
    Tne = 0x11 => (Int, 2, 1, "tne"),
    /// Set to 1 if signed less-than.
    Tlt = 0x12 => (Int, 2, 1, "tlt"),
    /// Set to 1 if signed less-or-equal.
    Tle = 0x13 => (Int, 2, 1, "tle"),
    /// Set to 1 if signed greater-than.
    Tgt = 0x14 => (Int, 2, 1, "tgt"),
    /// Set to 1 if signed greater-or-equal.
    Tge = 0x15 => (Int, 2, 1, "tge"),
    /// Set to 1 if unsigned less-than.
    Tltu = 0x16 => (Int, 2, 1, "tltu"),
    /// Set to 1 if unsigned greater-or-equal.
    Tgeu = 0x17 => (Int, 2, 1, "tgeu"),

    // ---- data movement ----
    /// Copy the single operand to the targets (fan-out tree node).
    Mov = 0x18 => (Int, 1, 1, "mov"),
    /// Generate the immediate constant (no data operands).
    Movi = 0x19 => (Int, 0, 1, "movi"),
    /// Add the immediate to the single operand (`addi`).
    Addi = 0x1a => (Int, 1, 1, "addi"),
    /// Shift the single operand left by the immediate.
    Shli = 0x1b => (Int, 1, 1, "shli"),
    /// Produce a null token: resolves a register write or a store LSID on
    /// a predicated-off path without performing it.
    Null = 0x1c => (Int, 0, 1, "null"),

    // ---- floating point (f64 bit pattern in the 64-bit value) ----
    /// FP addition.
    Fadd = 0x20 => (Float, 2, 4, "fadd"),
    /// FP subtraction.
    Fsub = 0x21 => (Float, 2, 4, "fsub"),
    /// FP multiplication.
    Fmul = 0x22 => (Float, 2, 4, "fmul"),
    /// FP division.
    Fdiv = 0x23 => (Float, 2, 16, "fdiv"),
    /// Set to 1 if FP equal.
    Feq = 0x24 => (Float, 2, 2, "feq"),
    /// Set to 1 if FP less-than.
    Flt = 0x25 => (Float, 2, 2, "flt"),
    /// Set to 1 if FP less-or-equal.
    Fle = 0x26 => (Float, 2, 2, "fle"),
    /// Convert signed integer to FP (unary).
    Itof = 0x27 => (Float, 1, 4, "itof"),
    /// Convert FP to signed integer, truncating (unary).
    Ftoi = 0x28 => (Float, 1, 4, "ftoi"),
    /// FP negate (unary).
    Fneg = 0x29 => (Float, 1, 1, "fneg"),

    // ---- memory ----
    /// Load a 64-bit word from `operand + imm`; carries an LSID.
    Ld = 0x30 => (Memory, 1, 1, "ld"),
    /// Load a byte (zero-extended) from `operand + imm`; carries an LSID.
    Ldb = 0x31 => (Memory, 1, 1, "ldb"),
    /// Store the right operand as a 64-bit word at `left + imm`.
    St = 0x32 => (Memory, 2, 1, "st"),
    /// Store the low byte of the right operand at `left + imm`.
    Stb = 0x33 => (Memory, 2, 1, "stb"),

    // ---- control ----
    /// Block exit branch. Carries a [`BranchInfo`](crate::BranchInfo):
    /// exit ID, branch kind, and (except for returns) a static target.
    Bro = 0x38 => (Branch, 0, 1, "bro"),

    // ---- register interface ----
    /// Read an architectural register and forward it to the targets.
    Read = 0x3c => (RegInterface, 0, 1, "read"),
    /// Receive one value (or null) and write it to an architectural
    /// register when the block commits.
    Write = 0x3d => (RegInterface, 1, 1, "write"),
}

impl Opcode {
    /// True for `ld`/`ldb`.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Ld | Opcode::Ldb)
    }

    /// True for `st`/`stb`.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::St | Opcode::Stb)
    }

    /// True if the instruction accepts an immediate field.
    #[must_use]
    pub fn has_immediate(self) -> bool {
        matches!(
            self,
            Opcode::Movi
                | Opcode::Addi
                | Opcode::Shli
                | Opcode::Ld
                | Opcode::Ldb
                | Opcode::St
                | Opcode::Stb
        )
    }

    /// True if the instruction produces a result value routed to targets.
    ///
    /// Stores, branches, writes, and nulls do not produce a data result
    /// (nulls produce a *null token*, delivered to targets but carrying no
    /// value).
    #[must_use]
    pub fn produces_value(self) -> bool {
        !matches!(self, Opcode::St | Opcode::Stb | Opcode::Bro | Opcode::Write)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_decode_roundtrip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::decode(op as u8), Some(op), "{op:?}");
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn opcode_decode_rejects_unknown() {
        assert_eq!(Opcode::decode(0xff), None);
        assert_eq!(Opcode::from_mnemonic("frobnicate"), None);
    }

    #[test]
    fn branch_kind_roundtrip() {
        for k in BranchKind::ALL {
            assert_eq!(BranchKind::decode(k.encode()), Some(k));
        }
        assert_eq!(BranchKind::decode(7), None);
    }

    #[test]
    fn classes_are_consistent() {
        assert!(Opcode::Ld.is_load());
        assert!(!Opcode::Ld.is_store());
        assert!(Opcode::Stb.is_store());
        assert_eq!(Opcode::Fadd.class(), OpcodeClass::Float);
        assert_eq!(Opcode::Bro.class(), OpcodeClass::Branch);
        assert_eq!(Opcode::Read.arity(), 0);
        assert_eq!(Opcode::Write.arity(), 1);
        assert!(Opcode::St.has_immediate());
        assert!(!Opcode::Add.has_immediate());
        assert!(Opcode::Null.produces_value());
        assert!(!Opcode::Write.produces_value());
    }

    #[test]
    fn latencies_are_plausible() {
        assert_eq!(Opcode::Add.latency(), 1);
        assert!(Opcode::Fdiv.latency() > Opcode::Fmul.latency());
        assert!(Opcode::Div.latency() > Opcode::Mul.latency());
    }
}
