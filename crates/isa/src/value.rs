//! Value semantics shared by every executor (IR interpreter, TFlex
//! simulator, and the conventional baseline simulator).
//!
//! All values are 64-bit words. Integer operations use two's-complement
//! wrapping arithmetic; floating-point operations interpret the word as an
//! IEEE-754 `f64` bit pattern. Division or remainder by zero yields zero
//! (a deliberate, documented deviation from trapping semantics so that
//! block-atomic execution never faults mid-block).

use crate::Opcode;

/// Evaluates a non-memory, value-producing operation.
///
/// `a` and `b` are the left and right operands (ignored for zero-arity
/// opcodes); `imm` is the instruction's immediate field.
///
/// # Panics
///
/// Panics if called with a memory, branch, or register-interface opcode —
/// those have side effects that the caller must model itself.
#[must_use]
pub fn eval(op: Opcode, imm: i64, a: u64, b: u64) -> u64 {
    let sa = a as i64;
    let sb = b as i64;
    let fa = f64::from_bits(a);
    let fb = f64::from_bits(b);
    match op {
        Opcode::Add => sa.wrapping_add(sb) as u64,
        Opcode::Sub => sa.wrapping_sub(sb) as u64,
        Opcode::Mul => sa.wrapping_mul(sb) as u64,
        Opcode::Div => {
            if sb == 0 {
                0
            } else {
                sa.wrapping_div(sb) as u64
            }
        }
        Opcode::Rem => {
            if sb == 0 {
                0
            } else {
                sa.wrapping_rem(sb) as u64
            }
        }
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a.wrapping_shl(b as u32),
        Opcode::Shr => a.wrapping_shr(b as u32),
        Opcode::Sar => (sa.wrapping_shr(b as u32)) as u64,
        Opcode::Not => !a,
        Opcode::Neg => (sa.wrapping_neg()) as u64,
        Opcode::Teq => u64::from(a == b),
        Opcode::Tne => u64::from(a != b),
        Opcode::Tlt => u64::from(sa < sb),
        Opcode::Tle => u64::from(sa <= sb),
        Opcode::Tgt => u64::from(sa > sb),
        Opcode::Tge => u64::from(sa >= sb),
        Opcode::Tltu => u64::from(a < b),
        Opcode::Tgeu => u64::from(a >= b),
        Opcode::Mov => a,
        Opcode::Movi => imm as u64,
        Opcode::Addi => sa.wrapping_add(imm) as u64,
        Opcode::Shli => a.wrapping_shl(imm as u32),
        Opcode::Null => 0,
        Opcode::Fadd => (fa + fb).to_bits(),
        Opcode::Fsub => (fa - fb).to_bits(),
        Opcode::Fmul => (fa * fb).to_bits(),
        Opcode::Fdiv => {
            if fb == 0.0 {
                0
            } else {
                (fa / fb).to_bits()
            }
        }
        Opcode::Feq => u64::from(fa == fb),
        Opcode::Flt => u64::from(fa < fb),
        Opcode::Fle => u64::from(fa <= fb),
        Opcode::Itof => (sa as f64).to_bits(),
        Opcode::Ftoi => (fa as i64) as u64,
        Opcode::Fneg => (-fa).to_bits(),
        Opcode::Ld
        | Opcode::Ldb
        | Opcode::St
        | Opcode::Stb
        | Opcode::Bro
        | Opcode::Read
        | Opcode::Write => {
            panic!("eval called with side-effecting opcode {op}")
        }
    }
}

/// Converts an `f64` into its 64-bit word representation.
#[must_use]
pub fn from_f64(x: f64) -> u64 {
    x.to_bits()
}

/// Interprets a 64-bit word as an `f64`.
#[must_use]
pub fn to_f64(x: u64) -> f64 {
    f64::from_bits(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ops_wrap() {
        assert_eq!(eval(Opcode::Add, 0, u64::MAX, 1), 0);
        assert_eq!(eval(Opcode::Sub, 0, 0, 1), u64::MAX);
        assert_eq!(eval(Opcode::Mul, 0, 3, 7), 21);
        assert_eq!(eval(Opcode::Neg, 0, 5, 0), (-5i64) as u64);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(eval(Opcode::Div, 0, 42, 0), 0);
        assert_eq!(eval(Opcode::Rem, 0, 42, 0), 0);
        assert_eq!(eval(Opcode::Fdiv, 0, from_f64(1.0), from_f64(0.0)), 0);
    }

    #[test]
    fn signed_vs_unsigned_compares() {
        let minus_one = (-1i64) as u64;
        assert_eq!(eval(Opcode::Tlt, 0, minus_one, 1), 1);
        assert_eq!(eval(Opcode::Tltu, 0, minus_one, 1), 0);
        assert_eq!(eval(Opcode::Tge, 0, 1, minus_one), 1);
        assert_eq!(eval(Opcode::Tgeu, 0, 1, minus_one), 0);
    }

    #[test]
    fn shifts() {
        assert_eq!(eval(Opcode::Shl, 0, 1, 8), 256);
        assert_eq!(eval(Opcode::Shli, 3, 1, 0), 8);
        assert_eq!(eval(Opcode::Shr, 0, (-8i64) as u64, 1), (u64::MAX >> 1) - 3);
        assert_eq!(eval(Opcode::Sar, 0, (-8i64) as u64, 1), (-4i64) as u64);
    }

    #[test]
    fn float_roundtrip_and_ops() {
        let x = from_f64(1.5);
        let y = from_f64(2.5);
        assert_eq!(to_f64(eval(Opcode::Fadd, 0, x, y)), 4.0);
        assert_eq!(to_f64(eval(Opcode::Fmul, 0, x, y)), 3.75);
        assert_eq!(eval(Opcode::Flt, 0, x, y), 1);
        assert_eq!(eval(Opcode::Ftoi, 0, from_f64(-2.9), 0), (-2i64) as u64);
        assert_eq!(to_f64(eval(Opcode::Itof, 0, (-3i64) as u64, 0)), -3.0);
    }

    #[test]
    fn immediates() {
        assert_eq!(eval(Opcode::Movi, -7, 0, 0), (-7i64) as u64);
        assert_eq!(eval(Opcode::Addi, 10, 5, 0), 15);
    }

    #[test]
    #[should_panic(expected = "side-effecting")]
    fn memory_ops_rejected() {
        let _ = eval(Opcode::Ld, 0, 0, 0);
    }
}
