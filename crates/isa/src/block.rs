//! Hyperblocks: the atomic unit of fetch, execution, and commit.

use crate::{
    BlockAddr, BranchKind, Instruction, Opcode, Operand, Reg, Target, MAX_BLOCK_EXITS,
    MAX_BLOCK_INSTRUCTIONS, MAX_BLOCK_LSIDS, MAX_BLOCK_READS, MAX_BLOCK_WRITES,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Validation failure for a [`Block`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockError {
    /// More than 128 instructions.
    TooManyInstructions(usize),
    /// More than 32 register reads.
    TooManyReads(usize),
    /// More than 32 register writes.
    TooManyWrites(usize),
    /// More than 32 distinct load/store IDs.
    TooManyLsids(usize),
    /// More than 8 distinct exit IDs.
    TooManyExits(usize),
    /// No exit branch at all: the block could never complete.
    NoExit,
    /// A target names an instruction index beyond the block length.
    DanglingTarget {
        /// Producer instruction index.
        from: usize,
        /// The out-of-range target.
        target: Target,
    },
    /// A target feeds an operand slot the consumer does not have
    /// (e.g. the right operand of a unary instruction, or the predicate
    /// slot of an unpredicated instruction).
    BadOperandSlot {
        /// Producer instruction index.
        from: usize,
        /// The offending target.
        target: Target,
    },
    /// An instruction requires an operand that no producer feeds, so it
    /// could never fire.
    UnfedOperand {
        /// Consumer instruction index.
        inst: usize,
        /// The starved operand slot.
        operand: Operand,
    },
    /// The intra-block dataflow graph has a cycle (instruction indices of
    /// one cycle member reported).
    CyclicDataflow(usize),
    /// Instruction is missing a required annotation (LSID, branch info,
    /// or register number) for its opcode.
    MissingAnnotation(usize),
    /// Two writes name the same architectural register.
    DuplicateWrite(Reg),
    /// A non-return, non-halt branch lacks a static target, or a
    /// return/halt carries one.
    BadBranchTarget(usize),
    /// The same exit ID is used with conflicting kinds or targets.
    InconsistentExit(u8),
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::TooManyInstructions(n) => {
                write!(
                    f,
                    "block has {n} instructions, max {MAX_BLOCK_INSTRUCTIONS}"
                )
            }
            BlockError::TooManyReads(n) => write!(f, "block has {n} reads, max {MAX_BLOCK_READS}"),
            BlockError::TooManyWrites(n) => {
                write!(f, "block has {n} writes, max {MAX_BLOCK_WRITES}")
            }
            BlockError::TooManyLsids(n) => write!(f, "block has {n} LSIDs, max {MAX_BLOCK_LSIDS}"),
            BlockError::TooManyExits(n) => write!(f, "block has {n} exits, max {MAX_BLOCK_EXITS}"),
            BlockError::NoExit => write!(f, "block has no exit branch"),
            BlockError::DanglingTarget { from, target } => {
                write!(f, "instruction {from} targets nonexistent {target}")
            }
            BlockError::BadOperandSlot { from, target } => {
                write!(f, "instruction {from} targets invalid slot {target}")
            }
            BlockError::UnfedOperand { inst, operand } => {
                write!(f, "instruction {inst} operand {operand} has no producer")
            }
            BlockError::CyclicDataflow(i) => {
                write!(f, "dataflow cycle through instruction {i}")
            }
            BlockError::MissingAnnotation(i) => {
                write!(f, "instruction {i} is missing a required annotation")
            }
            BlockError::DuplicateWrite(r) => write!(f, "multiple writes to register {r}"),
            BlockError::BadBranchTarget(i) => {
                write!(f, "branch {i} has an inconsistent static target")
            }
            BlockError::InconsistentExit(e) => {
                write!(f, "exit {e} used with conflicting kind or target")
            }
        }
    }
}

impl std::error::Error for BlockError {}

impl BlockError {
    /// The instruction index the error is primarily about, when the
    /// variant names one. Lets diagnostics (the assembler, `clp-lint`)
    /// point at the offending instruction instead of the whole block.
    #[must_use]
    pub fn primary_inst(&self) -> Option<usize> {
        match self {
            BlockError::DanglingTarget { from, .. } | BlockError::BadOperandSlot { from, .. } => {
                Some(*from)
            }
            BlockError::UnfedOperand { inst, .. } => Some(*inst),
            BlockError::CyclicDataflow(i)
            | BlockError::MissingAnnotation(i)
            | BlockError::BadBranchTarget(i) => Some(*i),
            _ => None,
        }
    }
}

/// One distinct exit of a block, as seen by the next-block predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExitSummary {
    /// The three-bit exit ID.
    pub exit_id: u8,
    /// Control-transfer kind of this exit.
    pub kind: BranchKind,
    /// Static target, if any.
    pub target: Option<BlockAddr>,
}

/// A validated EDGE hyperblock.
///
/// Construct blocks with [`BlockBuilder`](crate::BlockBuilder) or
/// [`Block::from_instructions`]; both enforce the ISA's structural
/// invariants (see [`BlockError`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Block {
    address: BlockAddr,
    instructions: Vec<Instruction>,
    reads: Vec<(usize, Reg)>,
    writes: Vec<(usize, Reg)>,
    store_lsids: Vec<u8>,
    exits: Vec<ExitSummary>,
}

impl Block {
    /// Validates `instructions` and assembles a block at `address`.
    ///
    /// # Errors
    ///
    /// Returns a [`BlockError`] describing the first violated invariant.
    pub fn from_instructions(
        address: BlockAddr,
        instructions: Vec<Instruction>,
    ) -> Result<Self, BlockError> {
        let n = instructions.len();
        if n > MAX_BLOCK_INSTRUCTIONS {
            return Err(BlockError::TooManyInstructions(n));
        }

        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let mut write_regs = BTreeSet::new();
        let mut lsids = BTreeSet::new();
        let mut store_lsids = BTreeSet::new();
        let mut exits: Vec<ExitSummary> = Vec::new();

        for (i, inst) in instructions.iter().enumerate() {
            match inst.opcode {
                Opcode::Read => {
                    let r = inst.reg.ok_or(BlockError::MissingAnnotation(i))?;
                    reads.push((i, r));
                }
                Opcode::Write => {
                    let r = inst.reg.ok_or(BlockError::MissingAnnotation(i))?;
                    if !write_regs.insert(r) {
                        return Err(BlockError::DuplicateWrite(r));
                    }
                    writes.push((i, r));
                }
                op if op.is_load() || op.is_store() => {
                    let l = inst.lsid.ok_or(BlockError::MissingAnnotation(i))?;
                    lsids.insert(l.index() as u8);
                    if op.is_store() {
                        store_lsids.insert(l.index() as u8);
                    }
                }
                Opcode::Null => {
                    // A null either resolves a store LSID or feeds a write
                    // (or another consumer) with a null token; both uses
                    // are legal and need no annotation beyond what the
                    // instruction already carries.
                    if let Some(l) = inst.lsid {
                        lsids.insert(l.index() as u8);
                        store_lsids.insert(l.index() as u8);
                    }
                }
                Opcode::Bro => {
                    let b = inst.branch.ok_or(BlockError::MissingAnnotation(i))?;
                    let needs_target = !matches!(b.kind, BranchKind::Return | BranchKind::Halt);
                    if needs_target != b.target.is_some() {
                        return Err(BlockError::BadBranchTarget(i));
                    }
                    match exits.iter().find(|e| e.exit_id == b.exit_id) {
                        Some(e) if e.kind != b.kind || e.target != b.target => {
                            return Err(BlockError::InconsistentExit(b.exit_id));
                        }
                        Some(_) => {}
                        None => exits.push(ExitSummary {
                            exit_id: b.exit_id,
                            kind: b.kind,
                            target: b.target,
                        }),
                    }
                }
                _ => {}
            }
        }

        if reads.len() > MAX_BLOCK_READS {
            return Err(BlockError::TooManyReads(reads.len()));
        }
        if writes.len() > MAX_BLOCK_WRITES {
            return Err(BlockError::TooManyWrites(writes.len()));
        }
        if lsids.len() > MAX_BLOCK_LSIDS {
            return Err(BlockError::TooManyLsids(lsids.len()));
        }
        if exits.len() > MAX_BLOCK_EXITS {
            return Err(BlockError::TooManyExits(exits.len()));
        }
        if exits.is_empty() {
            return Err(BlockError::NoExit);
        }

        Self::check_targets(&instructions)?;
        Self::check_acyclic(&instructions)?;

        exits.sort_by_key(|e| e.exit_id);
        Ok(Block {
            address,
            instructions,
            reads,
            writes,
            store_lsids: store_lsids.into_iter().collect(),
            exits,
        })
    }

    fn check_targets(instructions: &[Instruction]) -> Result<(), BlockError> {
        let n = instructions.len();
        // Track, per instruction, which operand slots are fed.
        let mut fed = vec![[false; 3]; n];
        for (i, inst) in instructions.iter().enumerate() {
            for t in inst.targets() {
                let ti = t.inst.index();
                if ti >= n {
                    return Err(BlockError::DanglingTarget { from: i, target: t });
                }
                let consumer = &instructions[ti];
                let ok = match t.operand {
                    Operand::Left => consumer.data_arity() >= 1,
                    Operand::Right => consumer.data_arity() >= 2,
                    Operand::Pred => consumer.is_predicated(),
                };
                if !ok {
                    return Err(BlockError::BadOperandSlot { from: i, target: t });
                }
                fed[ti][t.operand.encode() as usize] = true;
            }
        }
        for (i, inst) in instructions.iter().enumerate() {
            if inst.data_arity() >= 1 && !fed[i][0] {
                return Err(BlockError::UnfedOperand {
                    inst: i,
                    operand: Operand::Left,
                });
            }
            if inst.data_arity() >= 2 && !fed[i][1] {
                return Err(BlockError::UnfedOperand {
                    inst: i,
                    operand: Operand::Right,
                });
            }
            if inst.is_predicated() && !fed[i][2] {
                return Err(BlockError::UnfedOperand {
                    inst: i,
                    operand: Operand::Pred,
                });
            }
        }
        Ok(())
    }

    fn check_acyclic(instructions: &[Instruction]) -> Result<(), BlockError> {
        // Iterative three-color DFS over target edges.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = instructions.len();
        let mut color = vec![WHITE; n];
        for root in 0..n {
            if color[root] != WHITE {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = GRAY;
            while let Some(&mut (node, ref mut edge)) = stack.last_mut() {
                let succs: Vec<usize> = instructions[node]
                    .targets()
                    .map(|t| t.inst.index())
                    .collect();
                if *edge < succs.len() {
                    let next = succs[*edge];
                    *edge += 1;
                    match color[next] {
                        WHITE => {
                            color[next] = GRAY;
                            stack.push((next, 0));
                        }
                        GRAY => return Err(BlockError::CyclicDataflow(next)),
                        _ => {}
                    }
                } else {
                    color[node] = BLACK;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// The block's starting virtual address.
    #[must_use]
    pub fn address(&self) -> BlockAddr {
        self.address
    }

    /// Number of instructions in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True if the block contains no instructions (never true for a
    /// validated block, which must contain at least one branch).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The block's instructions, indexed by [`InstId`](crate::InstId).
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// `(instruction index, register)` pairs for all `READ` instructions.
    #[must_use]
    pub fn reads(&self) -> &[(usize, Reg)] {
        &self.reads
    }

    /// `(instruction index, register)` pairs for all `WRITE` instructions.
    #[must_use]
    pub fn writes(&self) -> &[(usize, Reg)] {
        &self.writes
    }

    /// LSIDs that must resolve (store or null) before the block completes.
    #[must_use]
    pub fn store_lsids(&self) -> &[u8] {
        &self.store_lsids
    }

    /// The block's distinct exits, sorted by exit ID.
    #[must_use]
    pub fn exits(&self) -> &[ExitSummary] {
        &self.exits
    }

    /// Total block outputs that completion detection waits for:
    /// one per register write, one per store LSID, plus one branch.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.writes.len() + self.store_lsids.len() + 1
    }

    /// The instruction slice held by `core` in an `n_cores` composition:
    /// indices `i` with `i % n_cores == core`.
    pub fn slice_for_core(
        &self,
        core: usize,
        n_cores: usize,
    ) -> impl Iterator<Item = (usize, &Instruction)> + '_ {
        debug_assert!(n_cores > 0);
        self.instructions
            .iter()
            .enumerate()
            .skip(core)
            .step_by(n_cores.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockBuilder, InstId, PredSense};

    fn halt_branch() -> Instruction {
        let mut i = Instruction::new(Opcode::Bro);
        i.branch = Some(crate::BranchInfo {
            exit_id: 0,
            kind: BranchKind::Halt,
            target: None,
        });
        i
    }

    #[test]
    fn minimal_block_validates() {
        let b = Block::from_instructions(0x100, vec![halt_branch()]).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.output_count(), 1);
        assert_eq!(b.exits().len(), 1);
        assert_eq!(b.exits()[0].kind, BranchKind::Halt);
    }

    #[test]
    fn empty_block_rejected() {
        assert_eq!(Block::from_instructions(0, vec![]), Err(BlockError::NoExit));
    }

    #[test]
    fn dangling_target_rejected() {
        let mut movi = Instruction::new(Opcode::Movi);
        movi.push_target(Target::new(InstId::new(99), Operand::Left));
        let err = Block::from_instructions(0, vec![movi, halt_branch()]).unwrap_err();
        assert!(matches!(err, BlockError::DanglingTarget { from: 0, .. }));
    }

    #[test]
    fn bad_operand_slot_rejected() {
        // movi targets the Right operand of a unary mov.
        let mut movi = Instruction::new(Opcode::Movi);
        movi.push_target(Target::new(InstId::new(1), Operand::Right));
        let mut mov = Instruction::new(Opcode::Mov);
        mov.push_target(Target::new(InstId::new(2), Operand::Left));
        let mut wr = Instruction::new(Opcode::Write);
        wr.reg = Some(Reg::new(1));
        let err = Block::from_instructions(0, vec![movi, mov, wr, halt_branch()]).unwrap_err();
        assert!(matches!(err, BlockError::BadOperandSlot { from: 0, .. }));
    }

    #[test]
    fn pred_target_requires_predicated_consumer() {
        let mut movi = Instruction::new(Opcode::Movi);
        movi.push_target(Target::new(InstId::new(1), Operand::Pred));
        let halt = halt_branch(); // unpredicated
        let err = Block::from_instructions(0, vec![movi, halt]).unwrap_err();
        assert!(matches!(err, BlockError::BadOperandSlot { .. }));
    }

    #[test]
    fn unfed_operand_rejected() {
        let mut wr = Instruction::new(Opcode::Write);
        wr.reg = Some(Reg::new(0));
        let err = Block::from_instructions(0, vec![wr, halt_branch()]).unwrap_err();
        assert_eq!(
            err,
            BlockError::UnfedOperand {
                inst: 0,
                operand: Operand::Left
            }
        );
    }

    #[test]
    fn cycle_rejected() {
        let mut a = Instruction::new(Opcode::Mov);
        a.push_target(Target::new(InstId::new(1), Operand::Left));
        let mut b = Instruction::new(Opcode::Mov);
        b.push_target(Target::new(InstId::new(0), Operand::Left));
        let err = Block::from_instructions(0, vec![a, b, halt_branch()]).unwrap_err();
        assert!(matches!(err, BlockError::CyclicDataflow(_)));
    }

    #[test]
    fn duplicate_write_rejected() {
        let mut m = Instruction::new(Opcode::Movi);
        m.push_target(Target::new(InstId::new(1), Operand::Left));
        m.push_target(Target::new(InstId::new(2), Operand::Left));
        let mut w1 = Instruction::new(Opcode::Write);
        w1.reg = Some(Reg::new(4));
        let mut w2 = Instruction::new(Opcode::Write);
        w2.reg = Some(Reg::new(4));
        let err = Block::from_instructions(0, vec![m, w1, w2, halt_branch()]).unwrap_err();
        assert_eq!(err, BlockError::DuplicateWrite(Reg::new(4)));
    }

    #[test]
    fn return_with_static_target_rejected() {
        let mut br = Instruction::new(Opcode::Bro);
        br.branch = Some(crate::BranchInfo {
            exit_id: 0,
            kind: BranchKind::Return,
            target: Some(0x40),
        });
        // Return takes its target as an operand; make arity happy.
        let err = Block::from_instructions(0, vec![br]).unwrap_err();
        assert_eq!(err, BlockError::BadBranchTarget(0));
    }

    #[test]
    fn branch_without_target_rejected() {
        let mut br = Instruction::new(Opcode::Bro);
        br.branch = Some(crate::BranchInfo {
            exit_id: 0,
            kind: BranchKind::Branch,
            target: None,
        });
        let err = Block::from_instructions(0, vec![br]).unwrap_err();
        assert_eq!(err, BlockError::BadBranchTarget(0));
    }

    #[test]
    fn inconsistent_exit_rejected() {
        let mut b1 = Instruction::new(Opcode::Bro);
        b1.pred = Some(PredSense::OnTrue);
        b1.branch = Some(crate::BranchInfo {
            exit_id: 0,
            kind: BranchKind::Branch,
            target: Some(0x200),
        });
        let mut b2 = Instruction::new(Opcode::Bro);
        b2.pred = Some(PredSense::OnFalse);
        b2.branch = Some(crate::BranchInfo {
            exit_id: 0,
            kind: BranchKind::Branch,
            target: Some(0x400),
        });
        let mut t = Instruction::new(Opcode::Movi);
        t.push_target(Target::new(InstId::new(0), Operand::Pred));
        t.push_target(Target::new(InstId::new(1), Operand::Pred));
        let err = Block::from_instructions(0, vec![b1, b2, t]).unwrap_err();
        assert_eq!(err, BlockError::InconsistentExit(0));
    }

    #[test]
    fn slice_for_core_stripes_by_low_bits() {
        let mut b = BlockBuilder::new(0);
        for _ in 0..7 {
            let v = b.movi(1);
            b.write(Reg::new(b.len() % 32), v);
        }
        b.branch(BranchKind::Halt, None, 0);
        let blk = b.finish().unwrap();
        let core1: Vec<usize> = blk.slice_for_core(1, 4).map(|(i, _)| i).collect();
        assert!(core1.iter().all(|i| i % 4 == 1));
        let all: usize = (0..4).map(|c| blk.slice_for_core(c, 4).count()).sum();
        assert_eq!(all, blk.len());
    }

    #[test]
    fn output_count_counts_stores_and_writes() {
        let mut b = BlockBuilder::new(0);
        let addr = b.movi(64);
        let val = b.movi(7);
        b.store(addr, val, 0);
        let v = b.movi(3);
        b.write(Reg::new(2), v);
        b.branch(BranchKind::Halt, None, 0);
        let blk = b.finish().unwrap();
        // one write + one store lsid + one branch
        assert_eq!(blk.output_count(), 3);
        assert_eq!(blk.store_lsids(), &[0]);
    }
}
