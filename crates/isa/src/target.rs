//! Dataflow targets, instruction identifiers, and small index newtypes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an instruction within its hyperblock (0..=127).
///
/// In an N-core composition the microarchitecture interprets the low
/// `log2(N)` bits as the core holding the instruction and the remaining
/// bits as the slot within that core's window partition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstId(u8);

impl InstId {
    /// Creates an instruction ID.
    ///
    /// IDs `128..256` are transient artifacts of block construction
    /// (e.g. a [`BlockBuilder`](crate::BlockBuilder) that has grown past
    /// the architectural limit); they are rejected when the block is
    /// validated and can never be encoded.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 256`.
    #[must_use]
    pub fn new(id: usize) -> Self {
        assert!(id < 256, "instruction id {id} out of range");
        InstId(id as u8)
    }

    /// The raw index value.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The core that holds this instruction in an `n_cores` composition
    /// (cf. Figure 4a of the paper): instructions stripe round-robin, so
    /// the mapping stays defined for the non-power-of-two survivor sets
    /// left by hard-fault recomposition. For power-of-two compositions
    /// this is the paper's low-order-bits selection, unchanged.
    #[must_use]
    pub fn core_of(self, n_cores: usize) -> usize {
        debug_assert!(n_cores > 0);
        self.index() % n_cores
    }

    /// The window slot within the owning core for an `n_cores` composition.
    #[must_use]
    pub fn slot_of(self, n_cores: usize) -> usize {
        debug_assert!(n_cores > 0);
        self.index() / n_cores
    }
}

impl fmt::Debug for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Operand slot of a consuming instruction targeted by a producer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// First (left) data operand.
    Left,
    /// Second (right) data operand.
    Right,
    /// Predicate operand; the consumer fires only if the predicate value
    /// matches its [`PredSense`](crate::PredSense).
    Pred,
}

impl Operand {
    /// Two-bit encoding used in the nine-bit target field.
    #[must_use]
    pub fn encode(self) -> u8 {
        match self {
            Operand::Left => 0,
            Operand::Right => 1,
            Operand::Pred => 2,
        }
    }

    /// Decodes the two-bit operand-slot field.
    #[must_use]
    pub fn decode(bits: u8) -> Option<Self> {
        match bits {
            0 => Some(Operand::Left),
            1 => Some(Operand::Right),
            2 => Some(Operand::Pred),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Operand::Left => "L",
            Operand::Right => "R",
            Operand::Pred => "P",
        };
        f.write_str(s)
    }
}

/// A nine-bit dataflow target: seven bits of instruction index plus two
/// bits of operand slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Target {
    /// Consumer instruction.
    pub inst: InstId,
    /// Operand slot at the consumer.
    pub operand: Operand,
}

impl Target {
    /// Creates a target addressing `inst`'s `operand` slot.
    #[must_use]
    pub fn new(inst: InstId, operand: Operand) -> Self {
        Target { inst, operand }
    }

    /// Packs the target into its nine-bit wire encoding.
    ///
    /// Only valid for architectural IDs (`< 128`); transient builder IDs
    /// cannot be encoded.
    #[must_use]
    pub fn encode(self) -> u16 {
        debug_assert!(self.inst.index() < crate::MAX_BLOCK_INSTRUCTIONS);
        (u16::from(self.operand.encode()) << 7) | self.inst.0 as u16
    }

    /// Unpacks a nine-bit wire encoding.
    #[must_use]
    pub fn decode(bits: u16) -> Option<Self> {
        let operand = Operand::decode(((bits >> 7) & 0x3) as u8)?;
        let inst = InstId((bits & 0x7f) as u8);
        Some(Target { inst, operand })
    }
}

impl fmt::Debug for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.inst, self.operand)
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.inst, self.operand)
    }
}

/// An architectural register number (0..=127).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// The link register used by the calling convention.
    pub const LINK: Reg = Reg(127);
    /// The stack-pointer register used by the calling convention.
    pub const SP: Reg = Reg(126);

    /// Creates a register number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 128`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n < crate::NUM_ARCH_REGS, "register r{n} out of range");
        Reg(n as u8)
    }

    /// The raw register number.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The register bank (core) holding this register in an `n_cores`
    /// composition (registers interleave round-robin — the low-order-bit
    /// selection of the paper for power-of-two compositions, and still a
    /// balanced interleaving over non-power-of-two survivor sets after
    /// hard-fault recomposition).
    #[must_use]
    pub fn bank_of(self, n_cores: usize) -> usize {
        debug_assert!(n_cores > 0);
        self.index() % n_cores
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A load/store identifier establishing intra-block memory program order.
///
/// LSIDs are assigned in program order by the compiler; the load/store
/// queues use them (concatenated with block age) for disambiguation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lsid(u8);

impl Lsid {
    /// Creates an LSID.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n < crate::MAX_BLOCK_LSIDS, "lsid {n} out of range");
        Lsid(n as u8)
    }

    /// The raw LSID value.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lsid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ls{}", self.0)
    }
}

impl fmt::Display for Lsid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ls{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_id_core_and_slot() {
        let id = InstId::new(13); // 0b0001101
        assert_eq!(id.core_of(1), 0);
        assert_eq!(id.slot_of(1), 13);
        assert_eq!(id.core_of(4), 1);
        assert_eq!(id.slot_of(4), 3);
        assert_eq!(id.core_of(32), 13);
        assert_eq!(id.slot_of(32), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inst_id_range_checked() {
        let _ = InstId::new(256);
    }

    #[test]
    fn target_roundtrip() {
        for idx in [0usize, 1, 63, 127] {
            for op in [Operand::Left, Operand::Right, Operand::Pred] {
                let t = Target::new(InstId::new(idx), op);
                assert_eq!(Target::decode(t.encode()), Some(t));
            }
        }
    }

    #[test]
    fn target_decode_rejects_bad_slot() {
        // Slot bits 0b11 are unused.
        assert_eq!(Target::decode(0b11_0000001), None);
    }

    #[test]
    fn reg_bank_interleaving() {
        assert_eq!(Reg::new(5).bank_of(4), 1);
        assert_eq!(Reg::new(5).bank_of(1), 0);
        assert_eq!(Reg::new(127).bank_of(32), 31);
    }

    #[test]
    fn display_forms() {
        assert_eq!(InstId::new(7).to_string(), "i7");
        assert_eq!(Reg::new(3).to_string(), "r3");
        assert_eq!(Lsid::new(2).to_string(), "ls2");
        assert_eq!(
            Target::new(InstId::new(9), Operand::Pred).to_string(),
            "i9.P"
        );
    }
}
