//! A small textual assembly format for hyperblocks.
//!
//! Useful for tests, debugging dumps, and golden files. The format is
//! line-oriented:
//!
//! ```text
//! block @0x1000 {
//!   i0: read r0 -> i2.L
//!   i1: read r1 -> i2.R
//!   i2: add -> i3.L
//!   i3: write r2
//!   i4: bro halt e0
//! }
//! ```
//!
//! Predicated instructions carry a `p_t`/`p_f` prefix; immediates are
//! `#n`, LSIDs `lsN`, registers `rN`, exits `eN`, static branch targets
//! `@0x...`, and dataflow targets `-> iN.L|R|P`.

use crate::{
    Block, BlockError, BranchInfo, BranchKind, EdgeProgram, InstId, Instruction, Lsid, Opcode,
    Operand, PredSense, Reg, Target,
};
use std::fmt;

/// Failure to parse assembly text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// Syntactic problem at the given 1-based line.
    Syntax {
        /// Line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The parsed instructions do not form a valid block.
    Invalid {
        /// The violated block invariant.
        error: BlockError,
        /// Source line of the offending instruction, when the error
        /// names one (see [`BlockError::primary_inst`]).
        line: Option<usize>,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            AsmError::Invalid {
                error,
                line: Some(line),
            } => write!(f, "line {line}: invalid block: {error}"),
            AsmError::Invalid { error, line: None } => write!(f, "invalid block: {error}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<BlockError> for AsmError {
    fn from(error: BlockError) -> Self {
        AsmError::Invalid { error, line: None }
    }
}

/// Renders a block in the textual assembly format.
#[must_use]
pub fn format_block(block: &Block) -> String {
    let mut out = format!("block @{:#x} {{\n", block.address());
    for (i, inst) in block.instructions().iter().enumerate() {
        out.push_str(&format!("  i{i}: "));
        match inst.pred {
            Some(PredSense::OnTrue) => out.push_str("p_t "),
            Some(PredSense::OnFalse) => out.push_str("p_f "),
            None => {}
        }
        out.push_str(inst.opcode.mnemonic());
        if let Some(b) = &inst.branch {
            out.push_str(&format!(" {} e{}", b.kind, b.exit_id));
            if let Some(t) = b.target {
                out.push_str(&format!(" @{t:#x}"));
            }
        }
        if let Some(r) = inst.reg {
            out.push_str(&format!(" {r}"));
        }
        if inst.opcode.has_immediate() {
            out.push_str(&format!(" #{}", inst.imm));
        }
        if let Some(l) = inst.lsid {
            out.push_str(&format!(" {l}"));
        }
        let targets: Vec<String> = inst.targets().map(|t| t.to_string()).collect();
        if !targets.is_empty() {
            out.push_str(" -> ");
            out.push_str(&targets.join(" "));
        }
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

fn syntax(line: usize, message: impl Into<String>) -> AsmError {
    AsmError::Syntax {
        line,
        message: message.into(),
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_target(tok: &str) -> Option<Target> {
    let (inst, slot) = tok.split_once('.')?;
    let idx: usize = inst.strip_prefix('i')?.parse().ok()?;
    if idx >= crate::MAX_BLOCK_INSTRUCTIONS {
        return None;
    }
    let operand = match slot {
        "L" => Operand::Left,
        "R" => Operand::Right,
        "P" => Operand::Pred,
        _ => return None,
    };
    Some(Target::new(InstId::new(idx), operand))
}

/// Parses a block from the textual assembly format.
///
/// # Errors
///
/// Returns [`AsmError::Syntax`] for malformed text and
/// [`AsmError::Invalid`] if the instructions violate block invariants.
pub fn parse_block(text: &str) -> Result<Block, AsmError> {
    parse_block_at(text, 0)
}

/// [`parse_block`] with a line offset, so blocks embedded in a larger
/// source (see [`parse_program`]) report absolute line numbers.
fn parse_block_at(text: &str, offset: usize) -> Result<Block, AsmError> {
    let mut address: Option<u64> = None;
    let mut insts: Vec<Instruction> = Vec::new();
    // Source line each parsed instruction came from, for error spans.
    let mut inst_lines: Vec<usize> = Vec::new();
    let mut saw_close = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = offset + lineno + 1;
        let code = raw.split(';').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        if let Some(rest) = code.strip_prefix("block") {
            let rest = rest.trim();
            let rest = rest
                .strip_suffix('{')
                .ok_or_else(|| syntax(line, "expected '{' after block header"))?
                .trim();
            let addr = rest
                .strip_prefix('@')
                .and_then(parse_u64)
                .ok_or_else(|| syntax(line, "expected '@<address>'"))?;
            address = Some(addr);
            continue;
        }
        if code == "}" {
            saw_close = true;
            continue;
        }

        let (label, body) = code
            .split_once(':')
            .ok_or_else(|| syntax(line, "expected 'iN:' label"))?;
        let expect_idx: usize = label
            .trim()
            .strip_prefix('i')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| syntax(line, "bad instruction label"))?;
        if expect_idx != insts.len() {
            return Err(syntax(
                line,
                format!(
                    "label i{expect_idx} out of order (expected i{})",
                    insts.len()
                ),
            ));
        }

        let mut toks = body.split_whitespace().peekable();
        let mut pred = None;
        match toks.peek() {
            Some(&"p_t") => {
                pred = Some(PredSense::OnTrue);
                toks.next();
            }
            Some(&"p_f") => {
                pred = Some(PredSense::OnFalse);
                toks.next();
            }
            _ => {}
        }
        let mnem = toks
            .next()
            .ok_or_else(|| syntax(line, "missing mnemonic"))?;
        let opcode = Opcode::from_mnemonic(mnem)
            .ok_or_else(|| syntax(line, format!("unknown mnemonic '{mnem}'")))?;
        let mut inst = Instruction::new(opcode);
        inst.pred = pred;

        let mut branch_kind: Option<BranchKind> = None;
        let mut exit_id: Option<u8> = None;
        let mut branch_target: Option<u64> = None;
        if opcode == Opcode::Bro {
            let kind_tok = toks
                .next()
                .ok_or_else(|| syntax(line, "bro needs a branch kind"))?;
            branch_kind = Some(match kind_tok {
                "br" => BranchKind::Branch,
                "call" => BranchKind::Call,
                "ret" => BranchKind::Return,
                "seq" => BranchKind::Seq,
                "halt" => BranchKind::Halt,
                other => return Err(syntax(line, format!("unknown branch kind '{other}'"))),
            });
        }

        let mut expecting_targets = false;
        for tok in toks {
            if tok == "->" {
                expecting_targets = true;
            } else if expecting_targets {
                let t =
                    parse_target(tok).ok_or_else(|| syntax(line, format!("bad target '{tok}'")))?;
                if !inst.push_target(t) {
                    return Err(syntax(line, "more than two targets"));
                }
            } else if let Some(imm) = tok.strip_prefix('#') {
                inst.imm = imm
                    .parse()
                    .map_err(|_| syntax(line, format!("bad immediate '{tok}'")))?;
            } else if let Some(ls) = tok.strip_prefix("ls") {
                let n: usize = ls
                    .parse()
                    .map_err(|_| syntax(line, format!("bad lsid '{tok}'")))?;
                if n >= crate::MAX_BLOCK_LSIDS {
                    return Err(syntax(line, format!("lsid {n} out of range")));
                }
                inst.lsid = Some(Lsid::new(n));
            } else if let Some(r) = tok.strip_prefix('r') {
                let n: usize = r
                    .parse()
                    .map_err(|_| syntax(line, format!("bad register '{tok}'")))?;
                if n >= crate::NUM_ARCH_REGS {
                    return Err(syntax(line, format!("register {n} out of range")));
                }
                inst.reg = Some(Reg::new(n));
            } else if let Some(e) = tok.strip_prefix('e') {
                exit_id = Some(
                    e.parse()
                        .map_err(|_| syntax(line, format!("bad exit '{tok}'")))?,
                );
            } else if let Some(t) = tok.strip_prefix('@') {
                branch_target =
                    Some(parse_u64(t).ok_or_else(|| syntax(line, format!("bad target '{tok}'")))?);
            } else {
                return Err(syntax(line, format!("unexpected token '{tok}'")));
            }
        }

        if let Some(kind) = branch_kind {
            inst.branch = Some(BranchInfo {
                exit_id: exit_id.ok_or_else(|| syntax(line, "bro needs an exit id"))?,
                kind,
                target: branch_target,
            });
        }
        insts.push(inst);
        inst_lines.push(line);
    }

    let address = address.ok_or_else(|| syntax(0, "missing 'block @<addr> {' header"))?;
    if !saw_close {
        return Err(syntax(0, "missing closing '}'"));
    }
    Block::from_instructions(address, insts).map_err(|error| {
        let line = error
            .primary_inst()
            .and_then(|i| inst_lines.get(i).copied());
        AsmError::Invalid { error, line }
    })
}

/// Renders a whole program: blocks in address order, preceded by an
/// `entry` directive.
#[must_use]
pub fn format_program(program: &EdgeProgram) -> String {
    let mut out = format!("entry @{:#x}\n\n", program.entry());
    for (_, block) in program.iter() {
        out.push_str(&format_block(block));
        out.push('\n');
    }
    out
}

/// Parses a whole program produced by [`format_program`].
///
/// # Errors
///
/// Returns [`AsmError`] for malformed text, invalid blocks, or program
/// validation failures (the latter wrapped as a syntax error at line 0).
pub fn parse_program(text: &str) -> Result<EdgeProgram, AsmError> {
    let mut entry: Option<u64> = None;
    let mut builder = crate::ProgramBuilder::new();
    let mut current = String::new();
    let mut depth = 0usize;
    let mut block_start = 0usize;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = raw.split(';').next().unwrap_or("").trim();
        if depth == 0 {
            if code.is_empty() {
                continue;
            }
            if let Some(rest) = code.strip_prefix("entry") {
                entry = Some(
                    rest.trim()
                        .strip_prefix('@')
                        .and_then(parse_u64)
                        .ok_or_else(|| syntax(line, "expected 'entry @<address>'"))?,
                );
                continue;
            }
            if code.starts_with("block") {
                depth = 1;
                block_start = lineno;
                current.clear();
                current.push_str(raw);
                current.push('\n');
                continue;
            }
            return Err(syntax(line, format!("unexpected '{code}'")));
        }
        current.push_str(raw);
        current.push('\n');
        if code == "}" {
            depth = 0;
            let block = parse_block_at(&current, block_start)?;
            builder
                .add_block(block)
                .map_err(|e| syntax(line, e.to_string()))?;
        }
    }
    let entry = entry.ok_or_else(|| syntax(0, "missing 'entry @<address>'"))?;
    builder.finish(entry).map_err(|e| syntax(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockBuilder;

    fn sample_block() -> Block {
        let mut b = BlockBuilder::new(0x1000);
        let x = b.read(Reg::new(0));
        let y = b.read(Reg::new(1));
        let cmp = b.op2(Opcode::Tlt, x, y);
        b.set_pred(Some((cmp, PredSense::OnTrue)));
        let big = b.movi(100);
        b.set_pred(Some((cmp, PredSense::OnFalse)));
        let small = b.movi(-5);
        b.set_pred(None);
        let w = b.write_id(Reg::new(2));
        b.connect(big, w, Operand::Left);
        b.connect(small, w, Operand::Left);
        let addr = b.movi(256);
        b.store(addr, x, 0);
        b.branch(BranchKind::Branch, Some(0x1000), 0);
        b.finish().unwrap()
    }

    #[test]
    fn roundtrip_through_text() {
        let blk = sample_block();
        let text = format_block(&blk);
        let parsed = parse_block(&text).unwrap();
        assert_eq!(parsed, blk);
    }

    #[test]
    fn parse_rejects_unknown_mnemonic() {
        let err = parse_block("block @0x0 {\n  i0: zorp\n}\n").unwrap_err();
        assert!(matches!(err, AsmError::Syntax { line: 2, .. }), "{err}");
    }

    #[test]
    fn parse_rejects_out_of_order_labels() {
        let err = parse_block("block @0x0 {\n  i1: bro halt e0\n}\n").unwrap_err();
        assert!(matches!(err, AsmError::Syntax { .. }));
    }

    #[test]
    fn parse_rejects_invalid_block() {
        // A lone write has no producer: structurally parses, fails validation.
        let err = parse_block("block @0x0 {\n  i0: write r0\n  i1: bro halt e0\n}\n").unwrap_err();
        // The validation error points back at the offending source line.
        assert!(
            matches!(
                err,
                AsmError::Invalid {
                    error: BlockError::UnfedOperand { inst: 0, .. },
                    line: Some(2),
                }
            ),
            "{err:?}"
        );
        assert!(
            err.to_string().starts_with("line 2: invalid block:"),
            "{err}"
        );
    }

    #[test]
    fn invalid_block_without_culprit_has_no_line() {
        // NoExit names no instruction, so there is no line to point at.
        let err = parse_block("block @0x0 {\n  i0: movi #1\n}\n").unwrap_err();
        assert!(
            matches!(
                err,
                AsmError::Invalid {
                    error: BlockError::NoExit,
                    line: None,
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn program_parse_reports_absolute_lines() {
        // The bad instruction is in the *second* block; the reported line
        // must be absolute in the program source, not block-relative.
        let text = "entry @0x1000\n\
                    block @0x1000 {\n\
                      i0: bro seq e0 @0x2000\n\
                    }\n\
                    block @0x2000 {\n\
                      i0: write r0\n\
                      i1: bro halt e0\n\
                    }\n";
        let err = parse_program(text).unwrap_err();
        assert!(
            matches!(err, AsmError::Invalid { line: Some(6), .. }),
            "{err:?}"
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n; a comment\nblock @0x40 {\n\n  i0: bro halt e0 ; inline\n}\n";
        let blk = parse_block(text).unwrap();
        assert_eq!(blk.address(), 0x40);
        assert_eq!(blk.len(), 1);
    }

    #[test]
    fn display_error_messages() {
        let e = syntax(3, "oops");
        assert_eq!(e.to_string(), "line 3: oops");
    }

    #[test]
    fn program_roundtrip_through_text() {
        let mut pb = crate::ProgramBuilder::new();
        let mut b0 = BlockBuilder::new(0x1000);
        let v = b0.movi(9);
        b0.write(Reg::new(1), v);
        b0.branch(BranchKind::Seq, Some(0x1200), 0);
        pb.add_block(b0.finish().unwrap()).unwrap();
        let mut b1 = BlockBuilder::new(0x1200);
        b1.branch(BranchKind::Halt, None, 0);
        pb.add_block(b1.finish().unwrap()).unwrap();
        let program = pb.finish(0x1000).unwrap();

        let text = format_program(&program);
        let parsed = parse_program(&text).expect("parses");
        assert_eq!(parsed, program);
    }

    #[test]
    fn program_parse_rejects_missing_entry() {
        let err = parse_program("block @0x0 {\n  i0: bro halt e0\n}\n").unwrap_err();
        assert!(err.to_string().contains("entry"));
    }

    #[test]
    fn program_parse_rejects_dangling_target() {
        let text = "entry @0x0\nblock @0x0 {\n  i0: bro br e0 @0x999\n}\n";
        assert!(parse_program(text).is_err());
    }
}
