//! Incremental construction of hyperblocks with automatic fan-out trees.

use crate::{
    Block, BlockAddr, BlockError, BranchInfo, BranchKind, InstId, Instruction, Lsid, Opcode,
    Operand, PredSense, Reg, Target,
};

/// Builds a [`Block`] one instruction at a time.
///
/// The builder handles the ISA's two-target fan-out limit transparently:
/// when a producer already feeds two consumers, [`BlockBuilder::connect`]
/// splices in a [`Opcode::Mov`] tree node. A *predicate context*
/// ([`BlockBuilder::set_pred`]) lets compilers emit runs of instructions
/// guarded by the same predicate without wiring each one manually.
///
/// Instruction IDs are assigned in append order; placement-aware ID
/// assignment is a separate concern (see the `clp-compiler` crate).
///
/// # Examples
///
/// ```
/// use clp_isa::{BlockBuilder, BranchKind, Opcode, Reg};
///
/// # fn main() -> Result<(), clp_isa::BlockError> {
/// let mut b = BlockBuilder::new(0x2000);
/// let x = b.read(Reg::new(1));
/// let doubled = b.op2(Opcode::Add, x, x);
/// b.write(Reg::new(1), doubled);
/// b.branch(BranchKind::Seq, Some(0x2200), 0);
/// let block = b.finish()?;
/// assert_eq!(block.exits()[0].kind, BranchKind::Seq);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BlockBuilder {
    address: BlockAddr,
    insts: Vec<Instruction>,
    pred: Option<(InstId, PredSense)>,
}

impl BlockBuilder {
    /// Starts building a block at `address`.
    #[must_use]
    pub fn new(address: BlockAddr) -> Self {
        BlockBuilder {
            address,
            insts: Vec::new(),
            pred: None,
        }
    }

    /// Number of instructions appended so far (including fan-out movs).
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if nothing has been appended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The block address this builder was created with.
    #[must_use]
    pub fn address(&self) -> BlockAddr {
        self.address
    }

    /// Sets the predicate context: subsequently appended instructions are
    /// predicated on `pred`'s value with the given sense. Pass `None` to
    /// return to unpredicated emission.
    ///
    /// `READ` and `WRITE` instructions ignore the context (the register
    /// interface is never predicated; conditional writes are expressed by
    /// feeding the write from predicated movs/nulls).
    pub fn set_pred(&mut self, pred: Option<(InstId, PredSense)>) {
        self.pred = pred;
    }

    /// The current predicate context.
    #[must_use]
    pub fn current_pred(&self) -> Option<(InstId, PredSense)> {
        self.pred
    }

    fn alloc(&mut self, inst: Instruction) -> InstId {
        let id = InstId::new(self.insts.len());
        self.insts.push(inst);
        id
    }

    fn append(&mut self, mut inst: Instruction) -> InstId {
        if let Some((pid, sense)) = self.pred {
            inst.pred = Some(sense);
            let id = self.alloc(inst);
            self.connect(pid, id, Operand::Pred);
            id
        } else {
            self.alloc(inst)
        }
    }

    /// Routes `from`'s result into `(to, slot)`, inserting a mov fan-out
    /// node if `from` already has two targets.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` (an instruction cannot feed itself).
    pub fn connect(&mut self, from: InstId, to: InstId, slot: Operand) {
        assert_ne!(from, to, "instruction cannot target itself");
        let t = Target::new(to, slot);
        if self.insts[from.index()].push_target(t) {
            return;
        }
        // Producer full: splice a mov that inherits one existing edge.
        // The mov fires whenever the producer fires (it is fed by it), so
        // no predicate is needed.
        let stolen = self.insts[from.index()].targets[1]
            .take()
            .expect("slot 1 full");
        let mut mov = Instruction::new(Opcode::Mov);
        mov.push_target(stolen);
        mov.push_target(t);
        let mov_id = self.alloc(mov);
        let ok = self.insts[from.index()].push_target(Target::new(mov_id, Operand::Left));
        debug_assert!(ok);
    }

    /// Appends a `READ` of architectural register `reg` (unpredicated).
    pub fn read(&mut self, reg: Reg) -> InstId {
        let mut i = Instruction::new(Opcode::Read);
        i.reg = Some(reg);
        self.alloc(i)
    }

    /// Appends a `WRITE` of `value` to architectural register `reg`
    /// (unpredicated; see [`BlockBuilder::write_id`] to wire producers
    /// manually).
    pub fn write(&mut self, reg: Reg, value: InstId) -> InstId {
        let id = self.write_id(reg);
        self.connect(value, id, Operand::Left);
        id
    }

    /// Appends a `WRITE` instruction without wiring its operand; the
    /// caller connects one or more (predicated) producers to it.
    pub fn write_id(&mut self, reg: Reg) -> InstId {
        let mut i = Instruction::new(Opcode::Write);
        i.reg = Some(reg);
        self.alloc(i)
    }

    /// Appends a `movi` of the immediate constant.
    pub fn movi(&mut self, imm: i64) -> InstId {
        let mut i = Instruction::new(Opcode::Movi);
        i.imm = imm;
        self.append(i)
    }

    /// Appends a unary operation consuming `a`.
    pub fn op1(&mut self, opcode: Opcode, a: InstId) -> InstId {
        debug_assert_eq!(opcode.arity(), 1, "{opcode} is not unary");
        let id = self.append(Instruction::new(opcode));
        self.connect(a, id, Operand::Left);
        id
    }

    /// Appends a unary operation with an immediate (`addi`, `shli`, ...).
    pub fn op1i(&mut self, opcode: Opcode, a: InstId, imm: i64) -> InstId {
        debug_assert_eq!(opcode.arity(), 1, "{opcode} is not unary");
        debug_assert!(opcode.has_immediate(), "{opcode} takes no immediate");
        let mut i = Instruction::new(opcode);
        i.imm = imm;
        let id = self.append(i);
        self.connect(a, id, Operand::Left);
        id
    }

    /// Appends a binary operation consuming `a` (left) and `b` (right).
    pub fn op2(&mut self, opcode: Opcode, a: InstId, b: InstId) -> InstId {
        debug_assert_eq!(opcode.arity(), 2, "{opcode} is not binary");
        let id = self.append(Instruction::new(opcode));
        self.connect(a, id, Operand::Left);
        self.connect(b, id, Operand::Right);
        id
    }

    /// Appends a 64-bit load of `addr + offset` with the given LSID.
    pub fn load(&mut self, addr: InstId, offset: i64, lsid: usize) -> InstId {
        self.load_op(Opcode::Ld, addr, offset, lsid)
    }

    /// Appends a load of the given width (`Ld` or `Ldb`).
    pub fn load_op(&mut self, opcode: Opcode, addr: InstId, offset: i64, lsid: usize) -> InstId {
        debug_assert!(opcode.is_load());
        let mut i = Instruction::new(opcode);
        i.imm = offset;
        i.lsid = Some(Lsid::new(lsid));
        let id = self.append(i);
        self.connect(addr, id, Operand::Left);
        id
    }

    /// Appends a 64-bit store of `value` at `addr` with the given LSID.
    pub fn store(&mut self, addr: InstId, value: InstId, lsid: usize) -> InstId {
        self.store_op(Opcode::St, addr, value, 0, lsid)
    }

    /// Appends a store of the given width with an address offset.
    pub fn store_op(
        &mut self,
        opcode: Opcode,
        addr: InstId,
        value: InstId,
        offset: i64,
        lsid: usize,
    ) -> InstId {
        debug_assert!(opcode.is_store());
        let mut i = Instruction::new(opcode);
        i.imm = offset;
        i.lsid = Some(Lsid::new(lsid));
        let id = self.append(i);
        self.connect(addr, id, Operand::Left);
        self.connect(value, id, Operand::Right);
        id
    }

    /// Appends a `NULL` that resolves the store slot `lsid` on the current
    /// predicate path without storing.
    pub fn null_store(&mut self, lsid: usize) -> InstId {
        let mut i = Instruction::new(Opcode::Null);
        i.lsid = Some(Lsid::new(lsid));
        self.append(i)
    }

    /// Appends a `NULL` producing a null token, typically routed to a
    /// `WRITE` to resolve it on a predicated-off path.
    pub fn null_value(&mut self) -> InstId {
        self.append(Instruction::new(Opcode::Null))
    }

    /// Appends an exit branch of the given kind under the current
    /// predicate context.
    pub fn branch(&mut self, kind: BranchKind, target: Option<BlockAddr>, exit_id: u8) -> InstId {
        debug_assert!((exit_id as usize) < crate::MAX_BLOCK_EXITS);
        let mut i = Instruction::new(Opcode::Bro);
        i.branch = Some(BranchInfo {
            exit_id,
            kind,
            target,
        });
        self.append(i)
    }

    /// Appends a return branch whose target address is `link`'s value.
    pub fn branch_return(&mut self, link: InstId, exit_id: u8) -> InstId {
        let id = self.branch(BranchKind::Return, None, exit_id);
        self.connect(link, id, Operand::Left);
        id
    }

    /// Direct access to an already-appended instruction (for passes that
    /// patch immediates or branch targets after layout).
    pub fn instruction_mut(&mut self, id: InstId) -> &mut Instruction {
        &mut self.insts[id.index()]
    }

    /// Appends a fully formed instruction verbatim, bypassing the
    /// predicate context and operand wiring (compilers wire operands
    /// themselves with [`BlockBuilder::connect`]).
    pub fn push_raw(&mut self, inst: Instruction) -> InstId {
        self.alloc(inst)
    }

    /// Validates and produces the block.
    ///
    /// # Errors
    ///
    /// Returns a [`BlockError`] if any ISA invariant is violated, e.g. the
    /// block (including fan-out movs) exceeds 128 instructions.
    pub fn finish(self) -> Result<Block, BlockError> {
        Block::from_instructions(self.address, self.insts)
    }

    /// Consumes the builder, returning the raw instructions without
    /// validation (used by scheduling passes that renumber IDs first).
    #[must_use]
    pub fn into_instructions(self) -> Vec<Instruction> {
        self.insts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_inserts_mov_tree() {
        let mut b = BlockBuilder::new(0);
        let src = b.movi(42);
        // Five consumers of one producer: needs mov nodes.
        let mut writes = Vec::new();
        for r in 0..5 {
            writes.push(b.write(Reg::new(r), src));
        }
        b.branch(BranchKind::Halt, None, 0);
        let blk = b.finish().unwrap();
        let movs = blk
            .instructions()
            .iter()
            .filter(|i| i.opcode == Opcode::Mov)
            .count();
        assert!(movs >= 2, "expected mov tree, got {movs} movs");
        // No instruction exceeds two targets.
        for i in blk.instructions() {
            assert!(i.target_count() <= 2);
        }
    }

    #[test]
    fn predicate_context_applies_to_appends() {
        let mut b = BlockBuilder::new(0);
        let c = b.movi(1);
        b.set_pred(Some((c, PredSense::OnTrue)));
        let v = b.movi(10);
        b.set_pred(None);
        let w = b.write_id(Reg::new(0));
        b.connect(v, w, Operand::Left);
        // Resolve the write on the false path too.
        b.set_pred(Some((c, PredSense::OnFalse)));
        let nv = b.null_value();
        b.connect(nv, w, Operand::Left);
        b.set_pred(None);
        b.branch(BranchKind::Halt, None, 0);
        let blk = b.finish().unwrap();
        let movi10 = blk
            .instructions()
            .iter()
            .find(|i| i.opcode == Opcode::Movi && i.imm == 10)
            .unwrap();
        assert_eq!(movi10.pred, Some(PredSense::OnTrue));
        let null = blk
            .instructions()
            .iter()
            .find(|i| i.opcode == Opcode::Null)
            .unwrap();
        assert_eq!(null.pred, Some(PredSense::OnFalse));
    }

    #[test]
    #[should_panic(expected = "cannot target itself")]
    fn self_connect_panics() {
        let mut b = BlockBuilder::new(0);
        let x = b.movi(1);
        b.connect(x, x, Operand::Left);
    }

    #[test]
    fn overflowing_block_is_rejected_at_finish() {
        let mut b = BlockBuilder::new(0);
        let x = b.movi(1);
        let mut acc = x;
        for _ in 0..140 {
            acc = b.op1i(Opcode::Addi, acc, 1);
        }
        b.write(Reg::new(0), acc);
        b.branch(BranchKind::Halt, None, 0);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, BlockError::TooManyInstructions(_)));
    }

    #[test]
    fn return_branch_takes_operand() {
        let mut b = BlockBuilder::new(0);
        let link = b.read(Reg::LINK);
        b.branch_return(link, 0);
        let blk = b.finish().unwrap();
        let bro = blk
            .instructions()
            .iter()
            .find(|i| i.opcode == Opcode::Bro)
            .unwrap();
        assert_eq!(bro.data_arity(), 1);
    }
}
