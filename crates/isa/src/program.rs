//! Whole-program container: a set of hyperblocks plus an entry point.

use crate::{Block, BlockAddr, BranchKind, BLOCK_FRAME_BYTES};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Validation failure for an [`EdgeProgram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// Two blocks share a starting address.
    DuplicateBlock(BlockAddr),
    /// The entry address names no block.
    MissingEntry(BlockAddr),
    /// A static branch target names no block.
    UnresolvedTarget {
        /// Block containing the branch.
        from: BlockAddr,
        /// The dangling target address.
        to: BlockAddr,
    },
    /// A `seq` exit does not target the next sequential block frame.
    BadSeqTarget {
        /// Block containing the branch.
        from: BlockAddr,
        /// The (non-sequential) target address.
        to: BlockAddr,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::DuplicateBlock(a) => write!(f, "duplicate block at {a:#x}"),
            ProgramError::MissingEntry(a) => write!(f, "entry block {a:#x} does not exist"),
            ProgramError::UnresolvedTarget { from, to } => {
                write!(f, "block {from:#x} branches to nonexistent {to:#x}")
            }
            ProgramError::BadSeqTarget { from, to } => {
                write!(f, "block {from:#x} seq-exit targets non-sequential {to:#x}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A validated EDGE program: hyperblocks indexed by starting address.
///
/// Static branch targets are guaranteed to resolve, and `seq` exits are
/// guaranteed to target `address + BLOCK_FRAME_BYTES`, which is what the
/// next-block predictor's sequential-address adder assumes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EdgeProgram {
    blocks: BTreeMap<BlockAddr, Block>,
    entry: BlockAddr,
}

impl EdgeProgram {
    /// The entry block's address.
    #[must_use]
    pub fn entry(&self) -> BlockAddr {
        self.entry
    }

    /// Looks up the block starting at `addr`.
    #[must_use]
    pub fn block(&self, addr: BlockAddr) -> Option<&Block> {
        self.blocks.get(&addr)
    }

    /// Number of blocks in the program.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the program contains no blocks (never true once built).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterates over blocks in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&BlockAddr, &Block)> {
        self.blocks.iter()
    }

    /// Total static instruction count across all blocks.
    #[must_use]
    pub fn instruction_count(&self) -> usize {
        self.blocks.values().map(Block::len).sum()
    }
}

/// Accumulates blocks and validates cross-block references.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    blocks: BTreeMap<BlockAddr, Block>,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a block.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::DuplicateBlock`] if a block already exists
    /// at the same address.
    pub fn add_block(&mut self, block: Block) -> Result<(), ProgramError> {
        let addr = block.address();
        if self.blocks.insert(addr, block).is_some() {
            return Err(ProgramError::DuplicateBlock(addr));
        }
        Ok(())
    }

    /// Validates cross-block references and produces the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] for a missing entry block, a dangling
    /// static branch target, or a `seq` exit that is not sequential.
    pub fn finish(self, entry: BlockAddr) -> Result<EdgeProgram, ProgramError> {
        if !self.blocks.contains_key(&entry) {
            return Err(ProgramError::MissingEntry(entry));
        }
        for (&from, block) in &self.blocks {
            for exit in block.exits() {
                if let Some(to) = exit.target {
                    if !self.blocks.contains_key(&to) {
                        return Err(ProgramError::UnresolvedTarget { from, to });
                    }
                    if exit.kind == BranchKind::Seq && to != from + BLOCK_FRAME_BYTES {
                        return Err(ProgramError::BadSeqTarget { from, to });
                    }
                }
            }
        }
        Ok(EdgeProgram {
            blocks: self.blocks,
            entry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockBuilder, BranchKind};

    fn block_branching_to(addr: BlockAddr, kind: BranchKind, target: Option<BlockAddr>) -> Block {
        let mut b = BlockBuilder::new(addr);
        b.branch(kind, target, 0);
        b.finish().unwrap()
    }

    #[test]
    fn simple_program_builds() {
        let mut pb = ProgramBuilder::new();
        pb.add_block(block_branching_to(0x0, BranchKind::Seq, Some(0x200)))
            .unwrap();
        pb.add_block(block_branching_to(0x200, BranchKind::Halt, None))
            .unwrap();
        let p = pb.finish(0x0).unwrap();
        assert_eq!(p.entry(), 0x0);
        assert_eq!(p.len(), 2);
        assert!(p.block(0x200).is_some());
        assert_eq!(p.instruction_count(), 2);
    }

    #[test]
    fn duplicate_block_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.add_block(block_branching_to(0x0, BranchKind::Halt, None))
            .unwrap();
        let err = pb
            .add_block(block_branching_to(0x0, BranchKind::Halt, None))
            .unwrap_err();
        assert_eq!(err, ProgramError::DuplicateBlock(0x0));
    }

    #[test]
    fn missing_entry_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.add_block(block_branching_to(0x0, BranchKind::Halt, None))
            .unwrap();
        assert_eq!(pb.finish(0x400), Err(ProgramError::MissingEntry(0x400)));
    }

    #[test]
    fn dangling_target_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.add_block(block_branching_to(0x0, BranchKind::Branch, Some(0x999)))
            .unwrap();
        assert_eq!(
            pb.finish(0x0),
            Err(ProgramError::UnresolvedTarget { from: 0, to: 0x999 })
        );
    }

    #[test]
    fn non_sequential_seq_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.add_block(block_branching_to(0x0, BranchKind::Seq, Some(0x400)))
            .unwrap();
        pb.add_block(block_branching_to(0x400, BranchKind::Halt, None))
            .unwrap();
        assert_eq!(
            pb.finish(0x0),
            Err(ProgramError::BadSeqTarget { from: 0, to: 0x400 })
        );
    }
}
