//! # clp-isa — an Explicit Data Graph Execution (EDGE) instruction set
//!
//! This crate defines the block-atomic EDGE ISA used by the TFlex
//! Composable Lightweight Processor reproduction (Kim et al., MICRO 2007).
//!
//! Programs are sequences of *hyperblocks*: predicated, single-entry,
//! multiple-exit regions of up to [`MAX_BLOCK_INSTRUCTIONS`] instructions
//! with atomic execution semantics. Instructions do not name source
//! registers; instead each instruction statically encodes up to two
//! nine-bit [`Target`]s that say *which other instruction in the block*
//! consumes its result and into which operand slot. The microarchitecture
//! interprets those targets as placement coordinates, which is exactly what
//! makes processors composable: an N-core processor uses the low bits of
//! the target index to pick the core and the high bits to pick the slot.
//!
//! Architectural state crossing block boundaries is explicit:
//! [`Opcode::Read`] instructions inject register values into the dataflow
//! graph and [`Opcode::Write`] instructions collect block outputs that are
//! committed en masse. Memory ordering within a block is expressed by
//! load/store identifiers ([`Lsid`]).
//!
//! ```
//! use clp_isa::{BlockBuilder, Operand, Opcode, BranchKind, Reg};
//!
//! # fn main() -> Result<(), clp_isa::BlockError> {
//! // r2 = r0 + r1, then halt.
//! let mut b = BlockBuilder::new(0x1000);
//! let a = b.read(Reg::new(0));
//! let c = b.read(Reg::new(1));
//! let add = b.op2(Opcode::Add, a, c);
//! b.write(Reg::new(2), add);
//! b.branch(BranchKind::Halt, None, 0);
//! let block = b.finish()?;
//! assert_eq!(block.len(), 5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod asm;
mod block;
mod builder;
mod encode;
mod inst;
mod opcode;
mod program;
mod target;
pub mod value;

pub use block::{Block, BlockError, ExitSummary};
pub use builder::BlockBuilder;
pub use encode::{decode_instruction, encode_instruction, DecodeError, EncodedInstruction};
pub use inst::{BranchInfo, Instruction, PredSense};
pub use opcode::{BranchKind, Opcode, OpcodeClass};
pub use program::{EdgeProgram, ProgramBuilder, ProgramError};
pub use target::{InstId, Lsid, Operand, Reg, Target};

/// Maximum number of instructions in a hyperblock (TRIPS ISA limit).
pub const MAX_BLOCK_INSTRUCTIONS: usize = 128;
/// Maximum number of architectural register reads per block.
pub const MAX_BLOCK_READS: usize = 32;
/// Maximum number of architectural register writes per block.
pub const MAX_BLOCK_WRITES: usize = 32;
/// Maximum number of load/store IDs per block.
pub const MAX_BLOCK_LSIDS: usize = 32;
/// Maximum number of distinct exits (3 exit bits) per block.
pub const MAX_BLOCK_EXITS: usize = 8;
/// Number of architectural registers.
pub const NUM_ARCH_REGS: usize = 128;
/// Size of one block in the instruction address space, in bytes.
///
/// Blocks occupy fixed 512-byte frames (128 x 32-bit instruction slots),
/// so successive block addresses differ by this amount.
pub const BLOCK_FRAME_BYTES: u64 = 512;

/// A virtual address identifying the start of a hyperblock.
///
/// Block addresses play the role of the program counter: the next-block
/// predictor predicts them and the block-owner hash consumes them.
pub type BlockAddr = u64;
