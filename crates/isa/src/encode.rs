//! Binary instruction encoding.
//!
//! Instructions encode into a 64-bit primary word plus an optional 64-bit
//! extension word carrying a wide immediate or a static branch target.
//! The layout keeps the paper's nine-bit target fields explicit:
//!
//! ```text
//! bits  0..8   opcode
//! bits  8..10  predication (0 none, 1 on-true, 2 on-false)
//! bits 10..19  target 0 (9-bit: 2-bit operand slot | 7-bit instruction)
//! bit  19      target 0 present
//! bits 20..29  target 1
//! bit  29      target 1 present
//! bits 30..35  LSID (5-bit)
//! bit  35      LSID present
//! bits 36..39  exit ID (3-bit)
//! bits 39..42  branch kind (3-bit)
//! bit  42      branch info present
//! bits 43..50  register number (7-bit)
//! bit  50      register present
//! bit  51      extension word follows
//! bits 52..64  12-bit signed small immediate
//! ```

use crate::{BranchInfo, BranchKind, Instruction, Lsid, Opcode, PredSense, Reg, Target};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A binary-encoded instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EncodedInstruction {
    /// The primary 64-bit word.
    pub primary: u64,
    /// Extension word for wide immediates or static branch targets.
    pub ext: Option<u64>,
}

/// Failure to decode an [`EncodedInstruction`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Invalid predication field.
    BadPred(u8),
    /// Invalid target field (reserved operand-slot bits).
    BadTarget(u16),
    /// Invalid branch-kind field.
    BadBranchKind(u8),
    /// The extension bit is set but no extension word was provided.
    MissingExtension,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "unknown opcode byte {b:#04x}"),
            DecodeError::BadPred(b) => write!(f, "invalid predication field {b}"),
            DecodeError::BadTarget(t) => write!(f, "invalid target field {t:#05x}"),
            DecodeError::BadBranchKind(b) => write!(f, "invalid branch kind {b}"),
            DecodeError::MissingExtension => write!(f, "extension word missing"),
        }
    }
}

impl std::error::Error for DecodeError {}

const IMM12_MIN: i64 = -(1 << 11);
const IMM12_MAX: i64 = (1 << 11) - 1;

/// Encodes a decoded instruction into its binary form.
///
/// # Panics
///
/// Panics if the instruction carries a transient builder ID (`>= 128`) in
/// one of its targets; validated blocks never do.
#[must_use]
pub fn encode_instruction(inst: &Instruction) -> EncodedInstruction {
    let mut w: u64 = u64::from(inst.opcode as u8);
    w |= match inst.pred {
        None => 0,
        Some(PredSense::OnTrue) => 1,
        Some(PredSense::OnFalse) => 2,
    } << 8;
    if let Some(t) = inst.targets[0] {
        w |= u64::from(t.encode()) << 10;
        w |= 1 << 19;
    }
    if let Some(t) = inst.targets[1] {
        w |= u64::from(t.encode()) << 20;
        w |= 1 << 29;
    }
    if let Some(l) = inst.lsid {
        w |= (l.index() as u64) << 30;
        w |= 1 << 35;
    }
    let mut ext: Option<u64> = None;
    if let Some(b) = &inst.branch {
        w |= u64::from(b.exit_id & 0x7) << 36;
        w |= u64::from(b.kind.encode()) << 39;
        w |= 1 << 42;
        if let Some(target) = b.target {
            ext = Some(target);
        }
    }
    if let Some(r) = inst.reg {
        w |= (r.index() as u64) << 43;
        w |= 1 << 50;
    }
    if inst.opcode.has_immediate() {
        if (IMM12_MIN..=IMM12_MAX).contains(&inst.imm) && ext.is_none() {
            w |= ((inst.imm as u64) & 0xfff) << 52;
        } else {
            debug_assert!(ext.is_none(), "imm and branch target cannot both extend");
            ext = Some(inst.imm as u64);
        }
    }
    if ext.is_some() {
        w |= 1 << 51;
    }
    EncodedInstruction { primary: w, ext }
}

/// Decodes a binary instruction.
///
/// # Errors
///
/// Returns a [`DecodeError`] for malformed fields or a missing extension
/// word.
pub fn decode_instruction(enc: EncodedInstruction) -> Result<Instruction, DecodeError> {
    let w = enc.primary;
    let op_byte = (w & 0xff) as u8;
    let opcode = Opcode::decode(op_byte).ok_or(DecodeError::BadOpcode(op_byte))?;
    let mut inst = Instruction::new(opcode);

    inst.pred = match (w >> 8) & 0x3 {
        0 => None,
        1 => Some(PredSense::OnTrue),
        2 => Some(PredSense::OnFalse),
        other => return Err(DecodeError::BadPred(other as u8)),
    };

    if (w >> 19) & 1 == 1 {
        let bits = ((w >> 10) & 0x1ff) as u16;
        inst.targets[0] = Some(Target::decode(bits).ok_or(DecodeError::BadTarget(bits))?);
    }
    if (w >> 29) & 1 == 1 {
        let bits = ((w >> 20) & 0x1ff) as u16;
        inst.targets[1] = Some(Target::decode(bits).ok_or(DecodeError::BadTarget(bits))?);
    }
    if (w >> 35) & 1 == 1 {
        inst.lsid = Some(Lsid::new(((w >> 30) & 0x1f) as usize));
    }

    let has_ext = (w >> 51) & 1 == 1;
    if has_ext && enc.ext.is_none() {
        return Err(DecodeError::MissingExtension);
    }

    if (w >> 42) & 1 == 1 {
        let kind_bits = ((w >> 39) & 0x7) as u8;
        let kind = BranchKind::decode(kind_bits).ok_or(DecodeError::BadBranchKind(kind_bits))?;
        let target = if matches!(kind, BranchKind::Return | BranchKind::Halt) {
            None
        } else {
            Some(enc.ext.ok_or(DecodeError::MissingExtension)?)
        };
        inst.branch = Some(BranchInfo {
            exit_id: ((w >> 36) & 0x7) as u8,
            kind,
            target,
        });
    } else if opcode.has_immediate() {
        if has_ext {
            inst.imm = enc.ext.ok_or(DecodeError::MissingExtension)? as i64;
        } else {
            // Sign-extend the 12-bit field.
            inst.imm = ((((w >> 52) & 0xfff) as i64) << 52) >> 52;
        }
    }

    if (w >> 50) & 1 == 1 {
        inst.reg = Some(Reg::new(((w >> 43) & 0x7f) as usize));
    }

    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstId, Operand};

    fn roundtrip(inst: &Instruction) {
        let enc = encode_instruction(inst);
        let dec = decode_instruction(enc).expect("decodes");
        assert_eq!(&dec, inst);
    }

    #[test]
    fn plain_alu_roundtrip() {
        let mut i = Instruction::new(Opcode::Add);
        i.push_target(Target::new(InstId::new(5), Operand::Left));
        i.push_target(Target::new(InstId::new(127), Operand::Pred));
        roundtrip(&i);
    }

    #[test]
    fn small_and_wide_immediates() {
        for imm in [0i64, 1, -1, 2047, -2048, 2048, -2049, i64::MAX, i64::MIN] {
            let mut i = Instruction::new(Opcode::Movi);
            i.imm = imm;
            i.push_target(Target::new(InstId::new(0), Operand::Left));
            let enc = encode_instruction(&i);
            if (-2048..=2047).contains(&imm) {
                assert!(enc.ext.is_none(), "imm {imm} should be inline");
            } else {
                assert!(enc.ext.is_some(), "imm {imm} needs extension");
            }
            roundtrip(&i);
        }
    }

    #[test]
    fn branch_with_target_uses_extension() {
        let mut i = Instruction::new(Opcode::Bro);
        i.pred = Some(PredSense::OnFalse);
        i.branch = Some(BranchInfo {
            exit_id: 3,
            kind: BranchKind::Call,
            target: Some(0xdead_beef_0000),
        });
        let enc = encode_instruction(&i);
        assert_eq!(enc.ext, Some(0xdead_beef_0000));
        roundtrip(&i);
    }

    #[test]
    fn return_branch_roundtrip() {
        let mut i = Instruction::new(Opcode::Bro);
        i.branch = Some(BranchInfo {
            exit_id: 1,
            kind: BranchKind::Return,
            target: None,
        });
        roundtrip(&i);
    }

    #[test]
    fn memory_with_lsid_roundtrip() {
        let mut i = Instruction::new(Opcode::St);
        i.imm = -16;
        i.lsid = Some(Lsid::new(31));
        i.pred = Some(PredSense::OnTrue);
        roundtrip(&i);
    }

    #[test]
    fn reg_interface_roundtrip() {
        let mut r = Instruction::new(Opcode::Read);
        r.reg = Some(Reg::new(127));
        r.push_target(Target::new(InstId::new(3), Operand::Right));
        roundtrip(&r);
        let mut w = Instruction::new(Opcode::Write);
        w.reg = Some(Reg::new(0));
        roundtrip(&w);
    }

    #[test]
    fn bad_opcode_rejected() {
        let e = EncodedInstruction {
            primary: 0xff,
            ext: None,
        };
        assert_eq!(decode_instruction(e), Err(DecodeError::BadOpcode(0xff)));
    }

    #[test]
    fn missing_extension_rejected() {
        let mut i = Instruction::new(Opcode::Movi);
        i.imm = 1 << 40;
        let mut enc = encode_instruction(&i);
        enc.ext = None;
        assert_eq!(decode_instruction(enc), Err(DecodeError::MissingExtension));
    }
}
