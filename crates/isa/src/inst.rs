//! The decoded instruction representation.

use crate::{BlockAddr, BranchKind, Lsid, Opcode, Reg, Target};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The sense in which a predicated instruction consumes its predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredSense {
    /// Fire when the predicate value is non-zero.
    OnTrue,
    /// Fire when the predicate value is zero.
    OnFalse,
}

impl PredSense {
    /// The complementary sense.
    #[must_use]
    pub fn invert(self) -> Self {
        match self {
            PredSense::OnTrue => PredSense::OnFalse,
            PredSense::OnFalse => PredSense::OnTrue,
        }
    }

    /// Whether a predicate `value` satisfies this sense.
    #[must_use]
    pub fn matches(self, value: u64) -> bool {
        match self {
            PredSense::OnTrue => value != 0,
            PredSense::OnFalse => value == 0,
        }
    }
}

/// Static branch information carried by a [`Opcode::Bro`] instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Which of the block's (up to eight) exits this branch is. The exit
    /// predictor forms its histories from these three-bit IDs rather than
    /// taken/not-taken bits.
    pub exit_id: u8,
    /// The kind of control transfer.
    pub kind: BranchKind,
    /// Statically known target block address. `None` for
    /// [`BranchKind::Return`] (target arrives as the branch operand) and
    /// for [`BranchKind::Halt`].
    pub target: Option<BlockAddr>,
}

/// A decoded EDGE instruction.
///
/// Instructions name *consumers*, not sources: `targets` lists up to two
/// operand slots of other instructions in the same block that receive this
/// instruction's result. Wider fan-out uses [`Opcode::Mov`] trees.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instruction {
    /// The operation.
    pub opcode: Opcode,
    /// Predication: `None` executes unconditionally; `Some(sense)` waits
    /// for a predicate operand and fires only if it matches.
    pub pred: Option<PredSense>,
    /// Immediate constant for opcodes with [`Opcode::has_immediate`].
    pub imm: i64,
    /// Dataflow targets receiving this instruction's result (or null token).
    pub targets: [Option<Target>; 2],
    /// Load/store ID for memory operations and for [`Opcode::Null`]
    /// instructions that nullify a store slot.
    pub lsid: Option<Lsid>,
    /// Branch metadata for [`Opcode::Bro`].
    pub branch: Option<BranchInfo>,
    /// Architectural register for [`Opcode::Read`]/[`Opcode::Write`].
    pub reg: Option<Reg>,
}

impl Instruction {
    /// Creates a bare instruction of the given opcode with no targets,
    /// no predicate, and zero immediate.
    #[must_use]
    pub fn new(opcode: Opcode) -> Self {
        Instruction {
            opcode,
            pred: None,
            imm: 0,
            targets: [None, None],
            lsid: None,
            branch: None,
            reg: None,
        }
    }

    /// Iterates over the present targets.
    pub fn targets(&self) -> impl Iterator<Item = Target> + '_ {
        self.targets.iter().flatten().copied()
    }

    /// Number of present targets.
    #[must_use]
    pub fn target_count(&self) -> usize {
        self.targets.iter().flatten().count()
    }

    /// Adds a target, returning `false` if both slots are already full.
    pub fn push_target(&mut self, t: Target) -> bool {
        for slot in &mut self.targets {
            if slot.is_none() {
                *slot = Some(t);
                return true;
            }
        }
        false
    }

    /// Total number of *data* operands this instruction must receive
    /// before firing (not counting the predicate).
    ///
    /// Unlike [`Opcode::arity`], this accounts for return branches, whose
    /// target address arrives as a data operand.
    #[must_use]
    pub fn data_arity(&self) -> usize {
        if self.opcode == Opcode::Bro {
            usize::from(matches!(
                self.branch.map(|b| b.kind),
                Some(BranchKind::Return)
            ))
        } else {
            self.opcode.arity()
        }
    }

    /// Whether the instruction waits for a predicate operand.
    #[must_use]
    pub fn is_predicated(&self) -> bool {
        self.pred.is_some()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pred {
            Some(PredSense::OnTrue) => write!(f, "p_t ")?,
            Some(PredSense::OnFalse) => write!(f, "p_f ")?,
            None => {}
        }
        write!(f, "{}", self.opcode)?;
        if let Some(b) = &self.branch {
            write!(f, " {} e{}", b.kind, b.exit_id)?;
            if let Some(t) = b.target {
                write!(f, " @{t:#x}")?;
            }
        }
        if let Some(r) = self.reg {
            write!(f, " {r}")?;
        }
        if self.opcode.has_immediate() {
            write!(f, " #{}", self.imm)?;
        }
        if let Some(l) = self.lsid {
            write!(f, " {l}")?;
        }
        for t in self.targets() {
            write!(f, " ->{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstId, Operand};

    #[test]
    fn pred_sense_matching() {
        assert!(PredSense::OnTrue.matches(1));
        assert!(PredSense::OnTrue.matches(u64::MAX));
        assert!(!PredSense::OnTrue.matches(0));
        assert!(PredSense::OnFalse.matches(0));
        assert!(!PredSense::OnFalse.matches(2));
        assert_eq!(PredSense::OnTrue.invert(), PredSense::OnFalse);
    }

    #[test]
    fn push_target_fills_slots() {
        let mut i = Instruction::new(Opcode::Add);
        let t0 = Target::new(InstId::new(1), Operand::Left);
        let t1 = Target::new(InstId::new(2), Operand::Right);
        let t2 = Target::new(InstId::new(3), Operand::Pred);
        assert!(i.push_target(t0));
        assert!(i.push_target(t1));
        assert!(!i.push_target(t2));
        assert_eq!(i.target_count(), 2);
        assert_eq!(i.targets().collect::<Vec<_>>(), vec![t0, t1]);
    }

    #[test]
    fn display_is_nonempty_and_informative() {
        let mut i = Instruction::new(Opcode::Ld);
        i.imm = 8;
        i.lsid = Some(Lsid::new(3));
        i.pred = Some(PredSense::OnFalse);
        i.push_target(Target::new(InstId::new(5), Operand::Right));
        let s = i.to_string();
        assert!(s.contains("ld"), "{s}");
        assert!(s.contains("#8"), "{s}");
        assert!(s.contains("ls3"), "{s}");
        assert!(s.contains("p_f"), "{s}");
        assert!(s.contains("->i5.R"), "{s}");
    }
}
