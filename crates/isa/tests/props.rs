//! Property-based tests for the EDGE ISA: encoding round-trips, assembler
//! round-trips, and builder-produced block validity.

use clp_isa::{
    asm, decode_instruction, encode_instruction, BlockBuilder, BranchInfo, BranchKind, InstId,
    Instruction, Lsid, Opcode, Operand, PredSense, Reg, Target,
};
use proptest::prelude::*;

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        Just(Operand::Left),
        Just(Operand::Right),
        Just(Operand::Pred)
    ]
}

fn arb_target() -> impl Strategy<Value = Target> {
    (0usize..128, arb_operand()).prop_map(|(i, op)| Target::new(InstId::new(i), op))
}

fn arb_pred() -> impl Strategy<Value = Option<PredSense>> {
    prop_oneof![
        Just(None),
        Just(Some(PredSense::OnTrue)),
        Just(Some(PredSense::OnFalse))
    ]
}

/// A canonical random instruction: every field combination that the
/// builder/compiler could legitimately produce.
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let opcode = proptest::sample::select(Opcode::ALL.to_vec());
    (
        opcode,
        arb_pred(),
        any::<i64>(),
        proptest::option::of(arb_target()),
        proptest::option::of(arb_target()),
        0usize..32,
        0u8..8,
        0usize..128,
        any::<u64>(),
    )
        .prop_map(|(opcode, pred, imm, t0, t1, lsid, exit, regno, braddr)| {
            let mut inst = Instruction::new(opcode);
            inst.pred = pred;
            inst.targets = [t0, t1];
            if opcode.has_immediate() {
                inst.imm = imm;
            }
            if opcode.is_load() || opcode.is_store() {
                inst.lsid = Some(Lsid::new(lsid));
            }
            if opcode == Opcode::Bro {
                let kind = BranchKind::ALL[(exit as usize) % BranchKind::ALL.len()];
                let target = if matches!(kind, BranchKind::Return | BranchKind::Halt) {
                    None
                } else {
                    Some(braddr)
                };
                inst.branch = Some(BranchInfo {
                    exit_id: exit,
                    kind,
                    target,
                });
            }
            if matches!(opcode, Opcode::Read | Opcode::Write) {
                inst.reg = Some(Reg::new(regno));
            }
            inst
        })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in arb_instruction()) {
        let enc = encode_instruction(&inst);
        let dec = decode_instruction(enc).expect("canonical instructions decode");
        prop_assert_eq!(dec, inst);
    }

    #[test]
    fn target_encoding_is_injective(a in arb_target(), b in arb_target()) {
        prop_assert_eq!(a.encode() == b.encode(), a == b);
    }

    /// Random straight-line dataflow programs built through the builder
    /// always validate and survive an assembler round-trip.
    #[test]
    fn builder_blocks_roundtrip_through_asm(
        seed_consts in proptest::collection::vec(-100i64..100, 1..4),
        ops in proptest::collection::vec((0usize..6, any::<u16>(), any::<u16>()), 0..40),
        nwrites in 1usize..8,
    ) {
        let mut b = BlockBuilder::new(0x4000);
        let mut vals: Vec<_> = seed_consts.iter().map(|&c| b.movi(c)).collect();
        for (kind, xa, xb) in ops {
            let a = vals[(xa as usize) % vals.len()];
            let c = vals[(xb as usize) % vals.len()];
            let opcode = [Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::And,
                          Opcode::Or, Opcode::Xor][kind];
            if a == c {
                // binary ops allow both operands from one producer
                vals.push(b.op2(opcode, a, c));
            } else {
                vals.push(b.op2(opcode, a, c));
            }
        }
        for w in 0..nwrites {
            let v = vals[w % vals.len()];
            b.write(Reg::new(w), v);
        }
        b.branch(BranchKind::Halt, None, 0);
        if let Ok(block) = b.finish() {
            let text = asm::format_block(&block);
            let parsed = asm::parse_block(&text).expect("formatted block parses");
            prop_assert_eq!(parsed, block);
        }
        // Overflow (>128 instructions) is an acceptable outcome for the
        // largest generated programs; finish() reporting it is correct.
    }

    /// `slice_for_core` partitions a block exactly, for every legal
    /// composition size.
    #[test]
    fn slices_partition_block(n in 0usize..20, log_cores in 0u32..6) {
        let n_cores = 1usize << log_cores;
        let mut b = BlockBuilder::new(0);
        for i in 0..n {
            let v = b.movi(i as i64);
            b.write(Reg::new(i % 32), v);
        }
        b.branch(BranchKind::Halt, None, 0);
        let blk = b.finish().unwrap();
        let mut seen = vec![false; blk.len()];
        for core in 0..n_cores {
            for (i, _) in blk.slice_for_core(core, n_cores) {
                prop_assert!(!seen[i], "instruction {} in two slices", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
