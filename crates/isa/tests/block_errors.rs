//! Exhaustive coverage of [`BlockError`]: one test per variant, each
//! built from raw instructions so the exact invariant is the only thing
//! that fails. Boundary cases (exactly at the limit) must be accepted.

use clp_isa::{
    Block, BlockError, BranchInfo, BranchKind, InstId, Instruction, Lsid, Opcode, Operand,
    PredSense, Reg, Target, MAX_BLOCK_EXITS, MAX_BLOCK_INSTRUCTIONS, MAX_BLOCK_LSIDS,
    MAX_BLOCK_READS, MAX_BLOCK_WRITES,
};

fn movi(imm: i64) -> Instruction {
    let mut i = Instruction::new(Opcode::Movi);
    i.imm = imm;
    i
}

fn read(r: usize) -> Instruction {
    let mut i = Instruction::new(Opcode::Read);
    i.reg = Some(Reg::new(r));
    i
}

fn write(r: usize) -> Instruction {
    let mut i = Instruction::new(Opcode::Write);
    i.reg = Some(Reg::new(r));
    i
}

fn bro(kind: BranchKind, exit_id: u8, target: Option<u64>) -> Instruction {
    let mut i = Instruction::new(Opcode::Bro);
    i.branch = Some(BranchInfo {
        exit_id,
        kind,
        target,
    });
    i
}

fn halt() -> Instruction {
    bro(BranchKind::Halt, 0, None)
}

fn targeted(mut inst: Instruction, to: usize, slot: Operand) -> Instruction {
    inst.targets[0] = Some(Target::new(InstId::new(to), slot));
    inst
}

fn build(insts: Vec<Instruction>) -> Result<Block, BlockError> {
    Block::from_instructions(0x1000, insts)
}

#[test]
fn too_many_instructions() {
    let insts = vec![movi(1); MAX_BLOCK_INSTRUCTIONS + 1];
    assert_eq!(
        build(insts).unwrap_err(),
        BlockError::TooManyInstructions(MAX_BLOCK_INSTRUCTIONS + 1)
    );
    // Exactly 128 is fine.
    let mut insts = vec![movi(1); MAX_BLOCK_INSTRUCTIONS - 1];
    insts.push(halt());
    assert!(build(insts).is_ok());
}

#[test]
fn too_many_reads() {
    let mut insts: Vec<Instruction> = (0..=MAX_BLOCK_READS).map(read).collect();
    insts.push(halt());
    assert_eq!(
        build(insts).unwrap_err(),
        BlockError::TooManyReads(MAX_BLOCK_READS + 1)
    );
    let mut insts: Vec<Instruction> = (0..MAX_BLOCK_READS).map(read).collect();
    insts.push(halt());
    assert!(build(insts).is_ok());
}

#[test]
fn too_many_writes() {
    // Write-count is checked before dataflow, so the writes may be unfed.
    let mut insts: Vec<Instruction> = (0..=MAX_BLOCK_WRITES).map(write).collect();
    insts.push(halt());
    assert_eq!(
        build(insts).unwrap_err(),
        BlockError::TooManyWrites(MAX_BLOCK_WRITES + 1)
    );
}

#[test]
fn too_many_lsids_is_unreachable_by_construction() {
    // `Lsid::new` rejects indices >= 32, so a block can never name more
    // than MAX_BLOCK_LSIDS *distinct* IDs: the TooManyLsids variant is a
    // defense-in-depth check. Verify both halves: the constructor
    // panics past the limit, and exactly 32 distinct LSIDs are accepted.
    assert!(std::panic::catch_unwind(|| Lsid::new(MAX_BLOCK_LSIDS)).is_err());
    let mut insts: Vec<Instruction> = (0..MAX_BLOCK_LSIDS)
        .map(|n| {
            let mut i = Instruction::new(Opcode::Null);
            i.lsid = Some(Lsid::new(n));
            i
        })
        .collect();
    insts.push(halt());
    assert!(build(insts).is_ok());
}

#[test]
fn too_many_exits() {
    let insts: Vec<Instruction> = (0..=MAX_BLOCK_EXITS)
        .map(|e| bro(BranchKind::Halt, e as u8, None))
        .collect();
    assert_eq!(
        build(insts).unwrap_err(),
        BlockError::TooManyExits(MAX_BLOCK_EXITS + 1)
    );
    let insts: Vec<Instruction> = (0..MAX_BLOCK_EXITS)
        .map(|e| bro(BranchKind::Halt, e as u8, None))
        .collect();
    assert!(build(insts).is_ok());
}

#[test]
fn no_exit() {
    assert_eq!(build(vec![movi(1)]).unwrap_err(), BlockError::NoExit);
}

#[test]
fn dangling_target() {
    let insts = vec![targeted(movi(1), 9, Operand::Left), halt()];
    assert_eq!(
        build(insts).unwrap_err(),
        BlockError::DanglingTarget {
            from: 0,
            target: Target::new(InstId::new(9), Operand::Left),
        }
    );
}

#[test]
fn bad_operand_slot() {
    // `mov` is unary: its right operand slot does not exist.
    let insts = vec![
        targeted(movi(1), 1, Operand::Right),
        Instruction::new(Opcode::Mov),
        halt(),
    ];
    assert_eq!(
        build(insts).unwrap_err(),
        BlockError::BadOperandSlot {
            from: 0,
            target: Target::new(InstId::new(1), Operand::Right),
        }
    );
    // Feeding the predicate slot of an unpredicated instruction is just
    // as invalid.
    let insts = vec![
        targeted(movi(1), 1, Operand::Pred),
        targeted(Instruction::new(Opcode::Mov), 0, Operand::Left),
        halt(),
    ];
    assert!(matches!(
        build(insts).unwrap_err(),
        BlockError::BadOperandSlot { from: 0, .. }
    ));
}

#[test]
fn unfed_operand_each_slot() {
    // Left: a mov with no producer.
    let insts = vec![Instruction::new(Opcode::Mov), halt()];
    assert_eq!(
        build(insts).unwrap_err(),
        BlockError::UnfedOperand {
            inst: 0,
            operand: Operand::Left,
        }
    );
    // Right: a binary add fed only on the left.
    let insts = vec![
        targeted(movi(1), 1, Operand::Left),
        Instruction::new(Opcode::Add),
        halt(),
    ];
    assert_eq!(
        build(insts).unwrap_err(),
        BlockError::UnfedOperand {
            inst: 1,
            operand: Operand::Right,
        }
    );
    // Pred: a predicated instruction nobody feeds a predicate.
    let mut pmovi = movi(7);
    pmovi.pred = Some(PredSense::OnTrue);
    let insts = vec![pmovi, halt()];
    assert_eq!(
        build(insts).unwrap_err(),
        BlockError::UnfedOperand {
            inst: 0,
            operand: Operand::Pred,
        }
    );
}

#[test]
fn cyclic_dataflow() {
    let insts = vec![
        targeted(Instruction::new(Opcode::Mov), 1, Operand::Left),
        targeted(Instruction::new(Opcode::Mov), 0, Operand::Left),
        halt(),
    ];
    assert!(matches!(
        build(insts).unwrap_err(),
        BlockError::CyclicDataflow(_)
    ));
}

#[test]
fn missing_annotation_for_each_opcode_class() {
    // Read without a register.
    let insts = vec![Instruction::new(Opcode::Read), halt()];
    assert_eq!(build(insts).unwrap_err(), BlockError::MissingAnnotation(0));
    // Write without a register.
    let insts = vec![Instruction::new(Opcode::Write), halt()];
    assert_eq!(build(insts).unwrap_err(), BlockError::MissingAnnotation(0));
    // Load without an LSID.
    let insts = vec![Instruction::new(Opcode::Ld), halt()];
    assert_eq!(build(insts).unwrap_err(), BlockError::MissingAnnotation(0));
    // Store without an LSID.
    let insts = vec![Instruction::new(Opcode::St), halt()];
    assert_eq!(build(insts).unwrap_err(), BlockError::MissingAnnotation(0));
    // Bro without branch info.
    let insts = vec![Instruction::new(Opcode::Bro)];
    assert_eq!(build(insts).unwrap_err(), BlockError::MissingAnnotation(0));
}

#[test]
fn duplicate_write() {
    let insts = vec![write(1), write(1), halt()];
    assert_eq!(
        build(insts).unwrap_err(),
        BlockError::DuplicateWrite(Reg::new(1))
    );
}

#[test]
fn bad_branch_target() {
    // A branch needs a static target...
    let insts = vec![bro(BranchKind::Branch, 0, None)];
    assert_eq!(build(insts).unwrap_err(), BlockError::BadBranchTarget(0));
    // ...and a return must not carry one.
    let insts = vec![bro(BranchKind::Return, 0, Some(0x2000))];
    assert_eq!(build(insts).unwrap_err(), BlockError::BadBranchTarget(0));
}

#[test]
fn inconsistent_exit() {
    // Same exit ID, conflicting kinds.
    let insts = vec![
        bro(BranchKind::Halt, 0, None),
        bro(BranchKind::Return, 0, None),
    ];
    assert_eq!(build(insts).unwrap_err(), BlockError::InconsistentExit(0));
    // Same exit ID, conflicting targets.
    let insts = vec![
        bro(BranchKind::Branch, 0, Some(0x2000)),
        bro(BranchKind::Branch, 0, Some(0x3000)),
    ];
    assert_eq!(build(insts).unwrap_err(), BlockError::InconsistentExit(0));
    // Same exit ID, same kind and target: legal (a predicated exit pair).
    let insts = vec![
        bro(BranchKind::Halt, 0, None),
        bro(BranchKind::Halt, 0, None),
    ];
    assert!(build(insts).is_ok());
}

#[test]
fn primary_inst_points_at_the_culprit() {
    for (err, want) in [
        (
            BlockError::DanglingTarget {
                from: 3,
                target: Target::new(InstId::new(9), Operand::Left),
            },
            Some(3),
        ),
        (
            BlockError::UnfedOperand {
                inst: 5,
                operand: Operand::Pred,
            },
            Some(5),
        ),
        (BlockError::CyclicDataflow(2), Some(2)),
        (BlockError::MissingAnnotation(7), Some(7)),
        (BlockError::BadBranchTarget(1), Some(1)),
        (BlockError::NoExit, None),
        (BlockError::TooManyInstructions(129), None),
        (BlockError::DuplicateWrite(Reg::new(1)), None),
        (BlockError::InconsistentExit(0), None),
    ] {
        assert_eq!(err.primary_inst(), want, "{err}");
    }
}
