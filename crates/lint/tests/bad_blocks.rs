//! One hand-written bad block per analysis: each must be structurally
//! valid (accepted by `Block::from_instructions`) yet caught by the
//! expected lint code.

use clp_isa::asm::{parse_block, parse_program};
use clp_isa::{Block, EdgeProgram, InstId, Instruction, Opcode, Operand, Reg, Target};
use clp_lint::{lint_block, lint_program, LintCode, LintConfig, Severity};

fn block(text: &str) -> Block {
    parse_block(text).expect("structurally valid block")
}

fn codes_of(diags: &[clp_lint::Diagnostic]) -> Vec<LintCode> {
    diags.iter().map(|d| d.code).collect()
}

fn assert_caught(diags: &[clp_lint::Diagnostic], code: LintCode) {
    assert!(
        diags.iter().any(|d| d.code == code),
        "expected {code}, got {:?}",
        codes_of(diags)
    );
}

// ---- analysis 1: predicate paths -----------------------------------------

#[test]
fn predicate_path_with_no_firing_exit() {
    // The only exit is predicated on a read; when the register is zero
    // no exit fires and the block can never commit.
    let b = block(
        "block @0x1000 {
           i0: read r1 -> i1.P
           i1: p_t bro halt e0
         }",
    );
    let diags = lint_block(&b, &LintConfig::default());
    assert_caught(&diags, LintCode::NoFiringExit);
    assert!(diags
        .iter()
        .any(|d| d.code == LintCode::NoFiringExit && d.severity == Severity::Error));
}

#[test]
fn two_exits_fire_on_one_path() {
    let b = block(
        "block @0x1000 {
           i0: bro halt e0
           i1: bro halt e1
         }",
    );
    assert_caught(
        &lint_block(&b, &LintConfig::default()),
        LintCode::MultipleFiringExits,
    );
}

#[test]
fn write_starved_on_false_path() {
    // The write's only producer is predicated; on the false path the
    // register output never resolves.
    let b = block(
        "block @0x1000 {
           i0: read r1 -> i1.P
           i1: p_t movi #7 -> i2.L
           i2: write r2
           i3: bro halt e0
         }",
    );
    assert_caught(
        &lint_block(&b, &LintConfig::default()),
        LintCode::StarvedWrite,
    );
}

#[test]
fn write_delivered_twice() {
    let b = block(
        "block @0x1000 {
           i0: movi #1 -> i2.L
           i1: movi #2 -> i2.L
           i2: write r2
           i3: bro halt e0
         }",
    );
    assert_caught(
        &lint_block(&b, &LintConfig::default()),
        LintCode::DoubleWrite,
    );
}

#[test]
fn store_slot_unresolved_on_false_path() {
    let b = block(
        "block @0x1000 {
           i0: read r1 -> i2.P
           i1: movi #256 -> i2.L -> i2.R
           i2: p_t st #0 ls0
           i3: bro halt e0
         }",
    );
    let diags = lint_block(&b, &LintConfig::default());
    assert_caught(&diags, LintCode::UnresolvedStore);
    // The value operand of the store is also starved? No: predicated-off
    // stores consume; the *slot* is the issue. The fix is a null on the
    // complementary predicate:
    let fixed = block(
        "block @0x1000 {
           i0: read r1 -> i2.P -> i3.P
           i1: movi #256 -> i2.L -> i2.R
           i2: p_t st #0 ls0
           i3: p_f null ls0
           i4: bro halt e0
         }",
    );
    let diags = lint_block(&fixed, &LintConfig::default());
    assert!(
        !diags.iter().any(|d| d.severity == Severity::Error),
        "nullified store should be clean, got {:?}",
        codes_of(&diags)
    );
}

#[test]
fn store_slot_resolved_twice() {
    let b = block(
        "block @0x1000 {
           i0: movi #256 -> i1.L -> i1.R
           i1: st #0 ls0
           i2: null ls0
           i3: bro halt e0
         }",
    );
    assert_caught(
        &lint_block(&b, &LintConfig::default()),
        LintCode::DoubleStore,
    );
}

#[test]
fn contradictory_predicates_are_dead() {
    // i2 requires the predicate true *and* false via a mov chain: it can
    // never fire.
    let b = block(
        "block @0x1000 {
           i0: read r1 -> i1.P -> i2.P
           i1: p_t movi #1 -> i3.L
           i2: p_f movi #2 -> i3.L
           i3: write r2
           i4: bro halt e0
           i5: read r2 -> i6.P -> i6.L
           i6: p_t mov -> i7.P
           i7: p_f movi #9
         }",
    );
    // i6 delivers only when r2 is truthy... i7 wants pred false, but the
    // mov forwards the truthy value: contradiction, i7 never fires.
    let diags = lint_block(&b, &LintConfig::default());
    assert!(
        diags
            .iter()
            .any(|d| d.code == LintCode::DeadPredicatePath && d.span.inst == Some(7)),
        "expected dead i7, got {:?}",
        codes_of(&diags)
    );
}

// ---- analysis 2: LSID order ----------------------------------------------

#[test]
fn duplicate_lsid_loads_conflict() {
    let b = block(
        "block @0x1000 {
           i0: movi #256 -> i1.L -> i2.L
           i1: ld #0 ls0 -> i3.L
           i2: ld #8 ls0 -> i3.R
           i3: add -> i4.L
           i4: write r1
           i5: bro halt e0
         }",
    );
    assert_caught(
        &lint_block(&b, &LintConfig::default()),
        LintCode::DuplicateLsid,
    );
}

#[test]
fn store_load_forwarding_cycle() {
    // The store (ls0) takes its value from a load (ls1) of the same
    // address: the load must observe the older store, which waits on the
    // load.
    let b = block(
        "block @0x1000 {
           i0: movi #256 -> i1.L -> i2.L
           i1: ld #0 ls1 -> i2.R
           i2: st #0 ls0
           i3: bro halt e0
         }",
    );
    let diags = lint_block(&b, &LintConfig::default());
    assert_caught(&diags, LintCode::ForwardingCycle);
    assert_caught(&diags, LintCode::LsidOrderInversion);
}

#[test]
fn block_exceeding_one_lsq_bank_is_unflushable() {
    // Three distinct memory slots; with a (lowered) 2-entry bank the
    // block could never fit a single bank alone, which breaks the
    // overflow protocol's forward-progress argument at 1 core.
    let b = block(
        "block @0x1000 {
           i0: movi #256 -> i3.L
           i1: movi #256 -> i4.L
           i2: movi #256 -> i5.L
           i3: ld #0 ls0
           i4: ld #8 ls1
           i5: ld #16 ls2
           i6: bro halt e0
         }",
    );
    let diags = lint_block(&b, &LintConfig::default());
    assert!(
        !diags
            .iter()
            .any(|d| d.code == LintCode::LsqUnflushableBlock),
        "44-entry banks always fit the 32-LSID budget, got {:?}",
        codes_of(&diags)
    );
    let cfg = LintConfig {
        lsq_entries: 2,
        ..LintConfig::default()
    };
    let diags = lint_block(&b, &cfg);
    assert_caught(&diags, LintCode::LsqUnflushableBlock);
    assert!(diags
        .iter()
        .any(|d| d.code == LintCode::LsqUnflushableBlock && d.severity == Severity::Info));
    // A null slot resolves without an LSQ entry; it does not count.
    let b2 = block(
        "block @0x1000 {
           i0: movi #256 -> i1.L -> i2.L
           i1: ld #0 ls0
           i2: ld #8 ls1
           i3: null ls2
           i4: bro halt e0
         }",
    );
    assert!(
        !lint_block(&b2, &cfg)
            .iter()
            .any(|d| d.code == LintCode::LsqUnflushableBlock),
        "two real slots fit a 2-entry bank"
    );
}

// ---- analysis 3: dead dataflow -------------------------------------------

#[test]
fn dead_result_is_flagged() {
    let b = block(
        "block @0x1000 {
           i0: movi #42
           i1: bro halt e0
         }",
    );
    let diags = lint_block(&b, &LintConfig::default());
    assert!(
        diags
            .iter()
            .any(|d| d.code == LintCode::DeadDataflow && d.span.inst == Some(0)),
        "expected dead i0, got {:?}",
        codes_of(&diags)
    );
}

// ---- analysis 4: placement cost ------------------------------------------

#[test]
fn long_operand_route_and_deep_fanout() {
    // i0 (core 0, mesh corner) feeds i31 (core 31, opposite corner of
    // the 4x8 region): 10 hops on a 32-core composition.
    let mut insts = vec![Instruction::new(Opcode::Movi); 32];
    insts[0].imm = 1;
    insts[0].targets[0] = Some(Target::new(InstId::new(31), Operand::Left));
    insts[31] = Instruction::new(Opcode::Write);
    insts[31].reg = Some(Reg::new(1));
    let mut halt = Instruction::new(Opcode::Bro);
    halt.branch = Some(clp_isa::BranchInfo {
        exit_id: 0,
        kind: clp_isa::BranchKind::Halt,
        target: None,
    });
    insts.push(halt);
    let b = Block::from_instructions(0x1000, insts).expect("valid block");
    assert_caught(
        &lint_block(&b, &LintConfig::default()),
        LintCode::LongOperandRoute,
    );

    let deep = block(
        "block @0x1000 {
           i0: movi #1 -> i1.L
           i1: mov -> i2.L
           i2: mov -> i3.L
           i3: mov -> i4.L
           i4: mov -> i5.L
           i5: mov -> i6.L
           i6: write r1
           i7: bro halt e0
         }",
    );
    assert_caught(
        &lint_block(&deep, &LintConfig::default()),
        LintCode::DeepFanoutTree,
    );
}

// ---- analysis 5: whole program -------------------------------------------

#[test]
fn unreachable_block_and_uninit_read() {
    let p = parse_program(
        "entry @0x1000
         block @0x1000 {
           i0: read r50 -> i1.L
           i1: write r1
           i2: bro halt e0
         }
         block @0x2000 {
           i0: bro halt e0
         }",
    )
    .expect("valid program");
    let report = lint_program(&p, &LintConfig::default());
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == LintCode::UnreachableBlock && d.span.block == Some(0x2000)));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == LintCode::MaybeUninitRead && d.span.inst == Some(0)));
}

#[test]
fn program_that_cannot_halt() {
    let p = parse_program(
        "entry @0x1000
         block @0x1000 {
           i0: bro br e0 @0x1000
         }",
    )
    .expect("valid program");
    let report = lint_program(&p, &LintConfig::default());
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == LintCode::NoHaltExit));
}

#[test]
fn dangling_branch_target_after_deserialization() {
    // The builder refuses dangling targets, but a serialized program can
    // be edited (or corrupted) on disk; the linter must still catch it.
    let p = parse_program(
        "entry @0x1000
         block @0x1000 {
           i0: bro br e0 @0x2000
         }
         block @0x2000 {
           i0: bro halt e0
         }",
    )
    .expect("valid program");
    let json = serde_json::to_string(&p).expect("serializes");
    let truncated = {
        use serde::Value;
        let mut v: Value = serde_json::from_str(&json).expect("parses");
        if let Value::Object(fields) = &mut v {
            for (k, blocks) in fields.iter_mut() {
                if k == "blocks" {
                    if let Value::Object(map) = blocks {
                        map.retain(|(addr, _)| addr != "8192");
                    }
                }
            }
        }
        serde_json::to_string(&v).expect("re-serializes")
    };
    let corrupt: EdgeProgram = serde_json::from_str(&truncated).expect("deserializes");
    assert!(corrupt.block(0x2000).is_none(), "block 0x2000 removed");
    let report = lint_program(&corrupt, &LintConfig::default());
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == LintCode::DanglingBranchTarget && d.severity == Severity::Error));
}

// ---- config plumbing -----------------------------------------------------

#[test]
fn allow_and_relevel_change_the_report() {
    let b = block(
        "block @0x1000 {
           i0: movi #42
           i1: bro halt e0
         }",
    );
    let mut cfg = LintConfig::default();
    cfg.allow(LintCode::DeadDataflow);
    assert!(!codes_of(&lint_block(&b, &cfg)).contains(&LintCode::DeadDataflow));
    let mut cfg = LintConfig::default();
    cfg.set_level(LintCode::DeadDataflow, Severity::Error);
    assert!(lint_block(&b, &cfg)
        .iter()
        .any(|d| d.code == LintCode::DeadDataflow && d.severity == Severity::Error));
}
