//! Golden test for the machine-readable diagnostics format. Tools
//! (editor integrations, the CI gate) parse this JSON, so its shape is
//! a contract: field names, ordering, and severity strings are pinned
//! byte-for-byte here. Bump the golden deliberately when the format
//! changes, never by accident.

use clp_isa::asm::parse_program;
use clp_lint::{lint_program, LintConfig};

const FIXTURE: &str = "entry @0x1000
block @0x1000 {
  i0: read r1 -> i3.P
  i1: movi #42
  i2: movi #256 -> i3.L -> i3.R
  i3: p_t st #0 ls0
  i4: bro halt e0
}
";

const GOLDEN: &str = r#"{
  "errors": 1,
  "warnings": 1,
  "infos": 0,
  "diagnostics": [
    {
      "code": "L201",
      "name": "dead-dataflow",
      "severity": "warning",
      "block": 4096,
      "inst": 1,
      "message": "result of movi reaches no register write, store, or branch",
      "notes": [
        "the instruction occupies an issue-window slot for no effect"
      ]
    },
    {
      "code": "L005",
      "name": "unresolved-store",
      "severity": "error",
      "block": 4096,
      "inst": 3,
      "message": "store slot ls0 is neither stored nor nullified on this path; the block's store outputs never resolve",
      "notes": [
        "on predicate assignment i0(read)=0"
      ]
    }
  ]
}"#;

#[test]
fn diagnostics_json_is_pinned() {
    let program = parse_program(FIXTURE).expect("fixture parses");
    let report = lint_program(&program, &LintConfig::default());
    assert_eq!(report.to_json(), GOLDEN);
}

#[test]
fn golden_is_valid_json_with_the_expected_shape() {
    // Guard the guard: the pinned text itself must parse, and the
    // summary counts must agree with the diagnostics array.
    let v = serde_json::from_str::<serde::Value>(GOLDEN).expect("golden parses");
    let serde::Value::Object(fields) = &v else {
        panic!("golden is not an object")
    };
    let get = |k: &str| {
        fields
            .iter()
            .find(|(name, _)| name == k)
            .map(|(_, val)| val)
            .unwrap_or_else(|| panic!("missing field {k}"))
    };
    let serde::Value::Array(diags) = get("diagnostics") else {
        panic!("diagnostics is not an array")
    };
    assert_eq!(diags.len(), 2);
    assert_eq!(get("errors").as_u64(), Some(1));
    assert_eq!(get("warnings").as_u64(), Some(1));
}
