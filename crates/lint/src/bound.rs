//! clp-bound: static per-block cycle/resource lower bounds, sound
//! against the cycle-accurate simulator.
//!
//! For each hyperblock and composition size the analyzer computes a
//! *provable lower bound* on the block's fetch-to-commit span: the max
//! of
//!
//! - the **placement-aware dataflow height** — the longest path through
//!   the block's operand graph that ends at a *commit-gating output*
//!   (a register write, store, store-nullification, or branch),
//!   weighting each edge with the producer's execution latency plus the
//!   operand-network delivery delay (one cycle for the same-core
//!   bypass, [`clp_noc::rect_hops`]` + 1` cycles across the composed
//!   mesh), minimized over the enumerated predicate paths of
//!   `predicate.rs`'s three-valued firing analysis;
//! - classic **resource interval bounds**: per-core issue slots
//!   (with the FP sub-budget), per-core fetch/dispatch bandwidth, and
//!   per-link operand-network bandwidth under X-Y dimension-order
//!   routing, counted only over the instructions that *must* execute
//!   before the block can commit. LSQ-port pressure is deliberately
//!   folded into the issue bound: banks are address-interleaved, so a
//!   per-bank interval claim would need addresses the static analyzer
//!   cannot know, and the memory system imposes no per-bank issue port
//!   beyond the core's own issue width.
//!
//! The output-gating restriction is forced by the machine, not a
//! tightness choice: a TFlex block commits as soon as its branch has
//! resolved, every register write and store slot is satisfied, and
//! dispatch has drained — instructions still in flight that feed no
//! output are simply discarded at commit. A firing dataflow tail that
//! ends in a dead predicate-fanout mov therefore never delays the
//! block, and counting it would over-bound real spans (conv's
//! predicate ladder commits ~50 cycles before its deepest firing mov
//! chain would finish).
//!
//! Soundness is the load-bearing contract: `bound ≤ measured` for every
//! block span the profiler records and for every suite cell, checked in
//! CI. Everything here errs on the side of *under*-estimation:
//! predicate paths take the min over enumerated assignments (the real
//! path always matches one when enumeration is exhaustive, and the
//! sampled fallback keeps only instructions that fire under every
//! assignment), possibly-firing (`Maybe`) producers are allowed to
//! satisfy an operand early, only definitely-firing outputs anchor a
//! path, and memory/control traffic that cannot be attributed
//! statically is simply not counted.

use crate::graph::BlockGraph;
use crate::predicate::{firing_paths, Fire};
use crate::{Diagnostic, LintCode, LintConfig, Span};
use clp_isa::{Block, BlockAddr, BranchKind, EdgeProgram, Instruction, Opcode, OpcodeClass};
use clp_noc::{rect_hops, rect_route, region_rect, MeshConfig};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The machine parameters the bound is computed against. These mirror
/// the simulator's TFlex configuration; the CI soundness gate runs the
/// analyzer against the real simulator, so any drift between the two
/// is caught as a bound violation rather than silently mis-modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundMachine {
    /// Instructions each core may issue per cycle.
    pub issue_width: u32,
    /// Floating-point instructions each core may issue per cycle
    /// (a sub-budget of `issue_width`).
    pub fp_issue: u32,
    /// Instructions each core may dispatch into its window per cycle.
    pub dispatch_per_cycle: u32,
    /// Operand-network messages per link direction per cycle.
    pub link_bandwidth: u32,
}

impl Default for BoundMachine {
    fn default() -> Self {
        BoundMachine::tflex()
    }
}

impl BoundMachine {
    /// The TFlex core (dual-issue, one FP pipe, four-wide dispatch,
    /// double-bandwidth operand links).
    #[must_use]
    pub fn tflex() -> Self {
        BoundMachine {
            issue_width: 2,
            fp_issue: 1,
            dispatch_per_cycle: 4,
            link_bandwidth: 2,
        }
    }
}

/// The component that sets a block's (or cell's) bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Resource {
    /// Placement-aware dataflow critical path.
    Height,
    /// Per-core issue bandwidth.
    Issue,
    /// Per-link operand-network bandwidth.
    Noc,
    /// Per-core dispatch bandwidth.
    Dispatch,
}

impl Resource {
    /// Short human-readable name of the binding resource.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Resource::Height => "height",
            Resource::Issue => "issue",
            Resource::Noc => "noc",
            Resource::Dispatch => "dispatch",
        }
    }
}

/// A provable lower bound on one block's fetch-to-commit span at one
/// composition size, with its component breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockBound {
    /// Block address.
    pub addr: BlockAddr,
    /// Composition size the bound was computed for.
    pub cores: usize,
    /// The bound itself: max of every component, never zero.
    pub cycles: u64,
    /// Placement-aware dataflow height of the binding predicate path.
    pub height: u64,
    /// The same height with every route cost removed (pure latencies
    /// plus the single-cycle bypass) — the yardstick for
    /// [`LintCode::PlacementInflatedPath`].
    pub flat_height: u64,
    /// Per-core issue interval bound of the binding path.
    pub issue: u64,
    /// Per-link operand-network interval bound of the binding path.
    pub noc: u64,
    /// Per-core dispatch interval bound (predicate-independent).
    pub dispatch: u64,
    /// Which component sets `cycles`.
    pub binding: Resource,
    /// Whether the predicate paths were enumerated exhaustively (if
    /// not, the bound used only instructions that fire under every
    /// assignment).
    pub exhaustive: bool,
}

/// A provable lower bound on a whole program's cycle count at one
/// composition size.
///
/// Per-block bounds must **not** be summed along a control-flow path —
/// composed processors overlap speculative blocks, so spans overlap.
/// The sound program-level floors are:
///
/// - the best bound among blocks that *must* commit (the entry block
///   and every common dominator of the program's terminals),
/// - the weakest terminal bound (every run ends by committing some
///   halt- or return-exiting block),
/// - the dispatch-work floor: the cheapest control-flow path still
///   dispatches `W` instructions through `cores ×
///   dispatch_per_cycle` slots per cycle.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgramBound {
    /// Composition size the bound was computed for.
    pub cores: usize,
    /// The program-level lower bound (max of the floors below).
    pub cycles: u64,
    /// Best per-block bound among must-commit blocks.
    pub must_commit: u64,
    /// Weakest per-block bound among terminal blocks.
    pub terminal: u64,
    /// Dispatch-bandwidth work floor over the cheapest path.
    pub work_floor: u64,
    /// Per-block bounds for every block reachable from the entry.
    pub blocks: Vec<BlockBound>,
}

/// Per-opcode execution latency as the bound model sees it: `Read`
/// values are register-bank lookups that arrive with dispatch, so they
/// contribute no execution latency of their own.
fn lat(block: &Block, i: usize) -> u64 {
    let op = block.instructions()[i].opcode;
    if op == Opcode::Read {
        0
    } else {
        u64::from(op.latency())
    }
}

/// The cheapest cycle an instruction can leave dispatch, from its
/// position in its core's dispatch slice (slices stripe round-robin,
/// so slot `i` is position `i / cores` in core `i % cores`'s slice).
fn dispatch_floor(i: usize, cores: usize, m: &BoundMachine) -> u64 {
    (i / cores) as u64 / u64::from(m.dispatch_per_cycle)
}

fn div_ceil_u64(a: u64, b: u64) -> u64 {
    a.div_ceil(b.max(1))
}

/// Whether an instruction's completion gates block commit: the commit
/// point waits for the branch to resolve, every register write and
/// store slot to be satisfied (a store either executes or is nullified
/// by a `null` carrying its LSID), and dispatch to drain — nothing
/// else. Everything still in flight at that point is discarded.
fn is_gating(inst: &Instruction) -> bool {
    match inst.opcode {
        Opcode::Write | Opcode::Bro => true,
        Opcode::Null => inst.lsid.is_some(),
        op => op.is_store(),
    }
}

/// The instructions that must have executed before the block can
/// commit, under one firing vector: the backward closure of the
/// definitely-firing gating outputs through operand slots with exactly
/// one possible (non-`No`) producer. A slot several producers could
/// feed pins none of them individually — some producer delivered, but
/// a sound per-instruction count cannot say which.
fn live_set(g: &BlockGraph, insts: &[Instruction], fire: &[Fire]) -> Vec<bool> {
    let n = insts.len();
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = (0..n)
        .filter(|&i| fire[i] == Fire::Yes && is_gating(&insts[i]))
        .collect();
    for &i in &stack {
        live[i] = true;
    }
    while let Some(i) = stack.pop() {
        for slot in 0..3 {
            if let Some(p) = sole_producer(g, fire, i, slot) {
                if !live[p] {
                    live[p] = true;
                    stack.push(p);
                }
            }
        }
    }
    live
}

/// One predicate path's component bounds.
struct PathBounds {
    height: u64,
    flat_height: u64,
    issue: u64,
    noc: u64,
}

/// Computes the placement-aware and placement-free heights of one
/// firing vector: a longest-path pass over the operand graph, anchored
/// only at definitely-firing commit-gating outputs ([`is_gating`]) —
/// the block commits the moment those are satisfied, whatever else is
/// still in flight.
fn path_heights(
    block: &Block,
    g: &BlockGraph,
    fire: &[Fire],
    cores: usize,
    rect_w: usize,
    m: &BoundMachine,
) -> (u64, u64) {
    let insts = block.instructions();
    let n = insts.len();
    let mut lb = vec![0u64; n];
    let mut lb_flat = vec![0u64; n];
    let mut height = 0u64;
    let mut flat = 0u64;
    for &i in &g.topo {
        let mut t = dispatch_floor(i, cores, m);
        let mut tf = t;
        for slot in 0..3 {
            // The consumer cannot fire before *some* possibly-firing
            // producer of each fed slot delivers; min over producers is
            // the sound choice when several could feed it on different
            // paths, and a `Maybe` producer may satisfy the slot early.
            let mut best: Option<u64> = None;
            let mut best_flat: Option<u64> = None;
            for &p in &g.producers[i][slot] {
                if fire[p] == Fire::No {
                    continue;
                }
                let hops = if insts[p].opcode == Opcode::Read {
                    // The value leaves the register bank, not the
                    // producer's slot core.
                    match insts[p].reg {
                        Some(r) => rect_hops(r.bank_of(cores), i % cores, rect_w) as u64,
                        None => 0,
                    }
                } else {
                    rect_hops(p % cores, i % cores, rect_w) as u64
                };
                let w = lb[p] + lat(block, p) + hops + 1;
                let wf = lb_flat[p] + lat(block, p) + 1;
                best = Some(best.map_or(w, |b: u64| b.min(w)));
                best_flat = Some(best_flat.map_or(wf, |b: u64| b.min(wf)));
            }
            if let Some(b) = best {
                t = t.max(b);
            }
            if let Some(b) = best_flat {
                tf = tf.max(b);
            }
        }
        lb[i] = t;
        lb_flat[i] = tf;
        // Only a definitely-firing gating output anchors a path, and
        // only through its operand-arrival time: the commit point needs
        // the output's inputs delivered, not a further execution
        // latency the commit protocol may overlap.
        if fire[i] == Fire::Yes && is_gating(&insts[i]) {
            height = height.max(t);
            flat = flat.max(tf);
        }
    }
    (height, flat)
}

/// The sole instruction that can deliver `(i, slot)` under this firing
/// vector, if there is exactly one possible (non-`No`) producer and it
/// definitely fires. A contested slot pins nobody.
fn sole_producer(g: &BlockGraph, fire: &[Fire], i: usize, slot: usize) -> Option<usize> {
    let mut candidate: Option<usize> = None;
    for &p in &g.producers[i][slot] {
        if fire[p] == Fire::No {
            continue;
        }
        if candidate.is_some() {
            return None;
        }
        candidate = Some(p);
    }
    candidate.filter(|&p| fire[p] == Fire::Yes)
}

/// Computes the per-core issue and per-link NoC interval bounds of one
/// firing vector, counting only work the block cannot commit without:
/// issue slots of [`live_set`] instructions, and operand deliveries
/// into live consumer slots a single producer must feed. Register-read
/// requests, write-back forwarding, and address-interleaved memory
/// traffic are left uncounted — their routes are protocol- or
/// address-dependent.
fn path_intervals(
    block: &Block,
    g: &BlockGraph,
    fire: &[Fire],
    cores: usize,
    rect_w: usize,
    m: &BoundMachine,
) -> (u64, u64) {
    let insts = block.instructions();
    let live = live_set(g, insts, fire);
    let mut total = vec![0u64; cores];
    let mut fp = vec![0u64; cores];
    let mut traffic: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for (i, inst) in insts.iter().enumerate() {
        if !live[i] {
            continue;
        }
        let core = i % cores;
        // Reads resolve at the register bank and writes absorb an
        // arriving operand; neither passes the issue stage.
        if inst.opcode != Opcode::Read && inst.opcode != Opcode::Write {
            total[core] += 1;
            if inst.opcode.class() == OpcodeClass::Float {
                fp[core] += 1;
            }
        }
        // Deliveries the commit point waits for: each live consumer
        // slot only one producer can feed.
        for slot in 0..3 {
            let Some(p) = sole_producer(g, fire, i, slot) else {
                continue;
            };
            let from = if insts[p].opcode == Opcode::Read {
                // The value leaves the register bank holding the
                // architectural register, not the read's own slot core.
                match insts[p].reg {
                    Some(r) => r.bank_of(cores),
                    None => continue,
                }
            } else {
                p % cores
            };
            if from == core {
                continue;
            }
            let path = rect_route(from, core, rect_w);
            for pair in path.windows(2) {
                *traffic.entry((pair[0], pair[1])).or_insert(0) += 1;
            }
        }
    }
    let mut issue = 0u64;
    for c in 0..cores {
        issue = issue.max(div_ceil_u64(total[c], u64::from(m.issue_width)));
        issue = issue.max(div_ceil_u64(fp[c], u64::from(m.fp_issue)));
    }
    let noc = traffic
        .values()
        .map(|&t| div_ceil_u64(t, u64::from(m.link_bandwidth)))
        .max()
        .unwrap_or(0);
    (issue, noc)
}

/// Computes the static cycle bound of one block at one composition
/// size (the TFlex machine parameters).
///
/// # Panics
///
/// Panics if `cores` is not a legal composition size (a power of two
/// within the 4×8 chip).
#[must_use]
pub fn bound_block(block: &Block, cfg: &LintConfig, cores: usize) -> BlockBound {
    let mesh = MeshConfig::tflex_operand();
    let (rect_w, _) = region_rect(&mesh, cores).expect("legal composition size");
    let m = BoundMachine::tflex();
    let g = BlockGraph::new(block);
    let paths = firing_paths(block, &g, cfg);

    // Dispatch is predicate-independent: every instruction of the block
    // is dispatched whether or not it ever fires.
    let mut slice = vec![0u64; cores];
    for i in 0..block.len() {
        slice[i % cores] += 1;
    }
    let dispatch = slice
        .iter()
        .map(|&c| div_ceil_u64(c, u64::from(m.dispatch_per_cycle)))
        .max()
        .unwrap_or(0);

    // The real execution path matches one enumerated assignment, so the
    // min over paths of each path's combined bound is sound.
    let mut best: Option<(u64, PathBounds)> = None;
    for fire in &paths.paths {
        let (height, flat_height) = path_heights(block, &g, fire, cores, rect_w, &m);
        let (issue, noc) = path_intervals(block, &g, fire, cores, rect_w, &m);
        let combined = height.max(issue).max(noc);
        let pb = PathBounds {
            height,
            flat_height,
            issue,
            noc,
        };
        if best.as_ref().is_none_or(|(b, _)| combined < *b) {
            best = Some((combined, pb));
        }
    }
    let (combined, pb) = best.expect("at least one firing path");
    let cycles = combined.max(dispatch).max(1);
    let binding = if pb.height >= cycles {
        Resource::Height
    } else if pb.issue >= cycles {
        Resource::Issue
    } else if pb.noc >= cycles {
        Resource::Noc
    } else {
        Resource::Dispatch
    };
    BlockBound {
        addr: block.address(),
        cores,
        cycles,
        height: pb.height,
        flat_height: pb.flat_height,
        issue: pb.issue,
        noc: pb.noc,
        dispatch,
        binding,
        exhaustive: paths.exhaustive,
    }
}

/// The static control-flow graph the program-level floors are computed
/// over: successors are the statically known exit targets, and blocks
/// with `Return` exits additionally flow to every address-taken block
/// (an over-approximation of where a return can land, which keeps
/// shortest paths and dominators sound).
struct Cfg {
    /// Blocks reachable from the entry, in address order.
    reachable: Vec<BlockAddr>,
    succs: BTreeMap<BlockAddr, Vec<BlockAddr>>,
    /// Reachable blocks with a halt or return exit: every run ends by
    /// committing one of them.
    terminals: Vec<BlockAddr>,
}

fn build_cfg(p: &EdgeProgram) -> Cfg {
    let addrs: BTreeSet<BlockAddr> = p.iter().map(|(&a, _)| a).collect();
    let mut taken: BTreeSet<BlockAddr> = BTreeSet::new();
    for (_, block) in p.iter() {
        for inst in block.instructions() {
            if inst.opcode.has_immediate() && addrs.contains(&(inst.imm as u64)) {
                taken.insert(inst.imm as u64);
            }
        }
    }
    let mut succs: BTreeMap<BlockAddr, Vec<BlockAddr>> = BTreeMap::new();
    for (&a, block) in p.iter() {
        let mut out: Vec<BlockAddr> = Vec::new();
        let mut returns = false;
        for exit in block.exits() {
            match exit.kind {
                BranchKind::Return => returns = true,
                _ => {
                    if let Some(t) = exit.target {
                        if addrs.contains(&t) {
                            out.push(t);
                        }
                    }
                }
            }
        }
        if returns {
            out.extend(taken.iter().copied());
        }
        out.sort_unstable();
        out.dedup();
        succs.insert(a, out);
    }
    let mut reached: BTreeSet<BlockAddr> = BTreeSet::new();
    let mut queue: VecDeque<BlockAddr> = VecDeque::new();
    if addrs.contains(&p.entry()) {
        reached.insert(p.entry());
        queue.push_back(p.entry());
    }
    while let Some(a) = queue.pop_front() {
        for &s in &succs[&a] {
            if reached.insert(s) {
                queue.push_back(s);
            }
        }
    }
    let terminals: Vec<BlockAddr> = reached
        .iter()
        .copied()
        .filter(|&a| {
            p.block(a).is_some_and(|b| {
                b.exits()
                    .iter()
                    .any(|e| matches!(e.kind, BranchKind::Halt | BranchKind::Return))
            })
        })
        .collect();
    Cfg {
        reachable: reached.into_iter().collect(),
        succs,
        terminals,
    }
}

/// Blocks that appear on *every* entry→terminal path (the intersection
/// of the terminals' dominator sets). Whatever terminal a run actually
/// commits, these blocks committed before it.
fn must_commit_blocks(cfg: &Cfg, entry: BlockAddr) -> Vec<BlockAddr> {
    if cfg.terminals.is_empty() || !cfg.reachable.contains(&entry) {
        return vec![entry];
    }
    let all: BTreeSet<BlockAddr> = cfg.reachable.iter().copied().collect();
    let mut preds: BTreeMap<BlockAddr, Vec<BlockAddr>> = BTreeMap::new();
    for &a in &cfg.reachable {
        for &s in &cfg.succs[&a] {
            preds.entry(s).or_default().push(a);
        }
    }
    let mut dom: BTreeMap<BlockAddr, BTreeSet<BlockAddr>> = cfg
        .reachable
        .iter()
        .map(|&a| {
            if a == entry {
                (a, BTreeSet::from([a]))
            } else {
                (a, all.clone())
            }
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for &a in &cfg.reachable {
            if a == entry {
                continue;
            }
            let mut new: Option<BTreeSet<BlockAddr>> = None;
            for p in preds.get(&a).into_iter().flatten() {
                new = Some(match new {
                    None => dom[p].clone(),
                    Some(acc) => acc.intersection(&dom[p]).copied().collect(),
                });
            }
            let mut new = new.unwrap_or_default();
            new.insert(a);
            if new != dom[&a] {
                dom.insert(a, new);
                changed = true;
            }
        }
    }
    let mut common: Option<BTreeSet<BlockAddr>> = None;
    for t in &cfg.terminals {
        common = Some(match common {
            None => dom[t].clone(),
            Some(acc) => acc.intersection(&dom[t]).copied().collect(),
        });
    }
    common.unwrap_or_default().into_iter().collect()
}

/// Minimum instructions dispatched on any entry→terminal path
/// (Dijkstra with block length as the node weight).
fn min_path_work(cfg: &Cfg, p: &EdgeProgram, entry: BlockAddr) -> u64 {
    let len = |a: BlockAddr| p.block(a).map_or(0, |b| b.len() as u64);
    let mut dist: BTreeMap<BlockAddr, u64> = BTreeMap::new();
    let mut heap = std::collections::BinaryHeap::new();
    dist.insert(entry, len(entry));
    heap.push(std::cmp::Reverse((len(entry), entry)));
    while let Some(std::cmp::Reverse((d, a))) = heap.pop() {
        if dist.get(&a).is_some_and(|&best| d > best) {
            continue;
        }
        if let Some(ss) = cfg.succs.get(&a) {
            for &s in ss {
                let nd = d + len(s);
                if dist.get(&s).is_none_or(|&best| nd < best) {
                    dist.insert(s, nd);
                    heap.push(std::cmp::Reverse((nd, s)));
                }
            }
        }
    }
    cfg.terminals
        .iter()
        .filter_map(|t| dist.get(t).copied())
        .min()
        .unwrap_or_else(|| len(entry))
}

/// Computes the program-level cycle bound at one composition size,
/// along with every reachable block's bound.
///
/// # Panics
///
/// Panics if `cores` is not a legal composition size.
#[must_use]
pub fn bound_program(p: &EdgeProgram, cfg: &LintConfig, cores: usize) -> ProgramBound {
    let cfg_graph = build_cfg(p);
    let blocks: Vec<BlockBound> = cfg_graph
        .reachable
        .iter()
        .filter_map(|&a| p.block(a).map(|b| bound_block(b, cfg, cores)))
        .collect();
    let bound_of = |a: BlockAddr| blocks.iter().find(|b| b.addr == a).map_or(0, |b| b.cycles);
    let must_commit = must_commit_blocks(&cfg_graph, p.entry())
        .iter()
        .map(|&a| bound_of(a))
        .max()
        .unwrap_or(0);
    let terminal = cfg_graph
        .terminals
        .iter()
        .map(|&a| bound_of(a))
        .min()
        .unwrap_or(0);
    let m = BoundMachine::tflex();
    let work = min_path_work(&cfg_graph, p, p.entry());
    let work_floor = div_ceil_u64(work, cores as u64 * u64::from(m.dispatch_per_cycle));
    let cycles = must_commit.max(terminal).max(work_floor).max(1);
    ProgramBound {
        cores,
        cycles,
        must_commit,
        terminal,
        work_floor,
        blocks,
    }
}

/// Analytic speedup-sketch samples, `(cores, bound_cycles)` per size —
/// feed them to `clp_alloc::SpeedupCurve::analytic` for a
/// `bound(1)/bound(n)` curve beside the measured ones.
#[must_use]
pub fn bound_curve_samples(
    p: &EdgeProgram,
    cfg: &LintConfig,
    sizes: &[usize],
) -> Vec<(usize, u64)> {
    sizes
        .iter()
        .map(|&n| (n, bound_program(p, cfg, n).cycles))
        .collect()
}

/// Runs the L5xx bound lints over a program at
/// [`LintConfig::placement_cores`]: which blocks are issue- or
/// NoC-bound rather than height-bound, and where placement inflates
/// the static critical path past the configured threshold.
#[must_use]
pub fn lint_bounds(p: &EdgeProgram, cfg: &LintConfig) -> Vec<Diagnostic> {
    let n = cfg.placement_cores;
    let pb = bound_program(p, cfg, n);
    let mut diags = Vec::new();
    for b in &pb.blocks {
        if b.binding == Resource::Issue && b.issue > b.height {
            diags.push(
                Diagnostic::new(
                    LintCode::IssueBoundBlock,
                    Span::block(b.addr),
                    format!(
                        "block is issue-bound on a {n}-core composition: \
                         {} cycles of issue pressure vs a {}-cycle dataflow height",
                        b.issue, b.height
                    ),
                )
                .with_note(
                    "the busiest core issues more instructions than its issue \
                     slots cover; a larger composition spreads them"
                        .to_string(),
                ),
            );
        }
        if b.binding == Resource::Noc && b.noc > b.height && b.noc > b.issue {
            diags.push(
                Diagnostic::new(
                    LintCode::NocBoundBlock,
                    Span::block(b.addr),
                    format!(
                        "block is operand-network-bound on a {n}-core composition: \
                         the hottest link carries {} cycles of traffic \
                         (height {}, issue {})",
                        b.noc, b.height, b.issue
                    ),
                )
                .with_note(
                    "operand edges funnel through one mesh link; re-placing \
                     producers or consumers would spread the traffic"
                        .to_string(),
                ),
            );
        }
        let threshold = b.flat_height + b.flat_height * u64::from(cfg.bound_inflation_pct) / 100;
        if b.flat_height > 0 && b.height > threshold {
            diags.push(
                Diagnostic::new(
                    LintCode::PlacementInflatedPath,
                    Span::block(b.addr),
                    format!(
                        "placement inflates the static critical path from {} to {} \
                         cycles on a {n}-core composition (≥{}% over the \
                         placement-free height)",
                        b.flat_height, b.height, cfg.bound_inflation_pct
                    ),
                )
                .with_note(
                    "every mesh hop on a critical operand edge adds a cycle per \
                     activation"
                        .to_string(),
                ),
            );
        }
    }
    cfg.apply(diags)
}
