//! Dead-dataflow detection: instructions whose results reach no
//! architectural sink.
//!
//! A hyperblock's only externally visible effects are its register
//! writes, its stores (and store-nullifications), and its exit branch.
//! Any instruction whose result cannot reach one of those sinks through
//! the dataflow target graph burns an issue-window slot, operand-network
//! bandwidth, and a scheduler wakeup for nothing
//! ([`LintCode::DeadDataflow`]). Feeding *any* operand of a live
//! instruction — including its predicate — counts as live.

use crate::graph::BlockGraph;
use crate::{Diagnostic, LintCode, Span};
use clp_isa::{Block, Opcode};

fn is_sink(block: &Block, i: usize) -> bool {
    let inst = &block.instructions()[i];
    match inst.opcode {
        Opcode::Write | Opcode::St | Opcode::Stb | Opcode::Bro => true,
        Opcode::Null => inst.lsid.is_some(),
        _ => false,
    }
}

/// Runs the dead-dataflow analysis on one block.
pub fn analyze(block: &Block, g: &BlockGraph) -> Vec<Diagnostic> {
    let insts = block.instructions();
    let addr = block.address();
    let n = insts.len();
    let mut live: Vec<bool> = (0..n).map(|i| is_sink(block, i)).collect();
    // Reverse-topological propagation: feeding a live instruction is
    // live. A store-nullifying null never delivers to targets, so its
    // targets do not keep it (or anything) alive — but it is a sink
    // itself, so only its *outgoing* edges are void; incoming predicate
    // edges keep their producers live because the null consumes them.
    for idx in (0..g.topo.len()).rev() {
        let i = g.topo[idx];
        if live[i] {
            continue;
        }
        live[i] = insts[i].targets().any(|t| live[t.inst.index()]);
    }
    let mut diags = Vec::new();
    for i in 0..n {
        if !live[i] {
            diags.push(
                Diagnostic::new(
                    LintCode::DeadDataflow,
                    Span::inst(addr, i),
                    format!(
                        "result of {} reaches no register write, store, or branch",
                        insts[i].opcode
                    ),
                )
                .with_note("the instruction occupies an issue-window slot for no effect"),
            );
        }
    }
    diags
}
