//! Predicate-path analysis: enumerate assignments of a block's predicate
//! conditions and prove that on every path exactly one exit fires, every
//! register write resolves exactly once, and every store slot is stored
//! or nullified exactly once.
//!
//! ## Model
//!
//! The analysis discovers the block's *predicate conditions*: the
//! instructions whose results decide predicate operands, found by walking
//! backward from every `Pred` slot through value-transparent operations
//! (`mov` chains, `teq`/`tne` against a known zero, and logical
//! `and`/`or`/`xor` over boolean-valued operands — exactly the guard
//! shapes if-conversion emits). Each condition becomes a free boolean
//! variable; constants discovered by [`BlockGraph`] constant propagation
//! stay constant.
//!
//! For every variable assignment the block is abstractly executed in
//! dataflow order with three-valued firing (`No`/`Yes`/`Maybe`) and a
//! small value lattice (`Const`/`Truthy`/`NullTok`/`Unknown`). Null
//! tokens read as zero, predicated-off instructions consume their slot
//! and deliver nothing, and a store-nullifying `null` never delivers to
//! dataflow targets — all matching the simulator. Error diagnostics are
//! emitted only from *definite* bounds (an upper delivery bound of zero,
//! or a lower bound of two), so a `Maybe` introduced by imprecision can
//! never produce a false error; each one carries the witness assignment.
//!
//! Distinct conditions are treated as independent. If-converted code
//! partitions its exits over exactly these condition values, so the
//! analysis is exact for compiled blocks; hand-written blocks with
//! correlated tests (e.g. `tlt x,5` and `tge x,5` as separate
//! instructions) may see paths no concrete execution takes.

use crate::graph::{foldable, BlockGraph};
use crate::{Diagnostic, LintCode, LintConfig, Span};
use clp_isa::{value, Block, Instruction, Opcode, Operand, PredSense};
use std::collections::{BTreeMap, BTreeSet};

/// Facts the LSID analysis reuses: which memory operations were observed
/// to fire together on an enumerated path.
pub struct PathFacts {
    /// Instruction-index pairs `(i, j)`, `i < j`, of memory operations
    /// (loads, stores, store-nullifying nulls) that both definitely fire
    /// on at least one enumerated path.
    pub cofire: BTreeSet<(usize, usize)>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Fire {
    No,
    Yes,
    Maybe,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Val {
    Const(u64),
    Truthy(bool),
    NullTok,
    Unknown,
}

fn truth(v: Val) -> Option<bool> {
    match v {
        Val::Const(c) => Some(c != 0),
        Val::Truthy(b) => Some(b),
        Val::NullTok => Some(false),
        Val::Unknown => None,
    }
}

fn as_const(v: Val) -> Option<u64> {
    match v {
        Val::Const(c) => Some(c),
        Val::NullTok => Some(0),
        _ => None,
    }
}

fn is_test(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Teq
            | Opcode::Tne
            | Opcode::Tlt
            | Opcode::Tle
            | Opcode::Tgt
            | Opcode::Tge
            | Opcode::Tltu
            | Opcode::Tgeu
            | Opcode::Feq
            | Opcode::Flt
            | Opcode::Fle
    )
}

/// A store-nullifying `null` resolves a store slot but never delivers to
/// its dataflow targets (the simulator drops them).
fn is_null_store(inst: &Instruction) -> bool {
    inst.opcode == Opcode::Null && inst.lsid.is_some()
}

/// Delivery bounds and merged value of one operand slot under one
/// assignment.
#[derive(Clone, Copy, Debug)]
struct SlotState {
    lo: u32,
    hi: u32,
    val: Val,
}

impl Default for SlotState {
    fn default() -> Self {
        SlotState {
            lo: 0,
            hi: 0,
            val: Val::Unknown,
        }
    }
}

/// Whether every producer feeding slot `s` is boolean-valued (tests,
/// 0/1 constants, nulls, and mov/and/or/xor closures over those), so
/// logical folding of and/or/xor over the slot is exact.
fn slot_boolean(
    i: usize,
    s: usize,
    insts: &[Instruction],
    g: &BlockGraph,
    memo: &mut [Option<bool>],
) -> bool {
    let ps = &g.producers[i][s];
    !ps.is_empty() && ps.iter().all(|&p| boolean_ish(p, insts, g, memo))
}

fn boolean_ish(i: usize, insts: &[Instruction], g: &BlockGraph, memo: &mut [Option<bool>]) -> bool {
    if let Some(v) = memo[i] {
        return v;
    }
    // Seed to break (impossible) cycles defensively.
    memo[i] = Some(false);
    let op = insts[i].opcode;
    let r = if let Some(c) = g.cval[i] {
        c <= 1
    } else if is_test(op) || op == Opcode::Null {
        true
    } else if op == Opcode::Mov {
        slot_boolean(i, 0, insts, g, memo)
    } else if matches!(op, Opcode::And | Opcode::Or | Opcode::Xor) {
        slot_boolean(i, 0, insts, g, memo) && slot_boolean(i, 1, insts, g, memo)
    } else {
        false
    };
    memo[i] = Some(r);
    r
}

/// Discovers the free predicate conditions of the block: instruction
/// indices whose boolean outcome the path enumeration ranges over.
fn discover_vars(block: &Block, g: &BlockGraph) -> Vec<usize> {
    let insts = block.instructions();
    let n = insts.len();
    let mut bmemo = vec![None; n];
    let mut needed = vec![false; n];
    let mut vars = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    for (i, inst) in insts.iter().enumerate() {
        if inst.is_predicated() {
            stack.extend(
                g.producers[i][Operand::Pred.encode() as usize]
                    .iter()
                    .copied(),
            );
        }
    }
    while let Some(i) = stack.pop() {
        if needed[i] {
            continue;
        }
        needed[i] = true;
        if g.cval[i].is_some() || is_null_store(&insts[i]) {
            continue;
        }
        let op = insts[i].opcode;
        match op {
            Opcode::Null => {}
            Opcode::Mov => stack.extend(g.producers[i][0].iter().copied()),
            Opcode::Teq | Opcode::Tne => {
                if g.op_cval(i, Operand::Right, insts) == Some(0) {
                    stack.extend(g.producers[i][0].iter().copied());
                } else if g.op_cval(i, Operand::Left, insts) == Some(0) {
                    stack.extend(g.producers[i][1].iter().copied());
                } else {
                    vars.push(i);
                }
            }
            Opcode::And | Opcode::Or | Opcode::Xor
                if slot_boolean(i, 0, insts, g, &mut bmemo)
                    && slot_boolean(i, 1, insts, g, &mut bmemo) =>
            {
                stack.extend(g.producers[i][0].iter().copied());
                stack.extend(g.producers[i][1].iter().copied());
            }
            _ => vars.push(i),
        }
    }
    vars.sort_unstable();
    vars
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct PathEval {
    fire: Vec<Fire>,
    slots: Vec<[SlotState; 3]>,
    vals: Vec<Val>,
}

fn var_val(i: usize, insts: &[Instruction], var_of: &BTreeMap<usize, usize>, mask: u64) -> Val {
    match var_of.get(&i) {
        Some(&v) => {
            let bit = (mask >> v) & 1 == 1;
            if is_test(insts[i].opcode) {
                Val::Const(u64::from(bit))
            } else {
                Val::Truthy(bit)
            }
        }
        None => Val::Unknown,
    }
}

fn slot_state(
    i: usize,
    s: usize,
    g: &BlockGraph,
    insts: &[Instruction],
    pe: &PathEval,
) -> SlotState {
    let mut st = SlotState::default();
    let mut seen: Option<Val> = None;
    let mut mixed = false;
    for &p in &g.producers[i][s] {
        if is_null_store(&insts[p]) {
            continue;
        }
        let f = pe.fire[p];
        if f == Fire::No {
            continue;
        }
        if f == Fire::Yes {
            st.lo += 1;
        }
        st.hi += 1;
        let v = pe.vals[p];
        match seen {
            None => seen = Some(v),
            Some(old) if old == v => {}
            Some(_) => mixed = true,
        }
    }
    st.val = if mixed {
        Val::Unknown
    } else {
        seen.unwrap_or(Val::Unknown)
    };
    st
}

impl PathEval {
    fn new(n: usize) -> Self {
        PathEval {
            fire: vec![Fire::No; n],
            slots: vec![[SlotState::default(); 3]; n],
            vals: vec![Val::Unknown; n],
        }
    }
}

fn eval_path(
    block: &Block,
    g: &BlockGraph,
    var_of: &BTreeMap<usize, usize>,
    mask: u64,
) -> PathEval {
    let insts = block.instructions();
    let mut pe = PathEval::new(insts.len());
    for &i in &g.topo {
        let inst = &insts[i];
        let arity = inst.data_arity();
        for s in 0..arity {
            pe.slots[i][s] = slot_state(i, s, g, insts, &pe);
        }
        if inst.is_predicated() {
            pe.slots[i][2] = slot_state(i, 2, g, insts, &pe);
        }
        let mut no = false;
        let mut maybe = false;
        for s in 0..arity {
            let st = pe.slots[i][s];
            if st.hi == 0 {
                no = true;
            } else if st.lo == 0 {
                maybe = true;
            }
        }
        if let Some(sense) = inst.pred {
            let st = pe.slots[i][2];
            if st.hi == 0 {
                no = true;
            } else {
                match truth(st.val) {
                    Some(t) => {
                        let matches = match sense {
                            PredSense::OnTrue => t,
                            PredSense::OnFalse => !t,
                        };
                        if !matches {
                            no = true;
                        } else if st.lo == 0 {
                            maybe = true;
                        }
                    }
                    None => maybe = true,
                }
            }
        }
        pe.fire[i] = if no {
            Fire::No
        } else if maybe {
            Fire::Maybe
        } else {
            Fire::Yes
        };
        pe.vals[i] = value_of(inst, i, g, &pe, var_of, mask, insts);
    }
    pe
}

fn value_of(
    inst: &Instruction,
    i: usize,
    g: &BlockGraph,
    pe: &PathEval,
    var_of: &BTreeMap<usize, usize>,
    mask: u64,
    insts: &[Instruction],
) -> Val {
    if let Some(c) = g.cval[i] {
        return Val::Const(c);
    }
    let op = inst.opcode;
    match op {
        Opcode::Movi => Val::Const(inst.imm as u64),
        Opcode::Null => Val::NullTok,
        Opcode::Mov => pe.slots[i][0].val,
        Opcode::Teq | Opcode::Tne => {
            let l = pe.slots[i][0].val;
            let r = pe.slots[i][1].val;
            if let (Some(a), Some(b)) = (as_const(l), as_const(r)) {
                return Val::Const(value::eval(op, inst.imm, a, b));
            }
            // `t?q x, zero` is if-conversion's truth normalization: fold
            // it logically even when x is only known truthy.
            let t = if as_const(r) == Some(0) {
                truth(l)
            } else if as_const(l) == Some(0) {
                truth(r)
            } else {
                None
            };
            match t {
                Some(t) => Val::Const(u64::from(if op == Opcode::Tne { t } else { !t })),
                None => var_val(i, insts, var_of, mask),
            }
        }
        _ if foldable(op) => {
            let fold = match op.arity() {
                1 => as_const(pe.slots[i][0].val).map(|a| value::eval(op, inst.imm, a, 0)),
                2 => match (as_const(pe.slots[i][0].val), as_const(pe.slots[i][1].val)) {
                    (Some(a), Some(b)) => Some(value::eval(op, inst.imm, a, b)),
                    _ => None,
                },
                _ => None,
            };
            match fold {
                Some(c) => Val::Const(c),
                None => var_val(i, insts, var_of, mask),
            }
        }
        _ => var_val(i, insts, var_of, mask),
    }
}

/// Per-path firing vectors for the clp-bound analyzer.
///
/// When the predicate space is exhaustively enumerable there is one
/// vector per assignment, and the real execution path always matches
/// one of them. Otherwise there is a single assignment-free vector
/// (every discovered condition left `Unknown`), whose `Fire::Yes`
/// entries fire under *every* assignment — an under-approximation of
/// each real path's firing set, which is the sound direction for a
/// lower bound.
pub(crate) struct FiringPaths {
    /// Whether `paths` covers every predicate assignment.
    pub(crate) exhaustive: bool,
    /// One `Fire` entry per instruction, per enumerated path.
    pub(crate) paths: Vec<Vec<Fire>>,
}

/// Enumerates firing vectors for `block` (see [`FiringPaths`]).
pub(crate) fn firing_paths(block: &Block, g: &BlockGraph, cfg: &LintConfig) -> FiringPaths {
    let mut all_vars = discover_vars(block, g);
    let spill = all_vars.len().saturating_sub(64);
    all_vars.truncate(64);
    let vars = all_vars;
    if spill > 0 || vars.len() as u32 > cfg.max_pred_vars {
        let pe = eval_path(block, g, &BTreeMap::new(), 0);
        return FiringPaths {
            exhaustive: false,
            paths: vec![pe.fire],
        };
    }
    let var_of: BTreeMap<usize, usize> = vars.iter().enumerate().map(|(v, &i)| (i, v)).collect();
    let paths = (0..(1u64 << vars.len()))
        .map(|mask| eval_path(block, g, &var_of, mask).fire)
        .collect();
    FiringPaths {
        exhaustive: true,
        paths,
    }
}

fn describe_mask(vars: &[usize], mask: u64, insts: &[Instruction]) -> String {
    if vars.is_empty() {
        return "the unconditional path".to_string();
    }
    let parts: Vec<String> = vars
        .iter()
        .enumerate()
        .map(|(v, &i)| format!("i{}({})={}", i, insts[i].opcode, (mask >> v) & 1))
        .collect();
    format!("predicate assignment {}", parts.join(", "))
}

/// Runs the predicate-path analysis on one block.
pub fn analyze(block: &Block, g: &BlockGraph, cfg: &LintConfig) -> (Vec<Diagnostic>, PathFacts) {
    let insts = block.instructions();
    let n = insts.len();
    let addr = block.address();
    let mut diags = Vec::new();

    let mut all_vars = discover_vars(block, g);
    // Masks are 64-bit; conditions beyond 64 stay `Unknown`, which only
    // weakens the analysis, never falsifies it.
    let spill = all_vars.len().saturating_sub(64);
    all_vars.truncate(64);
    let vars = all_vars;
    let var_of: BTreeMap<usize, usize> = vars.iter().enumerate().map(|(v, &i)| (i, v)).collect();

    let exhaustive = spill == 0 && vars.len() as u32 <= cfg.max_pred_vars;
    let masks: Vec<u64> = if exhaustive {
        (0..(1u64 << vars.len())).collect()
    } else {
        let mask_bits = if vars.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << vars.len()) - 1
        };
        let mut state = 0x9E37_79B9_7F4A_7C15 ^ addr;
        let mut set: BTreeSet<u64> = [0, mask_bits].into();
        while (set.len() as u32) < cfg.pred_samples.max(2) {
            set.insert(splitmix64(&mut state) & mask_bits);
        }
        set.into_iter().collect()
    };
    if !exhaustive {
        diags.push(
            Diagnostic::new(
                LintCode::PredicateSpaceTruncated,
                Span::block(addr),
                format!(
                    "{} predicate conditions exceed the enumeration limit of {}; \
                     sampled {} of {} assignments",
                    vars.len() + spill,
                    cfg.max_pred_vars,
                    masks.len(),
                    if vars.len() + spill >= 64 {
                        "2^64+".to_string()
                    } else {
                        format!("{}", 1u128 << (vars.len() + spill))
                    }
                ),
            )
            .with_note("exhaustive-only checks (dead-predicate-path) are skipped".to_string()),
        );
    }

    // Store-slot resolvers per LSID: stores and store-nullifying nulls.
    let mut resolvers: BTreeMap<u8, Vec<usize>> = BTreeMap::new();
    let mut mem_ops: Vec<usize> = Vec::new();
    for (i, inst) in insts.iter().enumerate() {
        if inst.opcode.is_store() || is_null_store(inst) {
            if let Some(l) = inst.lsid {
                resolvers.entry(l.index() as u8).or_default().push(i);
            }
        }
        if inst.opcode.is_load() || inst.opcode.is_store() || is_null_store(inst) {
            mem_ops.push(i);
        }
    }

    let mut reported: BTreeSet<(LintCode, usize)> = BTreeSet::new();
    let mut ever_fired = vec![false; n];
    let mut cofire: BTreeSet<(usize, usize)> = BTreeSet::new();

    for &mask in &masks {
        let pe = eval_path(block, g, &var_of, mask);
        let witness = || describe_mask(&vars, mask, insts);

        // Exactly one exit must fire.
        let mut exit_lo: Vec<usize> = Vec::new();
        let mut exit_hi = 0u32;
        for (i, inst) in insts.iter().enumerate() {
            if inst.opcode == Opcode::Bro {
                match pe.fire[i] {
                    Fire::Yes => {
                        exit_lo.push(i);
                        exit_hi += 1;
                    }
                    Fire::Maybe => exit_hi += 1,
                    Fire::No => {}
                }
            }
        }
        if exit_hi == 0 && reported.insert((LintCode::NoFiringExit, usize::MAX)) {
            diags.push(
                Diagnostic::new(
                    LintCode::NoFiringExit,
                    Span::block(addr),
                    "no exit branch fires on this path; the block never commits",
                )
                .with_note(format!("on {}", witness())),
            );
        }
        if exit_lo.len() >= 2 && reported.insert((LintCode::MultipleFiringExits, usize::MAX)) {
            let list: Vec<String> = exit_lo.iter().map(|i| format!("i{i}")).collect();
            diags.push(
                Diagnostic::new(
                    LintCode::MultipleFiringExits,
                    Span::inst(addr, exit_lo[1]),
                    format!("{} exit branches fire on the same path", exit_lo.len()),
                )
                .with_note(format!("firing exits: {}", list.join(", ")))
                .with_note(format!("on {}", witness())),
            );
        }

        // Every register write resolves exactly once.
        for &(wi, reg) in block.writes() {
            if pe.fire[wi] == Fire::No && reported.insert((LintCode::StarvedWrite, wi)) {
                diags.push(
                    Diagnostic::new(
                        LintCode::StarvedWrite,
                        Span::inst(addr, wi),
                        format!(
                            "write to {reg} receives no value or null on this path; \
                             the block's register outputs never resolve"
                        ),
                    )
                    .with_note(format!("on {}", witness())),
                );
            }
            if pe.slots[wi][0].lo >= 2 && reported.insert((LintCode::DoubleWrite, wi)) {
                diags.push(
                    Diagnostic::new(
                        LintCode::DoubleWrite,
                        Span::inst(addr, wi),
                        format!(
                            "write to {reg} is delivered {} values on the same path",
                            pe.slots[wi][0].lo
                        ),
                    )
                    .with_note(format!("on {}", witness())),
                );
            }
        }

        // Every store slot resolves exactly once.
        for (&lsid, rs) in &resolvers {
            let lo: Vec<usize> = rs
                .iter()
                .copied()
                .filter(|&i| pe.fire[i] == Fire::Yes)
                .collect();
            let hi = rs.iter().filter(|&&i| pe.fire[i] != Fire::No).count();
            if hi == 0 && reported.insert((LintCode::UnresolvedStore, lsid as usize)) {
                diags.push(
                    Diagnostic::new(
                        LintCode::UnresolvedStore,
                        Span::inst(addr, rs[0]),
                        format!(
                            "store slot ls{lsid} is neither stored nor nullified on this path; \
                             the block's store outputs never resolve"
                        ),
                    )
                    .with_note(format!("on {}", witness())),
                );
            }
            if lo.len() >= 2 && reported.insert((LintCode::DoubleStore, lsid as usize)) {
                let list: Vec<String> = lo.iter().map(|i| format!("i{i}")).collect();
                diags.push(
                    Diagnostic::new(
                        LintCode::DoubleStore,
                        Span::inst(addr, lo[1]),
                        format!(
                            "store slot ls{lsid} resolves {} times on the same path",
                            lo.len()
                        ),
                    )
                    .with_note(format!("resolved by {}", list.join(", ")))
                    .with_note(format!("on {}", witness())),
                );
            }
        }

        // Non-write operand slots delivered twice.
        for (i, inst) in insts.iter().enumerate() {
            let is_write = inst.opcode == Opcode::Write;
            for s in 0..3 {
                if is_write && s == 0 {
                    continue;
                }
                if pe.slots[i][s].lo >= 2 && reported.insert((LintCode::OperandRace, i * 4 + s)) {
                    let slot = ["left", "right", "predicate"][s];
                    diags.push(
                        Diagnostic::new(
                            LintCode::OperandRace,
                            Span::inst(addr, i),
                            format!(
                                "{slot} operand receives {} tokens on the same path",
                                pe.slots[i][s].lo
                            ),
                        )
                        .with_note(format!("on {}", witness())),
                    );
                }
            }
        }

        for (i, fired) in ever_fired.iter_mut().enumerate() {
            if pe.fire[i] != Fire::No {
                *fired = true;
            }
        }
        let fired: Vec<usize> = mem_ops
            .iter()
            .copied()
            .filter(|&i| pe.fire[i] == Fire::Yes)
            .collect();
        for (a, &i) in fired.iter().enumerate() {
            for &j in &fired[a + 1..] {
                cofire.insert((i, j));
            }
        }
    }

    if exhaustive {
        for (i, &fired) in ever_fired.iter().enumerate() {
            if !fired {
                diags.push(Diagnostic::new(
                    LintCode::DeadPredicatePath,
                    Span::inst(addr, i),
                    "instruction fires on no predicate assignment (contradictory predicates \
                     or a dead producer)",
                ));
            }
        }
    }

    for (i, inst) in insts.iter().enumerate() {
        if is_null_store(inst) && inst.target_count() > 0 {
            diags.push(Diagnostic::new(
                LintCode::NullStoreFanout,
                Span::inst(addr, i),
                format!(
                    "null resolves store slot ls{} and also names dataflow targets, \
                     which are never delivered",
                    inst.lsid.map(|l| l.index()).unwrap_or_default()
                ),
            ));
        }
    }

    (diags, PathFacts { cofire })
}
