//! Shared per-block dataflow facts: producer lists per operand slot,
//! topological order, constant propagation, and descendant bitsets.
//!
//! Blocks are validated ([`Block::from_instructions`] rejects cycles and
//! dangling targets), so the topological sort always covers every
//! instruction and target indices are always in range.

use clp_isa::{value, Block, Instruction, Opcode, Operand};

/// Dataflow facts about one block, computed once and shared by the
/// analyses.
pub struct BlockGraph {
    /// `producers[i][slot]`: indices of instructions targeting operand
    /// `slot` (0 = left, 1 = right, 2 = pred) of instruction `i`.
    pub producers: Vec<[Vec<usize>; 3]>,
    /// Instruction indices in topological (producer-before-consumer)
    /// order.
    pub topo: Vec<usize>,
    /// Assignment-independent constant value of each instruction's
    /// result, where a single-producer chain of foldable operations
    /// makes it knowable.
    pub cval: Vec<Option<u64>>,
    /// `desc[i]`: bitset of instructions transitively reachable from `i`
    /// along dataflow targets (not including `i` itself).
    pub desc: Vec<u128>,
}

/// Whether `value::eval` models this opcode exactly (pure value
/// computation, no memory or side effects).
pub fn foldable(op: Opcode) -> bool {
    op.produces_value() && !op.is_load() && !matches!(op, Opcode::Read | Opcode::Null | Opcode::Bro)
}

impl BlockGraph {
    /// Computes the graph facts for a validated block.
    pub fn new(block: &Block) -> Self {
        let insts = block.instructions();
        let n = insts.len();
        let mut producers: Vec<[Vec<usize>; 3]> = vec![Default::default(); n];
        let mut indegree = vec![0usize; n];
        for (i, inst) in insts.iter().enumerate() {
            for t in inst.targets() {
                producers[t.inst.index()][t.operand.encode() as usize].push(i);
                indegree[t.inst.index()] += 1;
            }
        }
        // Kahn's algorithm; the block is acyclic by construction so every
        // instruction is emitted.
        let mut topo = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        while let Some(i) = ready.pop() {
            topo.push(i);
            for t in insts[i].targets() {
                let j = t.inst.index();
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.push(j);
                }
            }
        }
        debug_assert_eq!(topo.len(), n);

        let mut g = BlockGraph {
            producers,
            topo,
            cval: vec![None; n],
            desc: vec![0u128; n],
        };
        for idx in 0..g.topo.len() {
            let i = g.topo[idx];
            g.cval[i] = g.fold(&insts[i], i);
        }
        for idx in (0..g.topo.len()).rev() {
            let i = g.topo[idx];
            let mut d = 0u128;
            for t in insts[i].targets() {
                let j = t.inst.index();
                d |= (1u128 << j) | g.desc[j];
            }
            g.desc[i] = d;
        }
        g
    }

    /// The constant delivered to operand `slot` of instruction `i`, if
    /// it has exactly one producer with a known constant result (or a
    /// `null` producer, which reads as zero).
    pub fn op_cval(&self, i: usize, slot: Operand, insts: &[Instruction]) -> Option<u64> {
        let ps = &self.producers[i][slot.encode() as usize];
        match ps[..] {
            [p] if insts[p].opcode == Opcode::Null => Some(0),
            [p] => self.cval[p],
            _ => None,
        }
    }

    fn fold(&self, inst: &Instruction, i: usize) -> Option<u64> {
        let op = inst.opcode;
        if op == Opcode::Movi {
            return Some(inst.imm as u64);
        }
        if !foldable(op) {
            return None;
        }
        // `self.producers` is fully built before `fold` runs, and `cval`
        // of every producer is already computed (topological order).
        let a;
        let b;
        match op.arity() {
            0 => return None,
            1 => {
                a = self.op_cval_raw(i, 0)?;
                b = 0;
            }
            _ => {
                a = self.op_cval_raw(i, 0)?;
                b = self.op_cval_raw(i, 1)?;
            }
        }
        Some(value::eval(op, inst.imm, a, b))
    }

    fn op_cval_raw(&self, i: usize, slot: usize) -> Option<u64> {
        match self.producers[i][slot][..] {
            [p] => self.cval[p],
            _ => None,
        }
    }
}
