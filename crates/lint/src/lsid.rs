//! LSID-order analysis: load/store IDs must be consistent with dataflow
//! order, no two memory operations may race on one LSID, and store→load
//! forwarding must be acyclic.
//!
//! LSIDs encode *program order* within a block: the LSQ uses them to
//! disambiguate, forward, and detect violations. Three things can go
//! wrong statically:
//!
//! - two memory operations share an LSID and can fire on the same path
//!   ([`LintCode::DuplicateLsid`]) — the LSQ cannot tell them apart
//!   (same-LSID *store* races are already
//!   [`LintCode::DoubleStore`], so this rule fires only when a load is
//!   involved);
//! - a memory op feeds a memory op with a *lower* LSID
//!   ([`LintCode::LsidOrderInversion`]) — the value flows forward while
//!   memory order points backward, which at best costs a violation
//!   flush and at worst is a mis-numbered port;
//! - a store transitively depends on an overlapping later-LSID load
//!   ([`LintCode::ForwardingCycle`]) — the load must read the store's
//!   value (forwarding or violation replay), but the store cannot
//!   execute until the load completes: a deadlock under conservative
//!   ordering.

use crate::graph::BlockGraph;
use crate::predicate::PathFacts;
use crate::{Diagnostic, LintCode, LintConfig, Span};
use clp_isa::{Block, Instruction, Opcode, Operand};

/// A memory operation participating in LSID order.
struct MemOp {
    inst: usize,
    lsid: usize,
    is_load: bool,
    is_null: bool,
    /// Statically known byte range `[addr, addr+width)`, when the
    /// address operand is a known constant.
    range: Option<(u64, u64)>,
}

fn access_width(op: Opcode) -> u64 {
    match op {
        Opcode::Ldb | Opcode::Stb => 1,
        _ => 8,
    }
}

fn mem_ops(block: &Block, g: &BlockGraph) -> Vec<MemOp> {
    let insts = block.instructions();
    let mut out = Vec::new();
    for (i, inst) in insts.iter().enumerate() {
        let is_mem = inst.opcode.is_load() || inst.opcode.is_store();
        let is_null = inst.opcode == Opcode::Null && inst.lsid.is_some();
        if !is_mem && !is_null {
            continue;
        }
        let Some(lsid) = inst.lsid else { continue };
        let range = if is_mem {
            g.op_cval(i, Operand::Left, insts).map(|base| {
                let addr = base.wrapping_add(inst.imm as u64);
                (addr, addr.wrapping_add(access_width(inst.opcode)))
            })
        } else {
            None
        };
        out.push(MemOp {
            inst: i,
            lsid: lsid.index(),
            is_load: inst.opcode.is_load(),
            is_null,
            range,
        });
    }
    out
}

fn overlaps(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

fn cofire(facts: &PathFacts, a: usize, b: usize) -> bool {
    facts.cofire.contains(&(a.min(b), a.max(b)))
}

fn mem_desc(inst: &Instruction) -> String {
    format!(
        "{} ls{}",
        inst.opcode,
        inst.lsid.map(|l| l.index()).unwrap_or_default()
    )
}

/// Runs the LSID analysis on one block.
pub fn analyze(
    block: &Block,
    g: &BlockGraph,
    facts: &PathFacts,
    cfg: &LintConfig,
) -> Vec<Diagnostic> {
    let insts = block.instructions();
    let addr = block.address();
    let ops = mem_ops(block, g);
    let mut diags = Vec::new();

    // Overflow flushability: the NACK protocol's forward-progress
    // argument squashes younger blocks until the *oldest* block's
    // requests fit the bank. Under a 1-core composition every memory
    // slot of a block maps to the single bank, so a block with more
    // slots than one bank holds could never fit even alone.
    let mem_slots: std::collections::BTreeSet<usize> =
        ops.iter().filter(|o| !o.is_null).map(|o| o.lsid).collect();
    if mem_slots.len() > cfg.lsq_entries {
        diags.push(
            Diagnostic::new(
                LintCode::LsqUnflushableBlock,
                Span::block(addr),
                format!(
                    "block uses {} memory slots but one LSQ bank holds {}: \
                     un-flushable under a 1-core composition",
                    mem_slots.len(),
                    cfg.lsq_entries
                ),
            )
            .with_note(
                "the age-based overflow eviction frees younger blocks' entries; \
                 the oldest block alone must fit one bank",
            ),
        );
    }

    for (x, a) in ops.iter().enumerate() {
        for b in &ops[x + 1..] {
            // Duplicate LSID with a load involved, on a common path.
            if a.lsid == b.lsid && (a.is_load || b.is_load) && cofire(facts, a.inst, b.inst) {
                diags.push(
                    Diagnostic::new(
                        LintCode::DuplicateLsid,
                        Span::inst(addr, b.inst),
                        format!(
                            "{} and {} (i{}) share ls{} and can fire on the same path",
                            mem_desc(&insts[b.inst]),
                            mem_desc(&insts[a.inst]),
                            a.inst,
                            a.lsid
                        ),
                    )
                    .with_note("the LSQ disambiguates by LSID; sharing one is ambiguous"),
                );
            }
        }
    }

    for a in &ops {
        if a.is_null {
            continue;
        }
        for b in &ops {
            if b.is_null || a.inst == b.inst {
                continue;
            }
            // `a` transitively feeds `b` in dataflow...
            if g.desc[a.inst] & (1u128 << b.inst) == 0 {
                continue;
            }
            // ...but `b` is older in memory order.
            if a.lsid > b.lsid {
                diags.push(
                    Diagnostic::new(
                        LintCode::LsidOrderInversion,
                        Span::inst(addr, b.inst),
                        format!(
                            "{} (i{}) feeds {} but has the higher LSID: dataflow and \
                             memory order disagree",
                            mem_desc(&insts[a.inst]),
                            a.inst,
                            mem_desc(&insts[b.inst]),
                        ),
                    )
                    .with_note("LSIDs must be assigned in program order"),
                );
            }
            // Store→load forwarding cycle: a load `a` feeds a store `b`
            // with a lower LSID at an overlapping address, and both fire
            // on one path — the load must observe the store (forwarding)
            // but the store waits on the load (dataflow).
            if a.is_load && !b.is_load && b.lsid < a.lsid && cofire(facts, a.inst, b.inst) {
                if let (Some(ra), Some(rb)) = (a.range, b.range) {
                    if overlaps(ra, rb) {
                        diags.push(
                            Diagnostic::new(
                                LintCode::ForwardingCycle,
                                Span::inst(addr, b.inst),
                                format!(
                                    "{} (i{}) depends on {} (i{}) which must read its \
                                     value: store→load forwarding cycle",
                                    mem_desc(&insts[b.inst]),
                                    b.inst,
                                    mem_desc(&insts[a.inst]),
                                    a.inst,
                                ),
                            )
                            .with_note(format!(
                                "both access bytes [{:#x}, {:#x})",
                                ra.0.max(rb.0),
                                ra.1.min(rb.1)
                            )),
                        );
                    }
                }
            }
        }
    }

    diags
}
