//! Semantic static analysis of EDGE hyperblocks and whole programs.
//!
//! [`Block::new`](clp_isa::Block) enforces *structural* invariants —
//! operand counts, dangling targets, acyclic dataflow. This crate checks
//! the *semantic* contract the TRIPS/TFlex microarchitecture relies on
//! and that the paper's Scale toolchain guaranteed at compile time:
//!
//! 1. **Predicate paths** ([`LintCode::NoFiringExit`] family): every
//!    assignment of the block's predicate conditions fires exactly one
//!    exit, resolves every register write and store slot exactly once,
//!    and contradictory predicates are flagged as dead code.
//! 2. **LSID order** ([`LintCode::DuplicateLsid`] family): load/store IDs
//!    are consistent with dataflow order and store→load forwarding cannot
//!    deadlock.
//! 3. **Dead dataflow** ([`LintCode::DeadDataflow`]): results that reach
//!    no write/store/branch sink waste issue-window slots.
//! 4. **Placement cost** ([`LintCode::DeepFanoutTree`],
//!    [`LintCode::LongOperandRoute`]): fanout-tree depth and operand
//!    routes whose mesh hop distance exceeds a threshold.
//! 5. **Whole-program checks** ([`LintCode::DanglingBranchTarget`]
//!    family): branch targets resolve, registers are defined before use
//!    across the block graph, and every block is reachable.
//!
//! Entry points: [`lint_block`] for one hyperblock, [`lint_program`] for
//! an [`EdgeProgram`]. Severity of each code can be raised, lowered, or
//! silenced through [`LintConfig`]; [`render`] produces rustc-style text
//! and [`LintReport::to_json`] machine-readable output.
//!
//! The predicate analysis is *sound for compiled code*: an
//! Error-severity diagnostic is only emitted for a concrete predicate
//! assignment on which the defect provably occurs. Distinct predicate
//! conditions are treated as independent, which matches the exit
//! partition produced by if-conversion; hand-written blocks with
//! correlated tests can in principle produce a pessimistic path, which
//! is why exhaustive-only checks are downgraded and witnesses always
//! name the offending assignment.

#![warn(missing_docs)]

use clp_isa::{Block, BlockAddr, EdgeProgram};
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;

mod bound;
mod dataflow;
mod graph;
mod lsid;
mod placement;
mod predicate;
mod program;
mod render;

pub use bound::{
    bound_block, bound_curve_samples, bound_program, lint_bounds, BlockBound, BoundMachine,
    ProgramBound, Resource,
};
pub use render::{render, render_in, render_report};

/// How severe a diagnostic is. `Error` means the block can deadlock,
/// commit twice, or otherwise break block-atomic execution; `Warn` means
/// the code is almost certainly wrong or wasteful but will still run;
/// `Info` is advisory (performance, analysis coverage).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Suspicious but executable.
    Warn,
    /// Breaks the execution contract.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! lint_codes {
    ($( $(#[$meta:meta])* $variant:ident = ($code:literal, $slug:literal, $sev:ident, $what:literal); )+) => {
        /// Stable identifier of one lint rule.
        ///
        /// The numeric code groups rules by analysis: `L0xx` predicate
        /// paths, `L1xx` LSID order, `L2xx` dead dataflow, `L3xx`
        /// placement cost, `L4xx` whole-program, `L5xx` static cycle
        /// bounds.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum LintCode {
            $( $(#[$meta])* $variant, )+
        }

        impl LintCode {
            /// Every defined lint code, in numeric order.
            pub const ALL: &'static [LintCode] = &[ $(LintCode::$variant),+ ];

            /// The stable `Lnnn` code string.
            #[must_use]
            pub fn code(self) -> &'static str {
                match self { $(LintCode::$variant => $code),+ }
            }

            /// The human-readable kebab-case rule name.
            #[must_use]
            pub fn slug(self) -> &'static str {
                match self { $(LintCode::$variant => $slug),+ }
            }

            /// The severity this rule carries unless overridden by
            /// [`LintConfig`].
            #[must_use]
            pub fn default_severity(self) -> Severity {
                match self { $(LintCode::$variant => Severity::$sev),+ }
            }

            /// One-line description of what the rule catches.
            #[must_use]
            pub fn describes(self) -> &'static str {
                match self { $(LintCode::$variant => $what),+ }
            }

            /// Parses either a `Lnnn` code or a rule slug.
            #[must_use]
            pub fn from_code(s: &str) -> Option<Self> {
                match s {
                    $( $code | $slug => Some(LintCode::$variant), )+
                    _ => None,
                }
            }
        }
    };
}

lint_codes! {
    /// A predicate assignment on which no exit branch can fire: the
    /// block never produces its branch output and the machine deadlocks.
    NoFiringExit = ("L001", "no-firing-exit", Error,
        "a predicate path on which no exit branch fires (block deadlock)");
    /// A predicate assignment on which two or more exit branches fire.
    MultipleFiringExits = ("L002", "multiple-firing-exits", Error,
        "a predicate path on which more than one exit branch fires");
    /// A register write whose operand slot receives two tokens on one
    /// path.
    DoubleWrite = ("L003", "double-write", Error,
        "a register write delivered more than one value on one path");
    /// A register write that never receives its operand on some path, so
    /// the block's register outputs never resolve.
    StarvedWrite = ("L004", "starved-write", Error,
        "a register write that receives no value or null on some path (block deadlock)");
    /// A store LSID left unresolved (no store fired, no null) on some
    /// path.
    UnresolvedStore = ("L005", "unresolved-store", Error,
        "a store slot that is neither stored to nor nullified on some path (block deadlock)");
    /// A store LSID resolved twice on one path.
    DoubleStore = ("L006", "double-store", Error,
        "a store slot resolved more than once on one path");
    /// An instruction that cannot fire on any predicate assignment.
    DeadPredicatePath = ("L007", "dead-predicate-path", Warn,
        "an instruction whose predicates are contradictory: it fires on no path");
    /// A non-write operand slot receiving two tokens on one path.
    OperandRace = ("L008", "operand-race", Warn,
        "an operand slot delivered more than one token on one path");
    /// The predicate space was sampled, not enumerated.
    PredicateSpaceTruncated = ("L009", "predicate-space-truncated", Info,
        "too many predicate conditions to enumerate; paths were sampled");
    /// A store-nullifying `null` with dataflow targets, which the
    /// microarchitecture never delivers.
    NullStoreFanout = ("L010", "null-store-fanout", Warn,
        "a store-nullifying null has dataflow targets, which are never delivered");
    /// Two memory operations sharing an LSID that can fire together.
    DuplicateLsid = ("L101", "duplicate-lsid", Error,
        "a load and another memory op share an LSID and can fire on the same path");
    /// Dataflow order contradicting LSID (program) order.
    LsidOrderInversion = ("L102", "lsid-order-inversion", Warn,
        "a memory op feeds an operation with a lower LSID: dataflow and memory order disagree");
    /// A store that transitively depends on a load it must forward to.
    ForwardingCycle = ("L103", "forwarding-cycle", Error,
        "a store depends on an overlapping later-LSID load that must read its value");
    /// A block whose memory slots exceed one LSQ bank's capacity: under
    /// the minimum (1-core) composition every slot maps to the same
    /// bank, so the age-based overflow eviction could never make the
    /// oldest block fit — it would be un-flushable.
    LsqUnflushableBlock = ("L104", "lsq-unflushable-block", Info,
        "a block with more memory slots than one LSQ bank: un-flushable under 1-core composition");
    /// A result that reaches no write/store/branch sink.
    DeadDataflow = ("L201", "dead-dataflow", Warn,
        "an instruction whose result reaches no register write, store, or branch");
    /// A mov fanout tree deeper than the configured threshold.
    DeepFanoutTree = ("L301", "deep-fanout-tree", Info,
        "a mov fanout tree deeper than the configured limit");
    /// An operand route longer than the configured mesh hop threshold.
    LongOperandRoute = ("L302", "long-operand-route", Info,
        "an operand route whose mesh hop distance exceeds the configured limit");
    /// A branch naming a block that does not exist in the program.
    DanglingBranchTarget = ("L401", "dangling-branch-target", Error,
        "a branch whose static target block does not exist in the program");
    /// A block unreachable from the entry or any materialized address.
    UnreachableBlock = ("L402", "unreachable-block", Warn,
        "a block unreachable from the entry block or any address-taken block");
    /// A register read not dominated by a write on every path.
    MaybeUninitRead = ("L403", "maybe-uninit-read", Warn,
        "a register read not preceded by a write on every path from the entry");
    /// No reachable halt exit: the program cannot terminate.
    NoHaltExit = ("L404", "no-halt-exit", Warn,
        "no halt exit is reachable from the entry block");
    /// A block whose static bound is set by per-core issue bandwidth
    /// rather than its dataflow height.
    IssueBoundBlock = ("L501", "issue-bound-block", Info,
        "a block whose static cycle bound is set by per-core issue bandwidth, not dataflow height");
    /// Placement stretching the static critical path past the
    /// configured threshold over the placement-free height.
    PlacementInflatedPath = ("L502", "placement-inflated-path", Info,
        "mesh routing inflates the static critical path beyond the configured margin");
    /// A block whose static bound is set by one operand-network link.
    NocBoundBlock = ("L503", "noc-bound-block", Info,
        "a block whose static cycle bound is set by a single operand-network link");
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.code(), self.slug())
    }
}

impl Serialize for LintCode {
    fn to_value(&self) -> Value {
        Value::String(self.code().to_string())
    }
}

/// Where a diagnostic points: optionally a block, optionally an
/// instruction index within it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Span {
    /// The block the diagnostic is about, if any.
    pub block: Option<BlockAddr>,
    /// The instruction index within the block, if any.
    pub inst: Option<usize>,
}

impl Span {
    /// A span naming a whole block.
    #[must_use]
    pub fn block(addr: BlockAddr) -> Self {
        Span {
            block: Some(addr),
            inst: None,
        }
    }

    /// A span naming one instruction of a block.
    #[must_use]
    pub fn inst(addr: BlockAddr, inst: usize) -> Self {
        Span {
            block: Some(addr),
            inst: Some(inst),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.block, self.inst) {
            (Some(b), Some(i)) => write!(f, "block @{b:#x}, i{i}"),
            (Some(b), None) => write!(f, "block @{b:#x}"),
            (None, Some(i)) => write!(f, "i{i}"),
            (None, None) => f.write_str("<program>"),
        }
    }
}

/// One finding of the linter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub code: LintCode,
    /// Effective severity after [`LintConfig`] overrides.
    pub severity: Severity,
    /// What the diagnostic points at.
    pub span: Span,
    /// The primary message.
    pub message: String,
    /// Additional notes (witness predicate assignments, related
    /// instructions).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new diagnostic at the rule's default severity.
    #[must_use]
    pub fn new(code: LintCode, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attaches a note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

impl Serialize for Diagnostic {
    fn to_value(&self) -> Value {
        let mut obj = vec![
            ("code".to_string(), Value::String(self.code.code().into())),
            ("name".to_string(), Value::String(self.code.slug().into())),
            ("severity".to_string(), self.severity.to_value()),
        ];
        obj.push((
            "block".to_string(),
            match self.span.block {
                Some(b) => Value::UInt(b),
                None => Value::Null,
            },
        ));
        obj.push((
            "inst".to_string(),
            match self.span.inst {
                Some(i) => Value::UInt(i as u64),
                None => Value::Null,
            },
        ));
        obj.push(("message".to_string(), Value::String(self.message.clone())));
        obj.push((
            "notes".to_string(),
            Value::Array(
                self.notes
                    .iter()
                    .map(|n| Value::String(n.clone()))
                    .collect(),
            ),
        ));
        Value::Object(obj)
    }
}

/// Per-run linter configuration: severity overrides and analysis
/// thresholds.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Severity overrides per code: `Some(sev)` re-levels the rule,
    /// `None` silences it entirely.
    pub levels: BTreeMap<LintCode, Option<Severity>>,
    /// Maximum number of free predicate conditions enumerated
    /// exhaustively (`2^n` paths); blocks with more are sampled.
    pub max_pred_vars: u32,
    /// Number of sampled predicate assignments when enumeration is
    /// infeasible.
    pub pred_samples: u32,
    /// Composition size assumed by the placement lints.
    pub placement_cores: usize,
    /// Mesh hop distance above which an operand route is flagged.
    pub max_route_hops: u32,
    /// Mov-tree depth above which a fanout tree is flagged.
    pub max_fanout_depth: u32,
    /// Per-bank LSQ capacity assumed by the overflow-flushability lint:
    /// a block using more memory slots than this cannot be the sole
    /// resident of a 1-core composition's only bank. The default matches
    /// the simulator's 44-entry banks, which exceed the 32-LSID
    /// architectural budget — so only a lowered threshold (modeling a
    /// smaller LSQ) ever fires on a valid block.
    pub lsq_entries: usize,
    /// Percentage by which placement may inflate a block's static
    /// critical path over its placement-free height before
    /// [`LintCode::PlacementInflatedPath`] fires.
    pub bound_inflation_pct: u32,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            levels: BTreeMap::new(),
            max_pred_vars: 12,
            pred_samples: 2048,
            placement_cores: 32,
            max_route_hops: 6,
            max_fanout_depth: 4,
            lsq_entries: 44,
            bound_inflation_pct: 50,
        }
    }
}

impl LintConfig {
    /// Silences a rule.
    pub fn allow(&mut self, code: LintCode) -> &mut Self {
        self.levels.insert(code, None);
        self
    }

    /// Forces a rule to a severity.
    pub fn set_level(&mut self, code: LintCode, severity: Severity) -> &mut Self {
        self.levels.insert(code, Some(severity));
        self
    }

    /// The effective severity of a rule, `None` if silenced.
    #[must_use]
    pub fn severity_of(&self, code: LintCode) -> Option<Severity> {
        match self.levels.get(&code) {
            Some(over) => *over,
            None => Some(code.default_severity()),
        }
    }

    fn apply(&self, mut diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags.retain_mut(|d| match self.severity_of(d.code) {
            Some(sev) => {
                d.severity = sev;
                true
            }
            None => false,
        });
        diags.sort_by(|a, b| (a.span, a.code, &a.message).cmp(&(b.span, b.code, &b.message)));
        diags
    }
}

/// The diagnostics produced by one lint run.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct LintReport {
    /// All diagnostics, ordered by span then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of diagnostics at the given severity.
    #[must_use]
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Number of error-severity diagnostics.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Whether any error-severity diagnostic was produced.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the run produced no diagnostics at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Serializes the report as machine-parseable JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

impl Serialize for LintReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("errors".to_string(), Value::UInt(self.error_count() as u64)),
            (
                "warnings".to_string(),
                Value::UInt(self.count(Severity::Warn) as u64),
            ),
            (
                "infos".to_string(),
                Value::UInt(self.count(Severity::Info) as u64),
            ),
            (
                "diagnostics".to_string(),
                Value::Array(self.diagnostics.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

fn collect_block(block: &Block, cfg: &LintConfig) -> Vec<Diagnostic> {
    let g = graph::BlockGraph::new(block);
    let (mut diags, facts) = predicate::analyze(block, &g, cfg);
    diags.extend(lsid::analyze(block, &g, &facts, cfg));
    diags.extend(dataflow::analyze(block, &g));
    diags.extend(placement::analyze(block, &g, cfg));
    diags
}

/// Lints a single hyperblock with the given configuration.
///
/// Runs the predicate-path, LSID, dead-dataflow, and placement analyses;
/// whole-program rules require [`lint_program`].
#[must_use]
pub fn lint_block(block: &Block, cfg: &LintConfig) -> Vec<Diagnostic> {
    cfg.apply(collect_block(block, cfg))
}

/// Lints every block of a program plus the whole-program rules.
#[must_use]
pub fn lint_program(p: &EdgeProgram, cfg: &LintConfig) -> LintReport {
    let mut diags = Vec::new();
    for (_, block) in p.iter() {
        diags.extend(collect_block(block, cfg));
    }
    diags.extend(program::analyze(p));
    LintReport {
        diagnostics: cfg.apply(diags),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_parse_back() {
        let mut seen = std::collections::BTreeSet::new();
        for &c in LintCode::ALL {
            assert!(seen.insert(c.code()), "duplicate code {}", c.code());
            assert_eq!(LintCode::from_code(c.code()), Some(c));
            assert_eq!(LintCode::from_code(c.slug()), Some(c));
            assert!(!c.describes().is_empty());
        }
        assert_eq!(LintCode::from_code("L999"), None);
    }

    #[test]
    fn severity_orders_and_prints() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
        assert_eq!(Severity::Warn.to_string(), "warning");
    }

    #[test]
    fn config_overrides_apply() {
        let mut cfg = LintConfig::default();
        cfg.allow(LintCode::DeadDataflow);
        cfg.set_level(LintCode::DeepFanoutTree, Severity::Error);
        assert_eq!(cfg.severity_of(LintCode::DeadDataflow), None);
        assert_eq!(
            cfg.severity_of(LintCode::DeepFanoutTree),
            Some(Severity::Error)
        );
        let diags = vec![
            Diagnostic::new(LintCode::DeadDataflow, Span::default(), "dead"),
            Diagnostic::new(LintCode::DeepFanoutTree, Span::default(), "deep"),
        ];
        let out = cfg.apply(diags);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Error);
    }

    #[test]
    fn report_json_is_parseable() {
        let report = LintReport {
            diagnostics: vec![Diagnostic::new(
                LintCode::NoFiringExit,
                Span::inst(0x1000, 3),
                "no exit fires",
            )
            .with_note("on predicate assignment i1=0")],
        };
        let v: Value = serde_json::from_str(&report.to_json()).expect("valid json");
        assert_eq!(v["errors"].as_u64(), Some(1));
        let d = &v["diagnostics"][0];
        assert_eq!(d["code"].as_str(), Some("L001"));
        assert_eq!(d["block"].as_u64(), Some(0x1000));
        assert_eq!(d["inst"].as_u64(), Some(3));
    }
}
