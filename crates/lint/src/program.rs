//! Whole-program checks over an [`EdgeProgram`]: branch-target
//! resolution, block reachability, register def-before-use across the
//! block graph, and termination.
//!
//! The block graph's edges are the statically known exit targets
//! (branches, calls, and sequential fall-throughs). Return addresses
//! are materialized as immediates, so any block whose address appears
//! as an instruction immediate is *address-taken* and treated as a
//! reachability root — this is exactly how the compiler links a call's
//! continuation.
//!
//! Register def-before-use is a forward must-defined fixpoint over the
//! 128 architectural registers (one `u128` per block). The ABI defines
//! `r1..r8` (arguments), the stack pointer, and the link register at
//! entry; address-taken blocks start from all-defined (their callers'
//! state is unknown). Reads of maybe-undefined registers are warnings,
//! not errors: registers reset to zero, so the program still runs
//! deterministically.

use crate::{Diagnostic, LintCode, Span};
use clp_isa::{BlockAddr, BranchKind, EdgeProgram, NUM_ARCH_REGS};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Stack-pointer register of the compiler's ABI.
const SP: usize = 126;
/// Link register of the compiler's ABI.
const LINK: usize = 127;

fn abi_entry_defined() -> u128 {
    let mut d = 0u128;
    for r in 1..=8 {
        d |= 1 << r;
    }
    d | (1 << SP) | (1 << LINK)
}

fn writes_mask(block: &clp_isa::Block) -> u128 {
    let mut m = 0u128;
    for &(_, r) in block.writes() {
        m |= 1 << r.index();
    }
    m
}

/// Runs the whole-program analysis.
pub fn analyze(p: &EdgeProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let addrs: BTreeSet<BlockAddr> = p.iter().map(|(&a, _)| a).collect();

    // Branch targets must resolve; collect the static block graph.
    let mut succs: BTreeMap<BlockAddr, Vec<BlockAddr>> = BTreeMap::new();
    let mut taken: BTreeSet<BlockAddr> = BTreeSet::new();
    for (&a, block) in p.iter() {
        let mut out = Vec::new();
        for exit in block.exits() {
            if let Some(t) = exit.target {
                if addrs.contains(&t) {
                    out.push(t);
                } else {
                    let from = block
                        .instructions()
                        .iter()
                        .position(|i| i.branch.and_then(|b| b.target) == Some(t));
                    diags.push(Diagnostic::new(
                        LintCode::DanglingBranchTarget,
                        Span {
                            block: Some(a),
                            inst: from,
                        },
                        format!(
                            "exit e{} targets @{t:#x}, which is not a block",
                            exit.exit_id
                        ),
                    ));
                }
            }
        }
        succs.insert(a, out);
        for inst in block.instructions() {
            if inst.opcode.has_immediate() && addrs.contains(&(inst.imm as u64)) {
                taken.insert(inst.imm as u64);
            }
        }
    }

    // Reachability from the entry and every address-taken block.
    let mut reached: BTreeSet<BlockAddr> = BTreeSet::new();
    let mut queue: VecDeque<BlockAddr> = VecDeque::new();
    for root in std::iter::once(p.entry()).chain(taken.iter().copied()) {
        if addrs.contains(&root) && reached.insert(root) {
            queue.push_back(root);
        }
    }
    while let Some(a) = queue.pop_front() {
        for &s in &succs[&a] {
            if reached.insert(s) {
                queue.push_back(s);
            }
        }
    }
    for &a in &addrs {
        if !reached.contains(&a) {
            diags.push(Diagnostic::new(
                LintCode::UnreachableBlock,
                Span::block(a),
                "block is unreachable from the entry block and is never address-taken",
            ));
        }
    }

    // Termination: some reachable exit must halt.
    let halts = reached.iter().any(|a| {
        p.block(*a)
            .is_some_and(|b| b.exits().iter().any(|e| e.kind == BranchKind::Halt))
    });
    if !addrs.is_empty() && !halts {
        diags.push(Diagnostic::new(
            LintCode::NoHaltExit,
            Span::block(p.entry()),
            "no halt exit is reachable from the entry block; the program cannot terminate",
        ));
    }

    // Must-defined registers: forward fixpoint, meet = intersection.
    let top = if NUM_ARCH_REGS >= 128 {
        u128::MAX
    } else {
        (1u128 << NUM_ARCH_REGS) - 1
    };
    // Optimistic initialization: everything defined, then lower by
    // intersection. Address-taken blocks receive control with unknown
    // (assumed defined) caller state and stay pinned at top; the entry
    // starts from the ABI registers.
    let mut defined: BTreeMap<BlockAddr, u128> = reached.iter().map(|&a| (a, top)).collect();
    if reached.contains(&p.entry()) && !taken.contains(&p.entry()) {
        defined.insert(p.entry(), abi_entry_defined());
    }
    let mut work: VecDeque<BlockAddr> = reached.iter().copied().collect();
    while let Some(a) = work.pop_front() {
        let Some(block) = p.block(a) else { continue };
        let out = defined[&a] | writes_mask(block);
        for &s in &succs[&a] {
            if taken.contains(&s) {
                continue;
            }
            let cur = defined[&s];
            let met = cur & out;
            if met != cur {
                defined.insert(s, met);
                work.push_back(s);
            }
        }
    }
    for &a in &reached {
        let Some(block) = p.block(a) else { continue };
        let d = defined[&a];
        for &(i, r) in block.reads() {
            if d & (1 << r.index()) == 0 {
                diags.push(
                    Diagnostic::new(
                        LintCode::MaybeUninitRead,
                        Span::inst(a, i),
                        format!("read of {r} is not preceded by a write on every path"),
                    )
                    .with_note("registers reset to zero, so the read observes 0 on those paths"),
                );
            }
        }
    }

    diags
}
