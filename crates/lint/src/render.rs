//! Rustc-style plain-text rendering of diagnostics, quoting the
//! disassembly of the offending instruction.

use crate::{Diagnostic, LintReport, Severity};
use clp_isa::{Block, EdgeProgram};
use std::fmt::Write as _;

/// Renders one diagnostic without source context.
#[must_use]
pub fn render(d: &Diagnostic) -> String {
    render_in(d, None)
}

/// Renders one diagnostic, quoting the instruction from `block` when the
/// span names one.
#[must_use]
pub fn render_in(d: &Diagnostic, block: Option<&Block>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code.code(), d.message);
    let _ = writeln!(out, "  --> {}", d.span);
    if let (Some(i), Some(b)) = (d.span.inst, block) {
        if let Some(inst) = b.instructions().get(i) {
            let label = format!("i{i}");
            let text = inst.to_string();
            let _ = writeln!(out, "   |");
            let _ = writeln!(out, "   | {label}: {text}");
            let _ = writeln!(
                out,
                "   | {}{}",
                " ".repeat(label.len() + 2),
                "^".repeat(text.chars().count().max(1))
            );
        }
    }
    for note in &d.notes {
        let _ = writeln!(out, "   = note: {note}");
    }
    out
}

/// Renders a whole report, resolving spans against the program's blocks,
/// followed by a one-line summary.
#[must_use]
pub fn render_report(report: &LintReport, program: Option<&EdgeProgram>) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let block = d.span.block.and_then(|a| program.and_then(|p| p.block(a)));
        out.push_str(&render_in(d, block));
    }
    let _ = writeln!(
        out,
        "{} error{}, {} warning{}, {} info",
        report.error_count(),
        if report.error_count() == 1 { "" } else { "s" },
        report.count(Severity::Warn),
        if report.count(Severity::Warn) == 1 {
            ""
        } else {
            "s"
        },
        report.count(Severity::Info),
    );
    out
}
