//! Placement-cost lints: operand routes and fanout trees that are
//! expensive on the composed mesh.
//!
//! In an `n`-core composition, instruction `i` lives on core
//! `i mod n` (the low bits of the instruction ID select the core), and
//! cores form a rectangle on the operand mesh
//! ([`clp_noc::region_rect`]). Every dataflow target is a hop-by-hop
//! operand-network message, so:
//!
//! - a producer→consumer pair whose cores are more than
//!   [`LintConfig::max_route_hops`] apart adds that many cycles to the
//!   critical path on *every* activation
//!   ([`LintCode::LongOperandRoute`]);
//! - a `mov` fanout tree deeper than
//!   [`LintConfig::max_fanout_depth`] serializes its leaves behind a
//!   chain of single-cycle copies ([`LintCode::DeepFanoutTree`]).

use crate::graph::BlockGraph;
use crate::{Diagnostic, LintCode, LintConfig, Span};
use clp_isa::{Block, Opcode};
use clp_noc::{rect_hops, region_rect, MeshConfig};

/// Runs the placement-cost analysis on one block.
pub fn analyze(block: &Block, g: &BlockGraph, cfg: &LintConfig) -> Vec<Diagnostic> {
    let insts = block.instructions();
    let addr = block.address();
    let mut diags = Vec::new();

    let mesh = MeshConfig::tflex_operand();
    if let Ok((rect_w, _)) = region_rect(&mesh, cfg.placement_cores) {
        let n = cfg.placement_cores;
        for (i, inst) in insts.iter().enumerate() {
            for t in inst.targets() {
                let hops = rect_hops(i % n, t.inst.index() % n, rect_w) as u32;
                if hops > cfg.max_route_hops {
                    diags.push(
                        Diagnostic::new(
                            LintCode::LongOperandRoute,
                            Span::inst(addr, i),
                            format!(
                                "operand route i{i} -> i{} crosses {hops} mesh hops \
                                 on a {n}-core composition (limit {})",
                                t.inst.index(),
                                cfg.max_route_hops
                            ),
                        )
                        .with_note("each hop adds an operand-network cycle on every activation"),
                    );
                }
            }
        }
    }

    // Depth of the mov chain ending at each mov: one more than the
    // deepest mov feeding its value operand. Producers precede
    // consumers in topological order, so one forward pass suffices.
    let mut depth = vec![0u32; insts.len()];
    let mut deepest: Option<(usize, u32)> = None;
    for &i in &g.topo {
        if insts[i].opcode != Opcode::Mov {
            continue;
        }
        let feed = g.producers[i][0]
            .iter()
            .map(|&p| depth[p])
            .max()
            .unwrap_or(0);
        depth[i] = feed + 1;
        if deepest.is_none_or(|(_, best)| depth[i] > best) {
            deepest = Some((i, depth[i]));
        }
    }
    if let Some((i, d)) = deepest {
        if d > cfg.max_fanout_depth {
            diags.push(
                Diagnostic::new(
                    LintCode::DeepFanoutTree,
                    Span::inst(addr, i),
                    format!(
                        "mov fanout tree is {d} levels deep (limit {})",
                        cfg.max_fanout_depth
                    ),
                )
                .with_note("every level delays the leaf consumers by at least a cycle"),
            );
        }
    }

    diags
}
