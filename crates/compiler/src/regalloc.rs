//! Register allocation for cross-block values.
//!
//! Values that live entirely within one hyperblock travel over dataflow
//! targets and need no register. Only block-crossing values get one of
//! the general-purpose architectural registers, colored greedily on a
//! block-boundary interference graph. Values live across a call are
//! additionally assigned caller-save frame slots.

use crate::ir::{Function, Terminator, VReg};
use crate::liveness::Liveness;
use clp_isa::Reg;
use std::collections::{BTreeMap, BTreeSet};

/// First general-purpose allocatable register (below are the argument
/// registers `r1..=r8` and `r0`, reserved).
pub const FIRST_ALLOC_REG: usize = 9;
/// Last general-purpose allocatable register (above are `SP` and `LINK`).
pub const LAST_ALLOC_REG: usize = 119;

/// The result of register allocation for one function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allocation {
    /// Architectural register for every block-crossing virtual register.
    pub reg_of: BTreeMap<VReg, Reg>,
    /// Caller-save frame slot (index, not byte offset) for every value
    /// live across some call.
    pub frame_slot: BTreeMap<VReg, usize>,
    /// Frame size in bytes (0 for leaf functions with nothing to save).
    pub frame_bytes: i64,
}

impl Allocation {
    /// The register assigned to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not cross a block boundary (no register).
    #[must_use]
    pub fn reg(&self, v: VReg) -> Reg {
        *self
            .reg_of
            .get(&v)
            .unwrap_or_else(|| panic!("{v} has no register (block-local)"))
    }

    /// The register assigned to `v`, if it crosses a block boundary.
    #[must_use]
    pub fn try_reg(&self, v: VReg) -> Option<Reg> {
        self.reg_of.get(&v).copied()
    }
}

/// Register pressure exceeded the architectural register file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegPressureError {
    /// Function name.
    pub function: String,
    /// Colors needed.
    pub needed: usize,
    /// Colors available.
    pub available: usize,
}

impl std::fmt::Display for RegPressureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "function '{}' needs {} registers, only {} available",
            self.function, self.needed, self.available
        )
    }
}

impl std::error::Error for RegPressureError {}

/// Allocates registers and frame slots for `f`.
///
/// # Errors
///
/// Returns [`RegPressureError`] if the interference graph needs more
/// colors than `r9..=r119` provides (the compiler does not spill
/// block-crossing values; workloads are written to fit).
pub fn allocate(
    f: &Function,
    lv: &Liveness,
    extra_cliques: &[BTreeSet<VReg>],
) -> Result<Allocation, RegPressureError> {
    // Collect block-crossing vregs.
    let mut crossing: BTreeSet<VReg> = BTreeSet::new();
    for s in lv.live_in.iter().chain(lv.live_out.iter()) {
        crossing.extend(s.iter().copied());
    }
    for c in extra_cliques {
        crossing.extend(c.iter().copied());
    }

    // Interference: co-membership in any boundary set.
    let verts: Vec<VReg> = crossing.iter().copied().collect();
    let index: BTreeMap<VReg, usize> = verts.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); verts.len()];
    let cliques = lv
        .live_in
        .iter()
        .chain(lv.live_out.iter())
        .chain(extra_cliques.iter());
    for s in cliques {
        let ids: Vec<usize> = s.iter().map(|v| index[v]).collect();
        for (k, &a) in ids.iter().enumerate() {
            for &b in &ids[k + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
    }

    // Greedy coloring, highest degree first.
    let mut order: Vec<usize> = (0..verts.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(adj[i].len()));
    let available = LAST_ALLOC_REG - FIRST_ALLOC_REG + 1;
    let mut color: Vec<Option<usize>> = vec![None; verts.len()];
    let mut max_color = 0usize;
    for &i in &order {
        let used: BTreeSet<usize> = adj[i].iter().filter_map(|&j| color[j]).collect();
        let c = (0..).find(|c| !used.contains(c)).expect("unbounded");
        if c >= available {
            return Err(RegPressureError {
                function: f.name.clone(),
                needed: c + 1,
                available,
            });
        }
        color[i] = Some(c);
        max_color = max_color.max(c + 1);
    }

    let reg_of: BTreeMap<VReg, Reg> = verts
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, Reg::new(FIRST_ALLOC_REG + color[i].expect("colored"))))
        .collect();

    // Frame slots: everything live into a call continuation except the
    // call's destination (which returns in r1).
    let mut frame_slot: BTreeMap<VReg, usize> = BTreeMap::new();
    for b in &f.blocks {
        if let Terminator::Call { dst, cont, .. } = &b.term {
            for &v in &lv.live_in[cont.0] {
                if Some(v) != *dst && !frame_slot.contains_key(&v) {
                    let slot = frame_slot.len();
                    frame_slot.insert(v, slot);
                }
            }
        }
    }
    let frame_bytes = 8 * frame_slot.len() as i64;

    Ok(Allocation {
        reg_of,
        frame_slot,
        frame_bytes,
    })
}

/// The set of vregs a call block must save: values live into `cont`
/// minus the call destination.
#[must_use]
pub fn saved_across_call(lv: &Liveness, cont: crate::ir::BbId, dst: Option<VReg>) -> Vec<VReg> {
    lv.live_in[cont.0]
        .iter()
        .copied()
        .filter(|&v| Some(v) != dst)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ProgramBuilder};
    use crate::liveness::liveness;
    use clp_isa::Opcode;

    #[test]
    fn disjoint_values_share_registers() {
        // Two values never live at the same boundary may share a color.
        let mut f = FunctionBuilder::new("g", 1);
        let x = f.param(0);
        let b1 = f.new_block();
        let b2 = f.new_block();
        let a = f.bin(Opcode::Add, x, x);
        f.jump(b1);
        f.switch_to(b1);
        let t = f.bin(Opcode::Mul, a, a); // a dies here
        f.jump(b2);
        f.switch_to(b2);
        let u = f.bin(Opcode::Add, t, t);
        f.ret(Some(u));
        let func = f.finish();
        let lv = liveness(&func);
        let alloc = allocate(&func, &lv, &[]).unwrap();
        // a and t are both crossing; they interfere? a live into b1,
        // t live into b2; never co-live.
        assert_ne!(alloc.reg_of.get(&a), None);
        assert_ne!(alloc.reg_of.get(&t), None);
        let distinct: BTreeSet<Reg> = alloc.reg_of.values().copied().collect();
        assert!(distinct.len() <= alloc.reg_of.len());
    }

    #[test]
    fn interfering_values_get_distinct_registers() {
        let mut f = FunctionBuilder::new("g", 2);
        let x = f.param(0);
        let y = f.param(1);
        let b1 = f.new_block();
        f.jump(b1);
        f.switch_to(b1);
        let s = f.bin(Opcode::Add, x, y); // x and y both live into b1
        f.ret(Some(s));
        let func = f.finish();
        let lv = liveness(&func);
        let alloc = allocate(&func, &lv, &[]).unwrap();
        assert_ne!(alloc.reg(x), alloc.reg(y));
    }

    #[test]
    fn frame_slots_for_call_crossing_values() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare();
        let mut f = FunctionBuilder::new("caller", 2);
        let x = f.param(0);
        let y = f.param(1);
        let cont = f.new_block();
        let out = f.vreg();
        f.call(callee, &[x], Some(out), cont);
        f.switch_to(cont);
        let s = f.bin(Opcode::Add, y, out);
        f.ret(Some(s));
        let func = f.finish();
        let link = func.link_vreg;
        let lv = liveness(&func);
        let alloc = allocate(&func, &lv, &[]).unwrap();
        // y and the link must be saved; out comes back in r1.
        assert!(alloc.frame_slot.contains_key(&y));
        assert!(alloc.frame_slot.contains_key(&link));
        assert!(!alloc.frame_slot.contains_key(&out));
        assert_eq!(alloc.frame_bytes, 16);
        let saved = saved_across_call(&lv, cont, Some(out));
        assert_eq!(saved.len(), 2);
    }

    #[test]
    fn leaf_function_has_no_frame() {
        let mut f = FunctionBuilder::new("leaf", 1);
        let x = f.param(0);
        f.ret(Some(x));
        let func = f.finish();
        let lv = liveness(&func);
        let alloc = allocate(&func, &lv, &[]).unwrap();
        assert_eq!(alloc.frame_bytes, 0);
    }

    #[test]
    fn registers_stay_in_allocatable_range() {
        let mut f = FunctionBuilder::new("many", 8);
        let b1 = f.new_block();
        let vals: Vec<_> = (0..8).map(|i| f.param(i)).collect();
        f.jump(b1);
        f.switch_to(b1);
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = f.bin(Opcode::Add, acc, v);
        }
        f.ret(Some(acc));
        let func = f.finish();
        let lv = liveness(&func);
        let alloc = allocate(&func, &lv, &[]).unwrap();
        for r in alloc.reg_of.values() {
            assert!((FIRST_ALLOC_REG..=LAST_ALLOC_REG).contains(&r.index()));
        }
    }
}
