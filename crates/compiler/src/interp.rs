//! A reference interpreter for the IR.
//!
//! Used to produce golden outputs for every workload: the TFlex
//! simulator, the conventional baseline simulator, and this interpreter
//! must all agree on final memory contents and return values.

use crate::ir::{BbId, FuncId, OpKind, Program, Terminator, VReg};
use clp_isa::value;
use clp_mem::MemoryImage;
use std::fmt;

/// Failure during interpretation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// The dynamic operation budget was exhausted (probable infinite loop).
    StepLimit(u64),
    /// The call stack exceeded a sanity bound.
    StackOverflow(usize),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::StepLimit(n) => write!(f, "exceeded {n} dynamic operations"),
            InterpError::StackOverflow(n) => write!(f, "call depth exceeded {n}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Dynamic execution statistics gathered by the interpreter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// IR operations evaluated (including predicated-off ones).
    pub ops: u64,
    /// Operations whose guard fired.
    pub fired_ops: u64,
    /// Basic blocks entered.
    pub blocks: u64,
    /// Loads performed.
    pub loads: u64,
    /// Stores performed.
    pub stores: u64,
    /// Two-way branches executed.
    pub branches: u64,
    /// Calls executed.
    pub calls: u64,
}

/// Result of a successful interpretation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InterpResult {
    /// The entry function's return value, if any.
    pub ret: Option<u64>,
    /// Dynamic statistics.
    pub stats: InterpStats,
}

const MAX_CALL_DEPTH: usize = 4096;

struct Frame {
    func: FuncId,
    bb: BbId,
    regs: Vec<u64>,
    ret_dst: Option<VReg>,
    ret_bb: BbId,
}

/// Interprets `program` starting at its entry function with `args`,
/// reading and writing `image`.
///
/// # Errors
///
/// Returns [`InterpError::StepLimit`] after `max_ops` dynamic operations
/// or [`InterpError::StackOverflow`] past 4096 nested calls.
pub fn interpret(
    program: &Program,
    args: &[u64],
    image: &mut MemoryImage,
    max_ops: u64,
) -> Result<InterpResult, InterpError> {
    let mut stats = InterpStats::default();
    let mut stack: Vec<Frame> = Vec::new();

    let new_frame = |func_id: FuncId, args: &[u64]| -> Frame {
        let f = program.function(func_id);
        let mut regs = vec![0u64; f.n_vregs as usize];
        for (i, &a) in args.iter().enumerate().take(f.n_params) {
            regs[f.params[i].0 as usize] = a;
        }
        Frame {
            func: func_id,
            bb: f.entry,
            regs,
            ret_dst: None,
            ret_bb: f.entry,
        }
    };

    let mut frame = new_frame(program.entry, args);
    loop {
        let func = program.function(frame.func);
        let block = func.block(frame.bb);
        stats.blocks += 1;

        for op in &block.ops {
            stats.ops += 1;
            if stats.ops > max_ops {
                return Err(InterpError::StepLimit(max_ops));
            }
            let fires = op
                .pred
                .iter()
                .all(|&(v, sense)| (frame.regs[v.0 as usize] != 0) == sense);
            if !fires {
                continue;
            }
            stats.fired_ops += 1;
            match op.kind {
                OpKind::Const { dst, value } => frame.regs[dst.0 as usize] = value as u64,
                OpKind::ConstF { dst, value } => frame.regs[dst.0 as usize] = value.to_bits(),
                OpKind::Un { dst, op, a } => {
                    frame.regs[dst.0 as usize] = value::eval(op, 0, frame.regs[a.0 as usize], 0);
                }
                OpKind::Bin { dst, op, a, b } => {
                    frame.regs[dst.0 as usize] =
                        value::eval(op, 0, frame.regs[a.0 as usize], frame.regs[b.0 as usize]);
                }
                OpKind::Load {
                    dst,
                    addr,
                    offset,
                    size,
                } => {
                    stats.loads += 1;
                    let a = frame.regs[addr.0 as usize].wrapping_add(offset as u64);
                    frame.regs[dst.0 as usize] = image.read(a, size.bytes());
                }
                OpKind::Store {
                    addr,
                    offset,
                    value,
                    size,
                } => {
                    stats.stores += 1;
                    let a = frame.regs[addr.0 as usize].wrapping_add(offset as u64);
                    image.write(a, size.bytes(), frame.regs[value.0 as usize]);
                }
            }
        }

        match &block.term {
            Terminator::Jump(b) => frame.bb = *b,
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                stats.branches += 1;
                frame.bb = if frame.regs[cond.0 as usize] != 0 {
                    *then_bb
                } else {
                    *else_bb
                };
            }
            Terminator::Call {
                func: callee,
                args,
                dst,
                cont,
            } => {
                stats.calls += 1;
                if stack.len() >= MAX_CALL_DEPTH {
                    return Err(InterpError::StackOverflow(MAX_CALL_DEPTH));
                }
                let arg_vals: Vec<u64> = args.iter().map(|v| frame.regs[v.0 as usize]).collect();
                let mut callee_frame = new_frame(*callee, &arg_vals);
                callee_frame.ret_dst = *dst;
                callee_frame.ret_bb = *cont;
                stack.push(std::mem::replace(&mut frame, callee_frame));
            }
            Terminator::Ret(v) => {
                let rv = v.map(|v| frame.regs[v.0 as usize]);
                match stack.pop() {
                    Some(mut caller) => {
                        if let (Some(dst), Some(val)) = (frame.ret_dst, rv) {
                            caller.regs[dst.0 as usize] = val;
                        }
                        caller.bb = frame.ret_bb;
                        frame = caller;
                    }
                    None => {
                        return Ok(InterpResult { ret: rv, stats });
                    }
                }
            }
            Terminator::Halt => {
                return Ok(InterpResult { ret: None, stats });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ProgramBuilder};
    use clp_isa::Opcode;

    fn run(p: &Program, args: &[u64]) -> InterpResult {
        let mut image = MemoryImage::new();
        interpret(p, args, &mut image, 1_000_000).unwrap()
    }

    #[test]
    fn arithmetic_and_return() {
        let mut f = FunctionBuilder::new("axpb", 3);
        let (a, x, b) = (f.param(0), f.param(1), f.param(2));
        let ax = f.bin(Opcode::Mul, a, x);
        let y = f.bin(Opcode::Add, ax, b);
        f.ret(Some(y));
        let mut pb = ProgramBuilder::new();
        let id = pb.add_function(f.finish());
        let p = pb.finish(id);
        assert_eq!(run(&p, &[3, 4, 5]).ret, Some(17));
    }

    #[test]
    fn loop_sums_array() {
        let mut f = FunctionBuilder::new("sum", 2);
        let base = f.param(0);
        let n = f.param(1);
        let i = f.c(0);
        let acc = f.c(0);
        let (h, body, exit) = (f.new_block(), f.new_block(), f.new_block());
        f.jump(h);
        f.switch_to(h);
        let c = f.bin(Opcode::Tlt, i, n);
        f.branch(c, body, exit);
        f.switch_to(body);
        let eight = f.c(8);
        let off = f.bin(Opcode::Mul, i, eight);
        let addr = f.bin(Opcode::Add, base, off);
        let v = f.load(addr, 0);
        f.bin_into(acc, Opcode::Add, acc, v);
        let one = f.c(1);
        f.bin_into(i, Opcode::Add, i, one);
        f.jump(h);
        f.switch_to(exit);
        f.ret(Some(acc));
        let mut pb = ProgramBuilder::new();
        let id = pb.add_function(f.finish());
        let p = pb.finish(id);

        let mut image = MemoryImage::new();
        image.load_words(0x1000, &[10, 20, 30, 40]);
        let r = interpret(&p, &[0x1000, 4], &mut image, 100_000).unwrap();
        assert_eq!(r.ret, Some(100));
        assert_eq!(r.stats.loads, 4);
        assert!(r.stats.branches >= 5);
    }

    #[test]
    fn recursion_factorial() {
        let mut pb = ProgramBuilder::new();
        let fact = pb.declare();
        let mut f = FunctionBuilder::new("fact", 1);
        let nv = f.param(0);
        let one = f.c(1);
        let is_base = f.bin(Opcode::Tle, nv, one);
        let (base_bb, rec_bb, cont) = (f.new_block(), f.new_block(), f.new_block());
        f.branch(is_base, base_bb, rec_bb);
        f.switch_to(base_bb);
        f.ret(Some(one));
        f.switch_to(rec_bb);
        let nm1 = f.bin(Opcode::Sub, nv, one);
        let sub = f.vreg();
        f.call(fact, &[nm1], Some(sub), cont);
        f.switch_to(cont);
        let r = f.bin(Opcode::Mul, nv, sub);
        f.ret(Some(r));
        pb.set_function(fact, f.finish());
        let p = pb.finish(fact);
        assert_eq!(run(&p, &[6]).ret, Some(720));
        assert_eq!(run(&p, &[1]).ret, Some(1));
    }

    #[test]
    fn predicated_op_keeps_old_value() {
        use crate::ir::{Op, OpKind};
        let mut f = FunctionBuilder::new("sel", 1);
        let cond = f.param(0);
        let x = f.c(10);
        f.ret(Some(x));
        let mut func = f.finish();
        // Insert a predicated overwrite between the const and the ret.
        func.blocks[0].ops.push(Op {
            pred: vec![(cond, true)],
            kind: OpKind::Const { dst: x, value: 77 },
        });
        let mut pb = ProgramBuilder::new();
        let id = pb.add_function(func);
        let p = pb.finish(id);
        assert_eq!(run(&p, &[1]).ret, Some(77));
        assert_eq!(run(&p, &[0]).ret, Some(10), "guard off keeps old value");
    }

    #[test]
    fn step_limit_detects_infinite_loop() {
        let mut f = FunctionBuilder::new("spin", 0);
        let h = f.new_block();
        f.jump(h);
        f.switch_to(h);
        let _ = f.c(0);
        f.jump(h);
        let mut pb = ProgramBuilder::new();
        let id = pb.add_function(f.finish());
        let p = pb.finish(id);
        let mut image = MemoryImage::new();
        assert_eq!(
            interpret(&p, &[], &mut image, 100),
            Err(InterpError::StepLimit(100))
        );
    }

    #[test]
    fn halt_terminates_without_value() {
        let mut f = FunctionBuilder::new("h", 0);
        f.halt();
        let mut pb = ProgramBuilder::new();
        let id = pb.add_function(f.finish());
        let p = pb.finish(id);
        assert_eq!(run(&p, &[]).ret, None);
    }
}
