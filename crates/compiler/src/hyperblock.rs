//! Hyperblock formation: predicated inlining of single-predecessor
//! successors, the generalization of chain merging, triangles, and
//! diamonds used to build large EDGE blocks out of small IR blocks.

use crate::ir::{BbId, Function, Op, Pred, Terminator, VReg};
use std::collections::BTreeSet;

/// An exit of a hyperblock: a guard conjunction plus a control transfer.
#[derive(Clone, Debug, PartialEq)]
pub struct HirExit {
    /// Guard (empty = unconditional). The guards of a block's exits
    /// partition: exactly one fires per execution.
    pub pred: Pred,
    /// The transfer.
    pub kind: HirExitKind,
}

/// Control-transfer kinds of a hyperblock exit.
#[derive(Clone, Debug, PartialEq)]
pub enum HirExitKind {
    /// Jump to another hyperblock of the same function.
    Jump(BbId),
    /// Call a function, continuing at `cont` (always a block's sole,
    /// unconditional exit).
    Call {
        /// Callee.
        func: crate::ir::FuncId,
        /// Arguments (at most 8).
        args: Vec<VReg>,
        /// Destination for the return value.
        dst: Option<VReg>,
        /// Continuation block.
        cont: BbId,
    },
    /// Return from the function (always sole, unconditional).
    Ret(Option<VReg>),
    /// Stop the program.
    Halt,
}

/// A hyperblock: predicated straight-line ops plus partitioned exits.
#[derive(Clone, Debug, PartialEq)]
pub struct HirBlock {
    /// The (possibly predicated) operations, in program order.
    pub ops: Vec<Op>,
    /// The exits; their guards partition.
    pub exits: Vec<HirExit>,
}

impl HirBlock {
    fn from_basic(block: &crate::ir::BasicBlock) -> Self {
        let exits = match &block.term {
            Terminator::Jump(b) => vec![HirExit {
                pred: vec![],
                kind: HirExitKind::Jump(*b),
            }],
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => vec![
                HirExit {
                    pred: vec![(*cond, true)],
                    kind: HirExitKind::Jump(*then_bb),
                },
                HirExit {
                    pred: vec![(*cond, false)],
                    kind: HirExitKind::Jump(*else_bb),
                },
            ],
            Terminator::Call {
                func,
                args,
                dst,
                cont,
            } => vec![HirExit {
                pred: vec![],
                kind: HirExitKind::Call {
                    func: *func,
                    args: args.clone(),
                    dst: *dst,
                    cont: *cont,
                },
            }],
            Terminator::Ret(v) => vec![HirExit {
                pred: vec![],
                kind: HirExitKind::Ret(*v),
            }],
            Terminator::Halt => vec![HirExit {
                pred: vec![],
                kind: HirExitKind::Halt,
            }],
        };
        HirBlock {
            ops: block.ops.clone(),
            exits,
        }
    }

    /// Memory operations in the block (bounds the LSID budget).
    #[must_use]
    pub fn memory_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.kind.is_memory()).count()
    }

    /// Estimated EDGE instructions contributed by the ops alone
    /// (instruction + fan-out movs + predicate materialization).
    #[must_use]
    pub fn op_cost(&self) -> usize {
        self.ops.iter().map(|o| 2 + o.pred.len().min(3)).sum()
    }

    /// Conservative estimate of the EDGE instruction count this block
    /// lowers to (ops + reads/writes + exit branches).
    #[must_use]
    pub fn estimated_edge_size(&self) -> usize {
        self.op_cost() + 3 * self.exits.len() + 20
    }
}

/// A function after hyperblock formation. `blocks[i]` is `None` when the
/// original block `i` was merged into a predecessor.
#[derive(Clone, Debug)]
pub struct HirFunction {
    /// Source-function name.
    pub name: String,
    /// Surviving hyperblocks (index = original [`BbId`]).
    pub blocks: Vec<Option<HirBlock>>,
    /// Entry block.
    pub entry: BbId,
    /// Number of blocks before formation (for reporting).
    pub blocks_before: usize,
}

impl HirFunction {
    /// Surviving block count.
    #[must_use]
    pub fn blocks_after(&self) -> usize {
        self.blocks.iter().flatten().count()
    }

    /// The layout order for address assignment: ascending block IDs, but
    /// a call's continuation is emitted immediately after the call block
    /// so that the RAS's `call address + frame` push predicts returns.
    #[must_use]
    pub fn layout_order(&self) -> Vec<BbId> {
        let n = self.blocks.len();
        let mut emitted = vec![false; n];
        let mut order = Vec::new();
        let emit = |id: usize, order: &mut Vec<BbId>, emitted: &mut Vec<bool>| {
            let mut next = Some(id);
            while let Some(i) = next {
                if emitted[i] || self.blocks[i].is_none() {
                    break;
                }
                emitted[i] = true;
                order.push(BbId(i));
                next = self.blocks[i].as_ref().and_then(|b| {
                    b.exits.iter().find_map(|e| match &e.kind {
                        HirExitKind::Call { cont, .. } => Some(cont.0),
                        _ => None,
                    })
                });
            }
        };
        emit(self.entry.0, &mut order, &mut emitted);
        for i in 0..n {
            emit(i, &mut order, &mut emitted);
        }
        order
    }
}

/// Tuning knobs for hyperblock formation.
#[derive(Clone, Copy, Debug)]
pub struct FormerOptions {
    /// Maximum estimated EDGE instructions per merged block.
    pub max_edge_size: usize,
    /// Maximum memory operations per merged block (LSID budget).
    pub max_memory_ops: usize,
    /// Maximum exits per merged block.
    pub max_exits: usize,
    /// Disable merging entirely (every IR block becomes one EDGE block).
    pub disabled: bool,
}

impl Default for FormerOptions {
    fn default() -> Self {
        FormerOptions {
            max_edge_size: 140,
            max_memory_ops: 26,
            max_exits: clp_isa::MAX_BLOCK_EXITS,
            disabled: false,
        }
    }
}

fn pred_vregs(pred: &Pred) -> impl Iterator<Item = VReg> + '_ {
    pred.iter().map(|&(v, _)| v)
}

fn jump_pred_counts(blocks: &[Option<HirBlock>]) -> Vec<usize> {
    let mut counts = vec![0usize; blocks.len()];
    for b in blocks.iter().flatten() {
        for e in &b.exits {
            if let HirExitKind::Jump(t) = e.kind {
                counts[t.0] += 1;
            }
        }
    }
    counts
}

/// Runs hyperblock formation over `f`.
#[must_use]
pub fn form_hyperblocks(f: &Function, opts: &FormerOptions) -> HirFunction {
    let mut blocks: Vec<Option<HirBlock>> = f
        .blocks
        .iter()
        .map(|b| Some(HirBlock::from_basic(b)))
        .collect();
    let blocks_before = blocks.len();

    // Pinned blocks can never be inlined: the entry (call target) and all
    // call continuations (return targets).
    let mut pinned = vec![false; blocks.len()];
    pinned[f.entry.0] = true;
    for b in &f.blocks {
        if let Terminator::Call { cont, .. } = &b.term {
            pinned[cont.0] = true;
        }
    }

    if opts.disabled {
        return HirFunction {
            name: f.name.clone(),
            blocks,
            entry: f.entry,
            blocks_before,
        };
    }

    loop {
        let counts = jump_pred_counts(&blocks);
        let mut merged_any = false;

        'outer: for a in 0..blocks.len() {
            let Some(ablock) = blocks[a].as_ref() else {
                continue;
            };
            for (ei, exit) in ablock.exits.iter().enumerate() {
                let HirExitKind::Jump(bid) = exit.kind else {
                    continue;
                };
                let b = bid.0;
                if b == a || pinned[b] || counts[b] != 1 {
                    continue;
                }
                let Some(bblock) = blocks[b].as_ref() else {
                    continue;
                };
                // Only pure jump/halt exits may be inlined under a guard.
                if bblock
                    .exits
                    .iter()
                    .any(|e| matches!(e.kind, HirExitKind::Call { .. } | HirExitKind::Ret(_)))
                {
                    continue;
                }
                // Resource budgets.
                let merged_mem = ablock.memory_ops() + bblock.memory_ops();
                let merged_exits = ablock.exits.len() - 1 + bblock.exits.len();
                // Estimate the *merged* block directly: op costs add (the
                // inlined ops gain one guard conjunct each) but the fixed
                // read/write headroom is shared.
                let merged_size = ablock.op_cost()
                    + bblock.op_cost()
                    + bblock.ops.len() / 2
                    + 3 * merged_exits
                    + 24;
                if merged_mem > opts.max_memory_ops
                    || merged_exits > opts.max_exits
                    || merged_size > opts.max_edge_size
                {
                    continue;
                }
                // Guard-corruption check: B's ops must not redefine any
                // vreg used by the inlining guard or by A's other exits'
                // guards (those are semantically evaluated before B runs).
                let mut forbidden: BTreeSet<VReg> = pred_vregs(&exit.pred).collect();
                for (j, other) in ablock.exits.iter().enumerate() {
                    if j != ei {
                        forbidden.extend(pred_vregs(&other.pred));
                    }
                }
                if bblock
                    .ops
                    .iter()
                    .any(|o| o.kind.dst().is_some_and(|d| forbidden.contains(&d)))
                {
                    continue;
                }

                // Perform the merge.
                let guard = exit.pred.clone();
                let bblock = blocks[b].take().expect("checked above");
                let ablock = blocks[a].as_mut().expect("checked above");
                ablock.exits.remove(ei);
                for mut op in bblock.ops {
                    let mut pred = guard.clone();
                    pred.append(&mut op.pred);
                    op.pred = pred;
                    ablock.ops.push(op);
                }
                for mut e in bblock.exits {
                    let mut pred = guard.clone();
                    pred.append(&mut e.pred);
                    e.pred = pred;
                    ablock.exits.push(e);
                }
                merged_any = true;
                break 'outer;
            }
        }

        if !merged_any {
            break;
        }
    }

    HirFunction {
        name: f.name.clone(),
        blocks,
        entry: f.entry,
        blocks_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use clp_isa::Opcode;

    #[test]
    fn chain_merges_into_one_block() {
        let mut f = FunctionBuilder::new("chain", 1);
        let x = f.param(0);
        let b1 = f.new_block();
        let b2 = f.new_block();
        let t = f.bin(Opcode::Add, x, x);
        f.jump(b1);
        f.switch_to(b1);
        let u = f.bin(Opcode::Mul, t, t);
        f.jump(b2);
        f.switch_to(b2);
        f.ret(Some(u));
        let hir = form_hyperblocks(&f.finish(), &FormerOptions::default());
        // b1 merged into entry; b2 (ret) stays.
        assert_eq!(hir.blocks_after(), 2);
        let entry = hir.blocks[0].as_ref().unwrap();
        assert_eq!(entry.ops.len(), 2);
    }

    #[test]
    fn diamond_if_converts() {
        let mut f = FunctionBuilder::new("diamond", 2);
        let c = f.param(0);
        let x = f.param(1);
        let (t_bb, e_bb, join) = (f.new_block(), f.new_block(), f.new_block());
        let y = f.c(0);
        f.branch(c, t_bb, e_bb);
        f.switch_to(t_bb);
        f.bin_into(y, Opcode::Add, x, x);
        f.jump(join);
        f.switch_to(e_bb);
        f.bin_into(y, Opcode::Mul, x, x);
        f.jump(join);
        f.switch_to(join);
        f.ret(Some(y));
        let hir = form_hyperblocks(&f.finish(), &FormerOptions::default());
        // Entry absorbs both arms; the join (now single-pred from entry)
        // is a Ret block and stays.
        assert_eq!(hir.blocks_after(), 2);
        let entry = hir.blocks[0].as_ref().unwrap();
        let preds: Vec<usize> = entry.ops.iter().map(|o| o.pred.len()).collect();
        assert!(preds.contains(&1), "arm ops predicated: {preds:?}");
        // Exits collapse to one unconditional jump pair to the join.
        assert!(entry
            .exits
            .iter()
            .all(|e| matches!(e.kind, HirExitKind::Jump(_))));
    }

    #[test]
    fn loop_body_rotates_into_header() {
        let mut f = FunctionBuilder::new("loop", 1);
        let n = f.param(0);
        let i = f.c(0);
        let (h, body, exit) = (f.new_block(), f.new_block(), f.new_block());
        f.jump(h);
        f.switch_to(h);
        let c = f.bin(Opcode::Tlt, i, n);
        f.branch(c, body, exit);
        f.switch_to(body);
        let one = f.c(1);
        f.bin_into(i, Opcode::Add, i, one);
        f.jump(h);
        f.switch_to(exit);
        f.ret(Some(i));
        let hir = form_hyperblocks(&f.finish(), &FormerOptions::default());
        // body inlined into header; header self-loops.
        let header = hir.blocks[h.0].as_ref().unwrap();
        assert!(header
            .exits
            .iter()
            .any(|e| matches!(e.kind, HirExitKind::Jump(t) if t == h)));
        assert!(hir.blocks[body.0].is_none(), "body merged away");
    }

    #[test]
    fn guard_redefinition_blocks_merge() {
        let mut f = FunctionBuilder::new("redef", 1);
        let c = f.param(0);
        let (t_bb, e_bb) = (f.new_block(), f.new_block());
        f.branch(c, t_bb, e_bb);
        f.switch_to(t_bb);
        // The then-arm redefines the condition: inlining it would corrupt
        // the else exit's guard.
        f.c_into(c, 0);
        f.jump(e_bb);
        f.switch_to(e_bb);
        f.ret(Some(c));
        let hir = form_hyperblocks(&f.finish(), &FormerOptions::default());
        assert!(
            hir.blocks[t_bb.0].is_some(),
            "arm redefining the guard must not merge"
        );
    }

    #[test]
    fn call_blocks_never_inline() {
        let mut f = FunctionBuilder::new("c", 1);
        let c = f.param(0);
        let (callb, other, cont) = (f.new_block(), f.new_block(), f.new_block());
        f.branch(c, callb, other);
        f.switch_to(callb);
        f.call(crate::ir::FuncId(0), &[], None, cont);
        f.switch_to(other);
        f.ret(None);
        f.switch_to(cont);
        f.ret(None);
        let hir = form_hyperblocks(&f.finish(), &FormerOptions::default());
        assert!(hir.blocks[callb.0].is_some());
        assert!(hir.blocks[cont.0].is_some(), "cont pinned");
    }

    #[test]
    fn disabled_former_keeps_all_blocks() {
        let mut f = FunctionBuilder::new("chain", 0);
        let b1 = f.new_block();
        f.jump(b1);
        f.switch_to(b1);
        f.halt();
        let opts = FormerOptions {
            disabled: true,
            ..Default::default()
        };
        let hir = form_hyperblocks(&f.finish(), &opts);
        assert_eq!(hir.blocks_after(), 2);
    }

    #[test]
    fn layout_places_cont_after_call() {
        let mut f = FunctionBuilder::new("c", 0);
        let other = f.new_block(); // bb1, created before cont
        let cont = f.new_block(); // bb2
        f.call(crate::ir::FuncId(0), &[], None, cont);
        f.switch_to(other);
        f.ret(None);
        f.switch_to(cont);
        f.jump(other);
        let hir = form_hyperblocks(&f.finish(), &FormerOptions::default());
        let order = hir.layout_order();
        let pos = |b: BbId| order.iter().position(|&x| x == b).unwrap();
        assert_eq!(pos(cont), pos(BbId(0)) + 1, "cont directly after call");
    }
}
