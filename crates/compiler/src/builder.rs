//! Ergonomic construction of IR programs (used heavily by `clp-workloads`).

use crate::ir::{
    BasicBlock, BbId, FuncId, Function, MemSize, Op, OpKind, Program, Terminator, VReg,
};
use clp_isa::Opcode;

/// Builds one [`Function`] with a cursor over the current basic block.
///
/// # Examples
///
/// ```
/// use clp_compiler::{FunctionBuilder, ProgramBuilder};
/// use clp_isa::Opcode;
///
/// // fn double(x) { return x + x; }
/// let mut f = FunctionBuilder::new("double", 1);
/// let x = f.param(0);
/// let y = f.bin(Opcode::Add, x, x);
/// f.ret(Some(y));
///
/// let mut p = ProgramBuilder::new();
/// let id = p.add_function(f.finish());
/// let program = p.finish(id);
/// assert_eq!(program.function(id).name, "double");
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    n_params: usize,
    params: Vec<VReg>,
    link_vreg: VReg,
    next_vreg: u32,
    blocks: Vec<BasicBlock>,
    terminated: Vec<bool>,
    current: BbId,
}

impl FunctionBuilder {
    /// Starts a function with `n_params` parameters (at most 8) and a
    /// fresh entry block as the cursor.
    ///
    /// # Panics
    ///
    /// Panics if `n_params > 8`.
    #[must_use]
    pub fn new(name: &str, n_params: usize) -> Self {
        assert!(n_params <= 8, "at most 8 parameters");
        let params: Vec<VReg> = (0..n_params as u32).map(VReg).collect();
        let link_vreg = VReg(n_params as u32);
        FunctionBuilder {
            name: name.to_owned(),
            n_params,
            params,
            link_vreg,
            next_vreg: n_params as u32 + 1,
            blocks: vec![BasicBlock {
                ops: vec![],
                term: Terminator::Halt,
            }],
            terminated: vec![false],
            current: BbId(0),
        }
    }

    /// The virtual register holding parameter `i`.
    #[must_use]
    pub fn param(&self, i: usize) -> VReg {
        self.params[i]
    }

    /// Allocates a fresh virtual register.
    pub fn vreg(&mut self) -> VReg {
        let v = VReg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    /// Creates a new (unterminated) basic block.
    pub fn new_block(&mut self) -> BbId {
        self.blocks.push(BasicBlock {
            ops: vec![],
            term: Terminator::Halt,
        });
        self.terminated.push(false);
        BbId(self.blocks.len() - 1)
    }

    /// Moves the cursor to `bb`.
    pub fn switch_to(&mut self, bb: BbId) {
        self.current = bb;
    }

    /// The block the cursor points at.
    #[must_use]
    pub fn current_block(&self) -> BbId {
        self.current
    }

    fn push(&mut self, kind: OpKind) {
        assert!(
            !self.terminated[self.current.0],
            "appending to terminated {:?}",
            self.current
        );
        self.blocks[self.current.0].ops.push(Op::new(kind));
    }

    /// `dst = value` into a fresh register.
    pub fn c(&mut self, value: i64) -> VReg {
        let dst = self.vreg();
        self.c_into(dst, value);
        dst
    }

    /// `dst = value` into an existing register.
    pub fn c_into(&mut self, dst: VReg, value: i64) {
        self.push(OpKind::Const { dst, value });
    }

    /// `dst = value` (floating point) into a fresh register.
    pub fn cf(&mut self, value: f64) -> VReg {
        let dst = self.vreg();
        self.push(OpKind::ConstF { dst, value });
        dst
    }

    /// `dst = a op b` into a fresh register.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a binary ALU opcode.
    pub fn bin(&mut self, op: Opcode, a: VReg, b: VReg) -> VReg {
        let dst = self.vreg();
        self.bin_into(dst, op, a, b);
        dst
    }

    /// `dst = a op b` into an existing register.
    pub fn bin_into(&mut self, dst: VReg, op: Opcode, a: VReg, b: VReg) {
        assert_eq!(op.arity(), 2, "{op} is not binary");
        self.push(OpKind::Bin { dst, op, a, b });
    }

    /// `dst = op a` into a fresh register.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a unary ALU opcode.
    pub fn un(&mut self, op: Opcode, a: VReg) -> VReg {
        let dst = self.vreg();
        self.un_into(dst, op, a);
        dst
    }

    /// `dst = op a` into an existing register.
    pub fn un_into(&mut self, dst: VReg, op: Opcode, a: VReg) {
        assert_eq!(op.arity(), 1, "{op} is not unary");
        self.push(OpKind::Un { dst, op, a });
    }

    /// `dst = src` (register copy) into an existing register.
    pub fn assign(&mut self, dst: VReg, src: VReg) {
        self.un_into(dst, Opcode::Mov, src);
    }

    /// Word load into a fresh register.
    pub fn load(&mut self, addr: VReg, offset: i64) -> VReg {
        let dst = self.vreg();
        self.push(OpKind::Load {
            dst,
            addr,
            offset,
            size: MemSize::Word,
        });
        dst
    }

    /// Byte load (zero-extended) into a fresh register.
    pub fn loadb(&mut self, addr: VReg, offset: i64) -> VReg {
        let dst = self.vreg();
        self.push(OpKind::Load {
            dst,
            addr,
            offset,
            size: MemSize::Byte,
        });
        dst
    }

    /// Word store.
    pub fn store(&mut self, addr: VReg, offset: i64, value: VReg) {
        self.push(OpKind::Store {
            addr,
            offset,
            value,
            size: MemSize::Word,
        });
    }

    /// Byte store.
    pub fn storeb(&mut self, addr: VReg, offset: i64, value: VReg) {
        self.push(OpKind::Store {
            addr,
            offset,
            value,
            size: MemSize::Byte,
        });
    }

    fn terminate(&mut self, term: Terminator) {
        assert!(
            !self.terminated[self.current.0],
            "double terminator on {:?}",
            self.current
        );
        self.blocks[self.current.0].term = term;
        self.terminated[self.current.0] = true;
    }

    /// Ends the current block with an unconditional jump.
    pub fn jump(&mut self, target: BbId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Ends the current block with a branch on `cond != 0`.
    pub fn branch(&mut self, cond: VReg, then_bb: BbId, else_bb: BbId) {
        self.terminate(Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Ends the current block with a call; execution resumes at `cont`
    /// with `dst` holding the return value.
    ///
    /// # Panics
    ///
    /// Panics if more than 8 arguments are passed.
    pub fn call(&mut self, func: FuncId, args: &[VReg], dst: Option<VReg>, cont: BbId) {
        assert!(args.len() <= 8, "at most 8 arguments");
        self.terminate(Terminator::Call {
            func,
            args: args.to_vec(),
            dst,
            cont,
        });
    }

    /// Ends the current block with a return.
    pub fn ret(&mut self, value: Option<VReg>) {
        self.terminate(Terminator::Ret(value));
    }

    /// Ends the current block by halting the program.
    pub fn halt(&mut self) {
        self.terminate(Terminator::Halt);
    }

    /// Finalizes the function.
    ///
    /// # Panics
    ///
    /// Panics if any block lacks a terminator.
    #[must_use]
    pub fn finish(self) -> Function {
        for (i, t) in self.terminated.iter().enumerate() {
            assert!(*t, "block bb{i} of '{}' has no terminator", self.name);
        }
        Function {
            name: self.name,
            n_params: self.n_params,
            params: self.params,
            link_vreg: self.link_vreg,
            n_vregs: self.next_vreg,
            blocks: self.blocks,
            entry: BbId(0),
        }
    }
}

/// Collects functions into a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<Function>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves a [`FuncId`] before the function body exists (forward
    /// references for mutual recursion). The slot must be filled with
    /// [`ProgramBuilder::set_function`].
    pub fn declare(&mut self) -> FuncId {
        self.functions.push(Function {
            name: String::new(),
            n_params: 0,
            params: vec![],
            link_vreg: VReg(0),
            n_vregs: 1,
            blocks: vec![BasicBlock {
                ops: vec![],
                term: Terminator::Halt,
            }],
            entry: BbId(0),
        });
        FuncId(self.functions.len() - 1)
    }

    /// Fills a declared slot.
    pub fn set_function(&mut self, id: FuncId, f: Function) {
        self.functions[id.0] = f;
    }

    /// Appends a function, returning its ID.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        self.functions.push(f);
        FuncId(self.functions.len() - 1)
    }

    /// Produces the program with `entry` as the start function.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range.
    #[must_use]
    pub fn finish(self, entry: FuncId) -> Program {
        assert!(entry.0 < self.functions.len(), "entry function missing");
        Program {
            functions: self.functions,
            entry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_function() {
        let mut f = FunctionBuilder::new("f", 2);
        let a = f.param(0);
        let b = f.param(1);
        let s = f.bin(Opcode::Add, a, b);
        f.ret(Some(s));
        let func = f.finish();
        assert_eq!(func.blocks.len(), 1);
        assert_eq!(func.blocks[0].ops.len(), 1);
        assert!(matches!(func.blocks[0].term, Terminator::Ret(Some(_))));
    }

    #[test]
    fn loop_shape() {
        let mut f = FunctionBuilder::new("count", 1);
        let n = f.param(0);
        let i = f.c(0);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(header);
        f.switch_to(header);
        let c = f.bin(Opcode::Tlt, i, n);
        f.branch(c, body, exit);
        f.switch_to(body);
        let one = f.c(1);
        f.bin_into(i, Opcode::Add, i, one);
        f.jump(header);
        f.switch_to(exit);
        f.ret(Some(i));
        let func = f.finish();
        assert_eq!(func.blocks.len(), 4);
        assert_eq!(func.pred_counts()[header.0], 2);
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn unterminated_block_caught() {
        let mut f = FunctionBuilder::new("bad", 0);
        let _ = f.new_block(); // never terminated, never reached
        f.halt();
        let _ = f.finish();
    }

    #[test]
    #[should_panic(expected = "double terminator")]
    fn double_terminator_caught() {
        let mut f = FunctionBuilder::new("bad", 0);
        f.halt();
        f.halt();
    }

    #[test]
    fn forward_declaration_for_recursion() {
        let mut p = ProgramBuilder::new();
        let id = p.declare();
        let mut f = FunctionBuilder::new("rec", 1);
        let x = f.param(0);
        let cont = f.new_block();
        let out = f.vreg();
        f.call(id, &[x], Some(out), cont);
        f.switch_to(cont);
        f.ret(Some(out));
        p.set_function(id, f.finish());
        let prog = p.finish(id);
        assert_eq!(prog.function(id).name, "rec");
    }
}
