//! Lowering hyperblocks to EDGE blocks.
//!
//! The central invariant is *exactly-one-delivery*: every virtual
//! register's current value is represented as a set of producer
//! instructions (`ValueRef`) of which exactly one fires per execution.
//! Reads always deliver; a predicated definition is merged with a
//! complementary `mov` of the old value; therefore consumers never
//! starve and blocks never deadlock, with no broadcast or hardware
//! renaming — the property EDGE composability relies on.

use crate::hyperblock::{form_hyperblocks, HirBlock, HirExitKind, HirFunction};
use crate::ir::{BbId, MemSize, OpKind, Pred, Program, Terminator, VReg};
use crate::liveness::{liveness, Liveness};
use crate::placement;
use crate::regalloc::{allocate, saved_across_call, Allocation};
use crate::{CompileError, CompileOptions};
use clp_isa::{
    Block, BlockAddr, BlockBuilder, BranchInfo, BranchKind, EdgeProgram, InstId, Instruction,
    Opcode, Operand, PredSense, ProgramBuilder as EdgeProgramBuilder, Reg, BLOCK_FRAME_BYTES,
};
use std::collections::{BTreeMap, BTreeSet};

/// A set of producers of which exactly one fires per execution.
#[derive(Clone, Debug)]
struct ValueRef(Vec<InstId>);

impl ValueRef {
    fn single(id: InstId) -> Self {
        ValueRef(vec![id])
    }
}

/// Register carrying the return value and first argument.
pub const RET_REG: usize = 1;

struct BlockCtx<'a> {
    b: BlockBuilder,
    alloc: &'a Allocation,
    /// Current in-block value of each vreg.
    current: BTreeMap<VReg, ValueRef>,
    /// VRegs (re)defined in this block (candidates for write-back).
    defs: BTreeSet<VReg>,
    /// Memoized READ instructions by architectural register.
    reads: BTreeMap<usize, InstId>,
    /// Memoized materialized multi-conjunct predicates.
    pc_cache: BTreeMap<Vec<(u32, bool)>, ValueRef>,
    zero: Option<InstId>,
    next_lsid: usize,
    /// Entry-block incoming bindings (params and link from the ABI regs).
    incoming: BTreeMap<VReg, Reg>,
    /// In-block stack-pointer value (post-prologue), if modified here.
    sp_ref: Option<ValueRef>,
    func_name: &'a str,
    bb: BbId,
}

type Guard = Option<(ValueRef, PredSense)>;

impl<'a> BlockCtx<'a> {
    fn new(addr: BlockAddr, alloc: &'a Allocation, func_name: &'a str, bb: BbId) -> Self {
        BlockCtx {
            b: BlockBuilder::new(addr),
            alloc,
            current: BTreeMap::new(),
            defs: BTreeSet::new(),
            reads: BTreeMap::new(),
            pc_cache: BTreeMap::new(),
            zero: None,
            next_lsid: 0,
            incoming: BTreeMap::new(),
            sp_ref: None,
            func_name,
            bb,
        }
    }

    fn err_too_large(&self) -> CompileError {
        CompileError::BlockTooLarge {
            function: self.func_name.to_owned(),
            bb: self.bb.0,
        }
    }

    fn push(
        &mut self,
        mut inst: Instruction,
        left: Option<&ValueRef>,
        right: Option<&ValueRef>,
        guard: Option<(&ValueRef, PredSense)>,
    ) -> Result<InstId, CompileError> {
        if let Some((_, sense)) = guard {
            inst.pred = Some(sense);
        }
        if self.b.len() > 230 {
            return Err(self.err_too_large());
        }
        let id = self.b.push_raw(inst);
        if let Some(vr) = left {
            for &p in &vr.0 {
                self.b.connect(p, id, Operand::Left);
            }
        }
        if let Some(vr) = right {
            for &p in &vr.0 {
                self.b.connect(p, id, Operand::Right);
            }
        }
        if let Some((vr, _)) = guard {
            for &p in &vr.0 {
                self.b.connect(p, id, Operand::Pred);
            }
        }
        Ok(id)
    }

    fn read_reg(&mut self, reg: Reg) -> InstId {
        if let Some(&id) = self.reads.get(&reg.index()) {
            return id;
        }
        let mut inst = Instruction::new(Opcode::Read);
        inst.reg = Some(reg);
        let id = self.b.push_raw(inst);
        self.reads.insert(reg.index(), id);
        id
    }

    fn value_of(&mut self, v: VReg) -> ValueRef {
        if let Some(vr) = self.current.get(&v) {
            return vr.clone();
        }
        let reg = self
            .incoming
            .get(&v)
            .copied()
            .unwrap_or_else(|| self.alloc.reg(v));
        let id = self.read_reg(reg);
        let vr = ValueRef::single(id);
        self.current.insert(v, vr.clone());
        vr
    }

    fn sp_value(&mut self) -> ValueRef {
        match &self.sp_ref {
            Some(vr) => vr.clone(),
            None => ValueRef::single(self.read_reg(Reg::SP)),
        }
    }

    fn zero(&mut self) -> Result<InstId, CompileError> {
        if let Some(z) = self.zero {
            return Ok(z);
        }
        let z = self.push(Instruction::new(Opcode::Movi), None, None, None)?;
        self.zero = Some(z);
        Ok(z)
    }

    /// Materializes a guard conjunction. Single conjuncts use the value
    /// directly with a sense; longer conjunctions are normalized to 0/1
    /// and folded with `and` (all inputs always deliver, so the chain
    /// cannot starve).
    fn guard_of(&mut self, pred: &Pred) -> Result<Guard, CompileError> {
        match pred.len() {
            0 => Ok(None),
            1 => {
                let (v, s) = pred[0];
                let vr = self.value_of(v);
                Ok(Some((
                    vr,
                    if s {
                        PredSense::OnTrue
                    } else {
                        PredSense::OnFalse
                    },
                )))
            }
            _ => {
                let key: Vec<(u32, bool)> = pred.iter().map(|&(v, s)| (v.0, s)).collect();
                if let Some(vr) = self.pc_cache.get(&key) {
                    return Ok(Some((vr.clone(), PredSense::OnTrue)));
                }
                let mut acc: Option<InstId> = None;
                for &(v, s) in pred {
                    let vr = self.value_of(v);
                    let zero = self.zero()?;
                    let zvr = ValueRef::single(zero);
                    let op = if s { Opcode::Tne } else { Opcode::Teq };
                    let norm = self.push(Instruction::new(op), Some(&vr), Some(&zvr), None)?;
                    acc = Some(match acc {
                        None => norm,
                        Some(prev) => self.push(
                            Instruction::new(Opcode::And),
                            Some(&ValueRef::single(prev)),
                            Some(&ValueRef::single(norm)),
                            None,
                        )?,
                    });
                }
                let vr = ValueRef::single(acc.expect("nonempty"));
                self.pc_cache.insert(key, vr.clone());
                Ok(Some((vr, PredSense::OnTrue)))
            }
        }
    }

    fn lsid(&mut self) -> Result<usize, CompileError> {
        if self.next_lsid >= clp_isa::MAX_BLOCK_LSIDS {
            return Err(CompileError::LsidOverflow {
                function: self.func_name.to_owned(),
                bb: self.bb.0,
            });
        }
        let l = self.next_lsid;
        self.next_lsid += 1;
        Ok(l)
    }

    /// Installs `new_id` as the value of `dst`, merging with the previous
    /// value when guarded.
    ///
    /// `need_merge` is false when every later consumer of `dst` is
    /// predicated at least as strongly as this definition and `dst` is
    /// not written back at any exit — then the complementary-path `mov`
    /// would be dead and is omitted (the big code-size win for
    /// if-converted loop bodies).
    fn define(
        &mut self,
        dst: VReg,
        new_id: InstId,
        guard: &Guard,
        need_merge: bool,
    ) -> Result<(), CompileError> {
        self.defs.insert(dst);
        match guard {
            _ if !need_merge => {
                self.current.insert(dst, ValueRef::single(new_id));
            }
            None => {
                self.current.insert(dst, ValueRef::single(new_id));
            }
            Some((vr, sense)) => {
                // The complementary path must still deliver a token so the
                // merged value never starves its consumers. A vreg first
                // defined *inside* a predicated region has no prior value
                // anywhere (the source program never observes it on the
                // other path), so an arbitrary constant stands in.
                let has_old = self.current.contains_key(&dst)
                    || self.incoming.contains_key(&dst)
                    || self.alloc.try_reg(dst).is_some();
                let old = if has_old {
                    self.value_of(dst)
                } else {
                    ValueRef::single(self.zero()?)
                };
                let guard_ref = vr.clone();
                let mov_old = self.push(
                    Instruction::new(Opcode::Mov),
                    Some(&old),
                    None,
                    Some((&guard_ref, sense.invert())),
                )?;
                self.current.insert(dst, ValueRef(vec![new_id, mov_old]));
            }
        }
        Ok(())
    }

    fn guard_as_ref(guard: &Guard) -> Option<(&ValueRef, PredSense)> {
        guard.as_ref().map(|(vr, s)| (vr, *s))
    }
}

/// Per-function lowering context shared across blocks.
struct FuncCtx<'a> {
    hir: &'a HirFunction,
    lv: &'a Liveness,
    alloc: &'a Allocation,
    /// `(dst, saved vregs)` for each call continuation block.
    cont_info: BTreeMap<BbId, (Option<VReg>, Vec<VReg>)>,
    link_vreg: VReg,
    entry_bb: BbId,
    params: Vec<VReg>,
}

#[allow(clippy::too_many_arguments)]
fn lower_block(
    fc: &FuncCtx<'_>,
    bb: BbId,
    hb: &HirBlock,
    addr: BlockAddr,
    addr_of_bb: &BTreeMap<BbId, BlockAddr>,
    func_entry_addr: &dyn Fn(crate::ir::FuncId) -> BlockAddr,
    opts: &CompileOptions,
) -> Result<Block, CompileError> {
    let mut cx = BlockCtx::new(addr, fc.alloc, &fc.hir.name, bb);

    // --- prologues -----------------------------------------------------
    if bb == fc.entry_bb {
        for (i, &p) in fc.params.iter().enumerate() {
            cx.incoming.insert(p, Reg::new(RET_REG + i));
            cx.defs.insert(p);
        }
        cx.incoming.insert(fc.link_vreg, Reg::LINK);
        cx.defs.insert(fc.link_vreg);
        if fc.alloc.frame_bytes > 0 {
            let sp_in = cx.sp_value();
            let mut addi = Instruction::new(Opcode::Addi);
            addi.imm = -fc.alloc.frame_bytes;
            let new_sp = cx.push(addi, Some(&sp_in), None, None)?;
            cx.sp_ref = Some(ValueRef::single(new_sp));
        }
    }
    if let Some((dst, saved)) = fc.cont_info.get(&bb) {
        // Reload caller-saved values from the frame, then the return value.
        let sp = cx.sp_value();
        for &v in saved {
            let slot = fc.alloc.frame_slot[&v];
            let mut ld = Instruction::new(Opcode::Ld);
            ld.imm = 8 * slot as i64;
            ld.lsid = Some(clp_isa::Lsid::new(cx.lsid()?));
            let id = cx.push(ld, Some(&sp), None, None)?;
            cx.current.insert(v, ValueRef::single(id));
            cx.defs.insert(v);
        }
        if let Some(d) = dst {
            let id = cx.read_reg(Reg::new(RET_REG));
            cx.current.insert(*d, ValueRef::single(id));
            cx.defs.insert(*d);
        }
    }

    // --- merge analysis --------------------------------------------------
    // Values written back at an exit: union of live-in over jump-exit
    // targets (call/ret blocks never contain guarded ops, so their
    // operand uses are handled by the unpredicated-use rule below).
    let mut exit_live: BTreeSet<VReg> = BTreeSet::new();
    for exit in &hb.exits {
        if let HirExitKind::Jump(t) = &exit.kind {
            exit_live.extend(fc.lv.live_in[t.0].iter().copied());
        }
    }
    let pred_subset = |p: &Pred, q: &Pred| p.iter().all(|c| q.contains(c));
    let uses_in_pred = |op: &crate::ir::Op, v: VReg| op.pred.iter().any(|&(pv, _)| pv == v);
    let exit_guard_uses = |v: VReg| {
        hb.exits
            .iter()
            .any(|e| e.pred.iter().any(|&(pv, _)| pv == v))
            || hb.exits.iter().any(|e| match &e.kind {
                HirExitKind::Call { args, .. } => args.contains(&v),
                HirExitKind::Ret(Some(r)) => *r == v,
                _ => false,
            })
    };
    let need_merge: Vec<bool> = hb
        .ops
        .iter()
        .enumerate()
        .map(|(k, op)| {
            let Some(dst) = op.kind.dst() else {
                return false;
            };
            if op.pred.is_empty() {
                return false; // unguarded defs never need a merge
            }
            if exit_live.contains(&dst) || exit_guard_uses(dst) {
                return true;
            }
            for later in &hb.ops[k + 1..] {
                if uses_in_pred(later, dst) {
                    return true; // guard chains must always deliver
                }
                if later.kind.uses().contains(&dst) && !pred_subset(&op.pred, &later.pred) {
                    return true;
                }
                if later.kind.dst() == Some(dst) {
                    // A redefinition: unguarded ones kill the value;
                    // guarded ones read it through their own merge —
                    // be conservative and merge.
                    return !later.pred.is_empty();
                }
            }
            false
        })
        .collect();

    // --- operations ----------------------------------------------------
    for (op_idx, op) in hb.ops.iter().enumerate() {
        let merge = need_merge[op_idx];
        let guard = cx.guard_of(&op.pred)?;
        match &op.kind {
            OpKind::Const { dst, value } => {
                let mut movi = Instruction::new(Opcode::Movi);
                movi.imm = *value;
                let id = cx.push(movi, None, None, BlockCtx::guard_as_ref(&guard))?;
                cx.define(*dst, id, &guard, merge)?;
            }
            OpKind::ConstF { dst, value } => {
                let mut movi = Instruction::new(Opcode::Movi);
                movi.imm = value.to_bits() as i64;
                let id = cx.push(movi, None, None, BlockCtx::guard_as_ref(&guard))?;
                cx.define(*dst, id, &guard, merge)?;
            }
            OpKind::Un { dst, op, a } => {
                let av = cx.value_of(*a);
                let id = cx.push(
                    Instruction::new(*op),
                    Some(&av),
                    None,
                    BlockCtx::guard_as_ref(&guard),
                )?;
                cx.define(*dst, id, &guard, merge)?;
            }
            OpKind::Bin { dst, op, a, b } => {
                let av = cx.value_of(*a);
                let bv = cx.value_of(*b);
                let id = cx.push(
                    Instruction::new(*op),
                    Some(&av),
                    Some(&bv),
                    BlockCtx::guard_as_ref(&guard),
                )?;
                cx.define(*dst, id, &guard, merge)?;
            }
            OpKind::Load {
                dst,
                addr: a,
                offset,
                size,
            } => {
                let av = cx.value_of(*a);
                let mut ld = Instruction::new(match size {
                    MemSize::Byte => Opcode::Ldb,
                    MemSize::Word => Opcode::Ld,
                });
                ld.imm = *offset;
                ld.lsid = Some(clp_isa::Lsid::new(cx.lsid()?));
                let id = cx.push(ld, Some(&av), None, BlockCtx::guard_as_ref(&guard))?;
                cx.define(*dst, id, &guard, merge)?;
            }
            OpKind::Store {
                addr: a,
                offset,
                value,
                size,
            } => {
                let av = cx.value_of(*a);
                let vv = cx.value_of(*value);
                let l = cx.lsid()?;
                let mut st = Instruction::new(match size {
                    MemSize::Byte => Opcode::Stb,
                    MemSize::Word => Opcode::St,
                });
                st.imm = *offset;
                st.lsid = Some(clp_isa::Lsid::new(l));
                cx.push(st, Some(&av), Some(&vv), BlockCtx::guard_as_ref(&guard))?;
                if let Some((vr, sense)) = &guard {
                    // Resolve the store slot on the complementary path.
                    let mut null = Instruction::new(Opcode::Null);
                    null.lsid = Some(clp_isa::Lsid::new(l));
                    let g = vr.clone();
                    cx.push(null, None, None, Some((&g, sense.invert())))?;
                }
            }
        }
    }

    // --- exits -----------------------------------------------------------
    let mut suppress_write_back: BTreeSet<VReg> = BTreeSet::new();
    for (i, exit) in hb.exits.iter().enumerate() {
        let exit_id = i as u8;
        let guard = cx.guard_of(&exit.pred)?;
        match &exit.kind {
            HirExitKind::Jump(t) => {
                let taddr = addr_of_bb[t];
                let kind = if taddr == addr + BLOCK_FRAME_BYTES {
                    BranchKind::Seq
                } else {
                    BranchKind::Branch
                };
                let mut bro = Instruction::new(Opcode::Bro);
                bro.branch = Some(BranchInfo {
                    exit_id,
                    kind,
                    target: Some(taddr),
                });
                cx.push(bro, None, None, BlockCtx::guard_as_ref(&guard))?;
            }
            HirExitKind::Halt => {
                let mut bro = Instruction::new(Opcode::Bro);
                bro.branch = Some(BranchInfo {
                    exit_id,
                    kind: BranchKind::Halt,
                    target: None,
                });
                cx.push(bro, None, None, BlockCtx::guard_as_ref(&guard))?;
            }
            HirExitKind::Call {
                func,
                args,
                dst,
                cont,
            } => {
                if guard.is_some() || hb.exits.len() != 1 {
                    return Err(CompileError::PredicatedCallOrRet {
                        function: fc.hir.name.clone(),
                        bb: bb.0,
                    });
                }
                // Caller saves.
                let saved = saved_across_call(fc.lv, *cont, *dst);
                let sp = cx.sp_value();
                for &v in &saved {
                    let slot = fc.alloc.frame_slot[&v];
                    let vv = cx.value_of(v);
                    let mut st = Instruction::new(Opcode::St);
                    st.imm = 8 * slot as i64;
                    st.lsid = Some(clp_isa::Lsid::new(cx.lsid()?));
                    cx.push(st, Some(&sp), Some(&vv), None)?;
                    suppress_write_back.insert(v);
                }
                // Arguments.
                for (ai, &a) in args.iter().enumerate() {
                    let av = cx.value_of(a);
                    let mut w = Instruction::new(Opcode::Write);
                    w.reg = Some(Reg::new(RET_REG + ai));
                    cx.push(w, Some(&av), None, None)?;
                }
                // Link: the return address is the continuation block.
                let mut movi = Instruction::new(Opcode::Movi);
                movi.imm = addr_of_bb[cont] as i64;
                let link_val = cx.push(movi, None, None, None)?;
                let mut w = Instruction::new(Opcode::Write);
                w.reg = Some(Reg::LINK);
                cx.push(w, Some(&ValueRef::single(link_val)), None, None)?;
                // The call itself.
                let mut bro = Instruction::new(Opcode::Bro);
                bro.branch = Some(BranchInfo {
                    exit_id,
                    kind: BranchKind::Call,
                    target: Some(func_entry_addr(*func)),
                });
                cx.push(bro, None, None, None)?;
            }
            HirExitKind::Ret(v) => {
                if guard.is_some() || hb.exits.len() != 1 {
                    return Err(CompileError::PredicatedCallOrRet {
                        function: fc.hir.name.clone(),
                        bb: bb.0,
                    });
                }
                if let Some(v) = v {
                    let vv = cx.value_of(*v);
                    let mut w = Instruction::new(Opcode::Write);
                    w.reg = Some(Reg::new(RET_REG));
                    cx.push(w, Some(&vv), None, None)?;
                }
                if fc.alloc.frame_bytes > 0 {
                    let sp = cx.sp_value();
                    let mut addi = Instruction::new(Opcode::Addi);
                    addi.imm = fc.alloc.frame_bytes;
                    let new_sp = cx.push(addi, Some(&sp), None, None)?;
                    let mut w = Instruction::new(Opcode::Write);
                    w.reg = Some(Reg::SP);
                    cx.push(w, Some(&ValueRef::single(new_sp)), None, None)?;
                }
                let mut bro = Instruction::new(Opcode::Bro);
                bro.branch = Some(BranchInfo {
                    exit_id,
                    kind: BranchKind::Return,
                    target: None,
                });
                let link = cx.value_of(fc.link_vreg);
                cx.push(bro, Some(&link), None, None)?;
            }
        }
    }

    // --- SP prologue write-back -----------------------------------------
    if bb == fc.entry_bb && fc.alloc.frame_bytes > 0 {
        let sp = cx.sp_ref.clone().expect("prologue ran");
        let mut w = Instruction::new(Opcode::Write);
        w.reg = Some(Reg::SP);
        cx.push(w, Some(&sp), None, None)?;
    }

    // --- register write-backs --------------------------------------------
    // The merged block's live-out is the union of live-in over its jump
    // exits' targets (NOT the seed block's original live-out: absorbed
    // ops define values that original liveness attributes to *inner*
    // edges that no longer exist). Call exits contribute nothing — values
    // crossing a call travel through the caller-save frame.
    let live_out = exit_live;
    let to_write: Vec<VReg> = cx
        .defs
        .iter()
        .copied()
        .filter(|v| live_out.contains(v) && !suppress_write_back.contains(v))
        .collect();
    for v in to_write {
        let vv = cx.value_of(v);
        let mut w = Instruction::new(Opcode::Write);
        w.reg = Some(fc.alloc.reg(v));
        cx.push(w, Some(&vv), None, None)?;
    }

    // --- placement + validation ------------------------------------------
    let insts = cx.b.into_instructions();
    let insts = if opts.placement {
        placement::schedule(insts, opts.placement_cores)
    } else {
        insts
    };
    Block::from_instructions(addr, insts).map_err(|e| CompileError::Block {
        function: fc.hir.name.clone(),
        bb: bb.0,
        source: e,
    })
}

/// Compiles an IR program to an EDGE program.
///
/// Hyperblock formation uses a conservative size estimate; if a merged
/// block still lowers past an EDGE resource limit, compilation retries
/// with progressively smaller formation caps (finally with formation
/// disabled, where every IR block trivially fits).
///
/// # Errors
///
/// Returns a [`CompileError`] for register pressure, malformed call
/// structure, or block-validation failures that shrinking cannot fix.
pub fn compile(program: &Program, opts: &CompileOptions) -> Result<EdgeProgram, CompileError> {
    let mut attempt = *opts;
    for cap in [attempt.former.max_edge_size, 116, 96, 76, 56, 36, 0] {
        if cap == 0 {
            attempt.former.disabled = true;
        } else {
            attempt.former.max_edge_size = cap;
        }
        match compile_once(program, &attempt) {
            Err(
                e @ (CompileError::Block {
                    source: clp_isa::BlockError::TooManyInstructions(_),
                    ..
                }
                | CompileError::BlockTooLarge { .. }
                | CompileError::LsidOverflow { .. }),
            ) if !attempt.former.disabled => {
                if std::env::var_os("CLP_COMPILE_DEBUG").is_some() {
                    eprintln!("compile retry (cap {cap}): {e}");
                }
            }
            other => return other,
        }
    }
    unreachable!("loop returns on the disabled-former attempt")
}

fn compile_once(program: &Program, opts: &CompileOptions) -> Result<EdgeProgram, CompileError> {
    // Per-function analyses.
    let mut hirs = Vec::with_capacity(program.functions.len());
    let mut lvs = Vec::with_capacity(program.functions.len());
    let mut allocs = Vec::with_capacity(program.functions.len());
    for f in &program.functions {
        let hir = form_hyperblocks(f, &opts.former);
        let lv = liveness(f);
        // Write-back clique: values defined in one hyperblock and live
        // out of any of its exits are all written back by that block, so
        // they need distinct registers even if their live ranges never
        // overlap (they may be live at *different* exits).
        let mut cliques: Vec<BTreeSet<VReg>> = Vec::new();
        for (bi, hb) in hir.blocks.iter().enumerate() {
            let Some(hb) = hb else { continue };
            let mut defs: BTreeSet<VReg> = hb.ops.iter().filter_map(|o| o.kind.dst()).collect();
            if bi == f.entry.0 {
                // The entry block also "defines" (writes back) its live-out
                // parameters and link register.
                defs.extend(f.params.iter().copied());
                defs.insert(f.link_vreg);
            }
            let mut live_out: BTreeSet<VReg> = BTreeSet::new();
            for e in &hb.exits {
                if let HirExitKind::Jump(t) = &e.kind {
                    live_out.extend(lv.live_in[t.0].iter().copied());
                }
            }
            let written: BTreeSet<VReg> = defs.intersection(&live_out).copied().collect();
            if written.len() > 1 {
                cliques.push(written);
            }
        }
        let alloc = allocate(f, &lv, &cliques).map_err(CompileError::RegPressure)?;
        hirs.push(hir);
        lvs.push(lv);
        allocs.push(alloc);
    }

    // Layout: a synthetic _start block (calls the entry function with the
    // link pointing at a _halt block), then the entry function, then the
    // rest. This keeps every function's returns uniform — the program
    // ends when the entry function returns to _halt.
    let start_addr = opts.base_addr;
    let halt_addr = start_addr + BLOCK_FRAME_BYTES;
    let mut func_order: Vec<usize> = vec![program.entry.0];
    func_order.extend((0..program.functions.len()).filter(|&i| i != program.entry.0));
    let mut addr_of: Vec<BTreeMap<BbId, BlockAddr>> =
        vec![BTreeMap::new(); program.functions.len()];
    let mut next = halt_addr + BLOCK_FRAME_BYTES;
    for &fi in &func_order {
        for bb in hirs[fi].layout_order() {
            addr_of[fi].insert(bb, next);
            next += BLOCK_FRAME_BYTES;
        }
    }

    // Validate that continuations are only reached by returns.
    for (fi, f) in program.functions.iter().enumerate() {
        let mut conts: BTreeSet<BbId> = BTreeSet::new();
        for b in &f.blocks {
            if let Terminator::Call { cont, .. } = &b.term {
                conts.insert(*cont);
            }
        }
        for hb in hirs[fi].blocks.iter().flatten() {
            for e in &hb.exits {
                if let HirExitKind::Jump(t) = &e.kind {
                    if conts.contains(t) {
                        return Err(CompileError::ContIsJumpTarget {
                            function: f.name.clone(),
                            bb: t.0,
                        });
                    }
                }
            }
        }
    }

    let mut epb = EdgeProgramBuilder::new();
    {
        let entry_fn_addr = addr_of[program.entry.0][&program.functions[program.entry.0].entry];
        let mut sb = clp_isa::BlockBuilder::new(start_addr);
        let link_val = sb.movi(halt_addr as i64);
        sb.write(Reg::LINK, link_val);
        sb.branch(BranchKind::Call, Some(entry_fn_addr), 0);
        let start_block = sb.finish().map_err(|e| CompileError::Block {
            function: "_start".to_owned(),
            bb: 0,
            source: e,
        })?;
        epb.add_block(start_block).map_err(CompileError::Program)?;
        let mut hb2 = clp_isa::BlockBuilder::new(halt_addr);
        hb2.branch(BranchKind::Halt, None, 0);
        let halt_block = hb2.finish().map_err(|e| CompileError::Block {
            function: "_halt".to_owned(),
            bb: 0,
            source: e,
        })?;
        epb.add_block(halt_block).map_err(CompileError::Program)?;
    }
    for &fi in &func_order {
        let f = &program.functions[fi];
        let fc = FuncCtx {
            hir: &hirs[fi],
            lv: &lvs[fi],
            alloc: &allocs[fi],
            cont_info: f
                .blocks
                .iter()
                .filter_map(|b| match &b.term {
                    Terminator::Call { dst, cont, .. } => {
                        Some((*cont, (*dst, saved_across_call(&lvs[fi], *cont, *dst))))
                    }
                    _ => None,
                })
                .collect(),
            link_vreg: f.link_vreg,
            entry_bb: f.entry,
            params: f.params.clone(),
        };
        let entry_addr =
            |callee: crate::ir::FuncId| addr_of[callee.0][&program.functions[callee.0].entry];
        for bb in hirs[fi].layout_order() {
            let hb = hirs[fi].blocks[bb.0].as_ref().expect("in layout");
            let addr = addr_of[fi][&bb];
            let block = lower_block(&fc, bb, hb, addr, &addr_of[fi], &entry_addr, opts)?;
            epb.add_block(block).map_err(CompileError::Program)?;
        }
    }
    epb.finish(start_addr).map_err(CompileError::Program)
}
