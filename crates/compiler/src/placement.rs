//! Placement-aware instruction-ID assignment.
//!
//! In an N-core composition, instruction `i` lives on core `i mod N`
//! (Figure 4a). This pass renumbers a block's instructions so that
//! consumers land on the same core as their producers where possible,
//! scheduling for the largest (32-core) composition; the paper notes that
//! scheduling for 32 cores and running on fewer degrades little, which
//! also holds for this scheduler because `i ≡ p (mod 32)` implies
//! `i ≡ p (mod N)` for every smaller power-of-two N.

use clp_isa::{InstId, Instruction, Target};

/// Renumbers `insts` (a block's instructions in builder order) to place
/// dependent instructions on the same core of an `n_cores` target,
/// rewriting all dataflow targets. Blocks too large to be valid are
/// returned unchanged (validation will reject them with a better error).
#[must_use]
pub fn schedule(insts: Vec<Instruction>, n_cores: usize) -> Vec<Instruction> {
    let n = insts.len();
    if n == 0 || n > clp_isa::MAX_BLOCK_INSTRUCTIONS || !n_cores.is_power_of_two() {
        return insts;
    }

    // Build producer lists and a topological order (Kahn).
    let mut indeg = vec![0usize; n];
    let mut first_producer: Vec<Option<usize>> = vec![None; n];
    for (i, inst) in insts.iter().enumerate() {
        for t in inst.targets() {
            let c = t.inst.index();
            indeg[c] += 1;
            if first_producer[c].is_none() {
                first_producer[c] = Some(i);
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut topo = Vec::with_capacity(n);
    let mut qi = 0;
    while qi < queue.len() {
        let i = queue[qi];
        qi += 1;
        topo.push(i);
        for t in insts[i].targets() {
            let c = t.inst.index();
            indeg[c] -= 1;
            if indeg[c] == 0 {
                queue.push(c);
            }
        }
    }
    if topo.len() != n {
        // Cyclic (invalid) block: leave untouched for validation to report.
        return insts;
    }

    // Free ID pool per residue class.
    let mut free: Vec<Vec<usize>> = vec![Vec::new(); n_cores];
    for id in (0..n).rev() {
        free[id % n_cores].push(id); // reversed so pop() yields smallest
    }

    let mut new_id: Vec<usize> = vec![usize::MAX; n];
    let mut rr = 0usize; // round-robin for source instructions
    for &i in &topo {
        let preferred = match first_producer[i] {
            Some(p) if new_id[p] != usize::MAX => new_id[p] % n_cores,
            _ => {
                rr = (rr + 1) % n_cores;
                rr
            }
        };
        // Pick the free residue class sharing the most low-order bits
        // with the preferred one: instruction IDs select the core by
        // their low bits, so maximal low-bit agreement preserves
        // producer/consumer co-location for every smaller composition
        // even when the exact class is full.
        let log = n_cores.trailing_zeros();
        let residue = (0..n_cores)
            .filter(|&r| !free[r].is_empty())
            .max_by_key(|&r| {
                let agree = ((r ^ preferred) as u32).trailing_zeros().min(log);
                (agree, std::cmp::Reverse(r.abs_diff(preferred)))
            })
            .expect("a slot is free by counting");
        let id = free[residue].pop().expect("slot free");
        new_id[i] = id;
    }

    // Apply the permutation.
    let mut out: Vec<Option<Instruction>> = vec![None; n];
    for (i, mut inst) in insts.into_iter().enumerate() {
        for slot in &mut inst.targets {
            if let Some(t) = slot {
                *slot = Some(Target::new(InstId::new(new_id[t.inst.index()]), t.operand));
            }
        }
        out[new_id[i]] = Some(inst);
    }
    out.into_iter()
        .map(|i| i.expect("permutation total"))
        .collect()
}

/// Fraction of dataflow edges whose producer and consumer share a core in
/// an `n_cores` composition (a locality metric used by tests and the
/// ablation benches).
#[must_use]
pub fn locality(insts: &[Instruction], n_cores: usize) -> f64 {
    let mut edges = 0usize;
    let mut local = 0usize;
    for (i, inst) in insts.iter().enumerate() {
        for t in inst.targets() {
            edges += 1;
            if i % n_cores == t.inst.index() % n_cores {
                local += 1;
            }
        }
    }
    if edges == 0 {
        1.0
    } else {
        local as f64 / edges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clp_isa::{Block, BlockBuilder, BranchKind, Opcode, Reg};

    fn chain_block_insts() -> Vec<Instruction> {
        // A long dependence chain: ideal placement keeps it on one core.
        let mut b = BlockBuilder::new(0);
        let mut v = b.movi(1);
        for _ in 0..20 {
            v = b.op1i(Opcode::Addi, v, 1);
        }
        b.write(Reg::new(1), v);
        b.branch(BranchKind::Halt, None, 0);
        b.into_instructions()
    }

    #[test]
    fn scheduling_preserves_validity_and_semantics_shape() {
        let insts = chain_block_insts();
        let n = insts.len();
        let placed = schedule(insts, 32);
        assert_eq!(placed.len(), n);
        let block = Block::from_instructions(0, placed).expect("still valid");
        assert_eq!(block.len(), n);
    }

    #[test]
    fn scheduling_improves_chain_locality() {
        // A 23-instruction block cannot co-locate anything at 32 cores
        // (dense IDs give every instruction a distinct residue), but the
        // low-bit-agreement fallback must deliver locality at 4 cores.
        let insts = chain_block_insts();
        let before = locality(&insts, 4);
        let placed = schedule(insts, 32);
        let after = locality(&placed, 4);
        assert!(
            after >= before,
            "locality must not regress: {before} -> {after}"
        );
        assert!(after > 0.5, "chain should be mostly local, got {after}");
    }

    #[test]
    fn locality_transfers_to_smaller_compositions() {
        let placed = schedule(chain_block_insts(), 32);
        let l32 = locality(&placed, 32);
        let l4 = locality(&placed, 4);
        assert!(l4 >= l32, "mod-32 locality implies mod-4 locality");
        // A long chain on a big block does achieve mod-32 locality.
        let mut b = clp_isa::BlockBuilder::new(0);
        let mut v = b.movi(1);
        for _ in 0..100 {
            v = b.op1i(Opcode::Addi, v, 1);
        }
        b.write(Reg::new(1), v);
        b.branch(BranchKind::Halt, None, 0);
        let placed = schedule(b.into_instructions(), 32);
        assert!(locality(&placed, 32) > 0.5);
    }

    #[test]
    fn oversized_blocks_pass_through() {
        let insts: Vec<Instruction> = (0..200).map(|_| Instruction::new(Opcode::Movi)).collect();
        let out = schedule(insts.clone(), 32);
        assert_eq!(out.len(), insts.len());
    }

    #[test]
    fn empty_block_ok() {
        assert!(schedule(vec![], 32).is_empty());
        assert_eq!(locality(&[], 8), 1.0);
    }
}
