//! # clp-compiler — from a CFG mini-IR to EDGE hyperblocks
//!
//! The TRIPS toolchain is not publicly available, so this crate rebuilds
//! the pipeline a TFlex system needs:
//!
//! 1. a small CFG [IR](crate::ir) over mutable virtual registers, with an
//!    ergonomic [`FunctionBuilder`] used by the workload suite;
//! 2. a reference [interpreter](crate::interp) that produces the golden
//!    outputs every simulator is checked against;
//! 3. [hyperblock formation](crate::hyperblock) — predicated inlining of
//!    single-predecessor successors (chains, triangles, diamonds, loop
//!    rotation) under the EDGE resource limits;
//! 4. [`liveness`] + [register allocation](crate::regalloc)
//!    for block-crossing values only (intra-block values travel on
//!    dataflow targets);
//! 5. [`codegen`] with a caller-save calling convention
//!    (args in `r1..r8`, return in `r1`, link in `r127`, stack pointer in
//!    `r126`), `READ`/`WRITE` insertion, predicate materialization, and
//!    store-null coverage so blocks always complete;
//! 6. placement-aware [instruction-ID assignment](crate::placement) that
//!    schedules for the 32-core composition.
//!
//! ```
//! use clp_compiler::{compile, interpret, CompileOptions, FunctionBuilder, ProgramBuilder};
//! use clp_isa::Opcode;
//! use clp_mem::MemoryImage;
//!
//! # fn main() -> Result<(), clp_compiler::CompileError> {
//! let mut f = FunctionBuilder::new("triple", 1);
//! let x = f.param(0);
//! let three = f.c(3);
//! let y = f.bin(Opcode::Mul, x, three);
//! f.ret(Some(y));
//! let mut pb = ProgramBuilder::new();
//! let id = pb.add_function(f.finish());
//! let program = pb.finish(id);
//!
//! let edge = compile(&program, &CompileOptions::default())?;
//! assert!(edge.len() >= 1);
//!
//! let mut image = MemoryImage::new();
//! let golden = interpret(&program, &[14], &mut image, 10_000).expect("interprets");
//! assert_eq!(golden.ret, Some(42));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod builder;
pub mod codegen;
pub mod hyperblock;
pub mod interp;
pub mod ir;
pub mod liveness;
pub mod placement;
pub mod regalloc;

pub use builder::{FunctionBuilder, ProgramBuilder};
pub use codegen::compile;
pub use hyperblock::FormerOptions;
pub use interp::{interpret, InterpError, InterpResult, InterpStats};
pub use ir::{BbId, FuncId, MemSize, Program, Terminator, VReg};
pub use regalloc::RegPressureError;

pub use clp_lint::{LintConfig, LintReport};

use clp_isa::{BlockAddr, BlockError, ProgramError};
use std::fmt;

/// Compiler configuration.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// Base virtual address of the first block.
    pub base_addr: BlockAddr,
    /// Hyperblock-formation knobs.
    pub former: FormerOptions,
    /// Run placement-aware ID assignment.
    pub placement: bool,
    /// Composition size placement schedules for (32 in the paper).
    pub placement_cores: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            base_addr: 0x1_0000,
            former: FormerOptions::default(),
            placement: true,
            placement_cores: 32,
        }
    }
}

/// Compilation failure.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// Register allocation ran out of architectural registers.
    RegPressure(RegPressureError),
    /// A hyperblock lowered to more EDGE instructions than fit.
    BlockTooLarge {
        /// Function name.
        function: String,
        /// Original basic-block index.
        bb: usize,
    },
    /// A hyperblock needed more than 32 load/store IDs.
    LsidOverflow {
        /// Function name.
        function: String,
        /// Original basic-block index.
        bb: usize,
    },
    /// A call continuation is also a jump target, which breaks the
    /// caller-save reload convention.
    ContIsJumpTarget {
        /// Function name.
        function: String,
        /// Offending block index.
        bb: usize,
    },
    /// Internal invariant: calls and returns are sole, unpredicated exits.
    PredicatedCallOrRet {
        /// Function name.
        function: String,
        /// Offending block index.
        bb: usize,
    },
    /// Block validation failed after lowering.
    Block {
        /// Function name.
        function: String,
        /// Original basic-block index.
        bb: usize,
        /// Underlying ISA error.
        source: BlockError,
    },
    /// Program assembly failed (duplicate addresses, dangling targets).
    Program(ProgramError),
    /// The post-codegen lint gate found error-severity diagnostics
    /// (see [`compile_with_lints`]).
    DeniedLints(Vec<clp_lint::Diagnostic>),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::RegPressure(e) => write!(f, "{e}"),
            CompileError::BlockTooLarge { function, bb } => {
                write!(f, "'{function}' bb{bb} exceeds the 128-instruction block")
            }
            CompileError::LsidOverflow { function, bb } => {
                write!(f, "'{function}' bb{bb} exceeds 32 load/store IDs")
            }
            CompileError::ContIsJumpTarget { function, bb } => {
                write!(
                    f,
                    "'{function}' bb{bb} is a call continuation reached by a jump"
                )
            }
            CompileError::PredicatedCallOrRet { function, bb } => {
                write!(
                    f,
                    "'{function}' bb{bb} has a predicated call or return exit"
                )
            }
            CompileError::Block {
                function,
                bb,
                source,
            } => write!(f, "'{function}' bb{bb}: {source}"),
            CompileError::Program(e) => write!(f, "{e}"),
            CompileError::DeniedLints(diags) => {
                write!(f, "lint gate: {} error-severity diagnostic(s)", diags.len())?;
                for d in diags {
                    write!(f, "\n{}", clp_lint::render(d))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles and then runs the [`clp_lint`] analyses as a post-codegen
/// gate: any error-severity diagnostic (after `lints` overrides) fails
/// the compile with [`CompileError::DeniedLints`]; surviving warnings
/// and infos are returned alongside the program.
///
/// This is the static half of the paper's execution contract: blocks
/// that would deadlock (no firing exit, an unresolved write or store
/// slot) or corrupt memory order (duplicate LSIDs) are rejected before
/// they ever reach a simulator.
///
/// # Errors
///
/// Any [`CompileError`] from [`compile`], or
/// [`CompileError::DeniedLints`] from the gate.
pub fn compile_with_lints(
    program: &Program,
    opts: &CompileOptions,
    lints: &LintConfig,
) -> Result<(clp_isa::EdgeProgram, clp_lint::LintReport), CompileError> {
    let edge = compile(program, opts)?;
    let report = clp_lint::lint_program(&edge, lints);
    if report.has_errors() {
        let errors = report
            .diagnostics
            .into_iter()
            .filter(|d| d.severity == clp_lint::Severity::Error)
            .collect();
        return Err(CompileError::DeniedLints(errors));
    }
    Ok((edge, report))
}
