//! Block-boundary liveness analysis.
//!
//! Only values that are live across a basic-block boundary ever occupy an
//! architectural register in the EDGE lowering (intra-block values flow
//! through dataflow targets), so this analysis drives both register
//! allocation and `READ`/`WRITE` insertion.

use crate::ir::{Function, Terminator, VReg};
use std::collections::BTreeSet;

/// Live-in/live-out sets per basic block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Liveness {
    /// Registers live at entry of each block.
    pub live_in: Vec<BTreeSet<VReg>>,
    /// Registers live at exit of each block.
    pub live_out: Vec<BTreeSet<VReg>>,
}

impl Liveness {
    /// True if `v` is live across any block boundary.
    #[must_use]
    pub fn crosses_blocks(&self, v: VReg) -> bool {
        self.live_in.iter().any(|s| s.contains(&v))
    }
}

fn transfer(f: &Function, bb: usize, live_out: &BTreeSet<VReg>) -> BTreeSet<VReg> {
    let block = &f.blocks[bb];
    let mut live = live_out.clone();
    // Terminator: kill its defs, add its uses.
    if let Terminator::Call { dst: Some(d), .. } = &block.term {
        live.remove(d);
    }
    for u in block.term.uses(f.link_vreg) {
        live.insert(u);
    }
    // Ops in reverse.
    for op in block.ops.iter().rev() {
        if op.pred.is_empty() {
            if let Some(d) = op.kind.dst() {
                live.remove(&d);
            }
        }
        for u in op.uses() {
            live.insert(u);
        }
    }
    live
}

/// Computes block-boundary liveness for `f` by backward fix-point.
#[must_use]
pub fn liveness(f: &Function) -> Liveness {
    let n = f.blocks.len();
    let mut live_in: Vec<BTreeSet<VReg>> = vec![BTreeSet::new(); n];
    let mut live_out: Vec<BTreeSet<VReg>> = vec![BTreeSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for bb in (0..n).rev() {
            let mut out = BTreeSet::new();
            for s in f.blocks[bb].term.successors() {
                out.extend(live_in[s.0].iter().copied());
            }
            let inn = transfer(f, bb, &out);
            if out != live_out[bb] {
                live_out[bb] = out;
                changed = true;
            }
            if inn != live_in[bb] {
                live_in[bb] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ProgramBuilder};
    use clp_isa::Opcode;

    #[test]
    fn loop_carried_values_are_live() {
        let mut f = FunctionBuilder::new("sum", 2);
        let base = f.param(0);
        let n = f.param(1);
        let i = f.c(0);
        let acc = f.c(0);
        let (h, body, exit) = (f.new_block(), f.new_block(), f.new_block());
        f.jump(h);
        f.switch_to(h);
        let c = f.bin(Opcode::Tlt, i, n);
        f.branch(c, body, exit);
        f.switch_to(body);
        let v = f.load(base, 0);
        f.bin_into(acc, Opcode::Add, acc, v);
        let one = f.c(1);
        f.bin_into(i, Opcode::Add, i, one);
        f.jump(h);
        f.switch_to(exit);
        f.ret(Some(acc));
        let func = f.finish();
        let lv = liveness(&func);
        // i, acc, base, n all live into the loop header.
        for v in [i, acc, base, n] {
            assert!(lv.live_in[h.0].contains(&v), "{v} live into header");
            assert!(lv.crosses_blocks(v));
        }
        // The loop condition c is consumed by the header's branch and is
        // not live into the body (the body doesn't read it).
        assert!(!lv.live_in[body.0].contains(&c));
    }

    #[test]
    fn block_local_temp_not_live() {
        let mut f = FunctionBuilder::new("t", 1);
        let x = f.param(0);
        let t = f.bin(Opcode::Add, x, x);
        let u = f.bin(Opcode::Mul, t, t);
        f.ret(Some(u));
        let func = f.finish();
        let lv = liveness(&func);
        assert!(!lv.crosses_blocks(t));
        assert!(!lv.crosses_blocks(u));
    }

    #[test]
    fn link_vreg_live_until_ret() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare();
        let mut f = FunctionBuilder::new("caller", 0);
        let cont = f.new_block();
        f.call(callee, &[], None, cont);
        f.switch_to(cont);
        f.ret(None);
        let func = f.finish();
        let link = func.link_vreg;
        let lv = liveness(&func);
        // The link register must survive across the call (live into cont).
        assert!(lv.live_in[cont.0].contains(&link));
        assert!(lv.live_in[0].contains(&link));
        let _ = pb;
    }

    #[test]
    fn call_dst_killed_not_live_before() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare();
        let mut f = FunctionBuilder::new("caller", 0);
        let cont = f.new_block();
        let out = f.vreg();
        f.call(callee, &[], Some(out), cont);
        f.switch_to(cont);
        f.ret(Some(out));
        let func = f.finish();
        let lv = liveness(&func);
        assert!(lv.live_in[cont.0].contains(&out));
        assert!(
            !lv.live_in[0].contains(&out),
            "dst defined by the call, not live before it"
        );
    }

    #[test]
    fn predicated_def_does_not_kill() {
        use crate::ir::{Op, OpKind};
        let mut f = FunctionBuilder::new("p", 2);
        let c = f.param(0);
        let x = f.param(1);
        let exit = f.new_block();
        f.jump(exit);
        f.switch_to(exit);
        f.ret(Some(x));
        let mut func = f.finish();
        // Predicated redefinition of x in the entry block.
        func.blocks[0].ops.push(Op {
            pred: vec![(c, true)],
            kind: OpKind::Const { dst: x, value: 1 },
        });
        let lv = liveness(&func);
        assert!(
            lv.live_in[0].contains(&x),
            "old value may flow through the predicated def"
        );
    }
}
