//! The mini intermediate representation consumed by the EDGE compiler.
//!
//! The IR is a conventional CFG over *mutable* virtual registers: an
//! assignment overwrites the register, and a predicated assignment that
//! does not fire leaves the old value in place. This non-SSA convention
//! is what makes if-conversion trivial (no phi nodes are needed: merging
//! a diamond simply predicates both arms' assignments).

use clp_isa::Opcode;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual register.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VReg(pub u32);

impl fmt::Debug for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A basic-block identifier (function-local).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BbId(pub usize);

impl fmt::Debug for BbId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A function identifier (program-local).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub usize);

impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// Memory access width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSize {
    /// One byte, zero-extended.
    Byte,
    /// A 64-bit word.
    Word,
}

impl MemSize {
    /// Width in bytes.
    #[must_use]
    pub fn bytes(self) -> u8 {
        match self {
            MemSize::Byte => 1,
            MemSize::Word => 8,
        }
    }
}

/// A conjunction of `(register, expected-truth)` guards; empty means
/// unconditional. Produced by if-conversion.
pub type Pred = Vec<(VReg, bool)>;

/// One IR operation. Every op may carry a predicate (see [`Pred`]); a
/// predicated op whose guard fails is a no-op (its destination keeps its
/// previous value).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Op {
    /// Guard conjunction (empty = always executes).
    pub pred: Pred,
    /// The operation proper.
    pub kind: OpKind,
}

/// The operation payload of an [`Op`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// `dst = imm`.
    Const {
        /// Destination.
        dst: VReg,
        /// Constant value.
        value: i64,
    },
    /// `dst = f64 constant` (stored as its bit pattern).
    ConstF {
        /// Destination.
        dst: VReg,
        /// Constant value.
        value: f64,
    },
    /// `dst = op a` for unary ALU opcodes.
    Un {
        /// Destination.
        dst: VReg,
        /// The opcode (must have arity 1).
        op: Opcode,
        /// Operand.
        a: VReg,
    },
    /// `dst = a op b` for binary ALU opcodes.
    Bin {
        /// Destination.
        dst: VReg,
        /// The opcode (must have arity 2).
        op: Opcode,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `dst = mem[addr + offset]`.
    Load {
        /// Destination.
        dst: VReg,
        /// Base address register.
        addr: VReg,
        /// Byte offset.
        offset: i64,
        /// Access width.
        size: MemSize,
    },
    /// `mem[addr + offset] = value`.
    Store {
        /// Base address register.
        addr: VReg,
        /// Byte offset.
        offset: i64,
        /// Value register.
        value: VReg,
        /// Access width.
        size: MemSize,
    },
}

impl OpKind {
    /// The destination register, if the op defines one.
    #[must_use]
    pub fn dst(&self) -> Option<VReg> {
        match *self {
            OpKind::Const { dst, .. }
            | OpKind::ConstF { dst, .. }
            | OpKind::Un { dst, .. }
            | OpKind::Bin { dst, .. }
            | OpKind::Load { dst, .. } => Some(dst),
            OpKind::Store { .. } => None,
        }
    }

    /// The registers the op reads (not counting its predicate).
    #[must_use]
    pub fn uses(&self) -> Vec<VReg> {
        match *self {
            OpKind::Const { .. } | OpKind::ConstF { .. } => vec![],
            OpKind::Un { a, .. } => vec![a],
            OpKind::Bin { a, b, .. } => vec![a, b],
            OpKind::Load { addr, .. } => vec![addr],
            OpKind::Store { addr, value, .. } => vec![addr, value],
        }
    }

    /// True for loads and stores.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(self, OpKind::Load { .. } | OpKind::Store { .. })
    }
}

impl Op {
    /// An unpredicated op.
    #[must_use]
    pub fn new(kind: OpKind) -> Self {
        Op { pred: vec![], kind }
    }

    /// All registers this op reads: operands plus guard registers.
    #[must_use]
    pub fn uses(&self) -> Vec<VReg> {
        let mut u = self.kind.uses();
        u.extend(self.pred.iter().map(|&(v, _)| v));
        // A predicated definition may leave the old value: it is also a use.
        if !self.pred.is_empty() {
            if let Some(d) = self.kind.dst() {
                u.push(d);
            }
        }
        u
    }
}

/// A basic-block terminator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BbId),
    /// Two-way branch on `cond != 0`.
    Branch {
        /// Condition register.
        cond: VReg,
        /// Successor when non-zero.
        then_bb: BbId,
        /// Successor when zero.
        else_bb: BbId,
    },
    /// Call `func(args...)`; on return, `dst` (if any) receives the return
    /// value and control continues at `cont`.
    Call {
        /// Callee.
        func: FuncId,
        /// Argument registers (at most 8).
        args: Vec<VReg>,
        /// Register receiving the return value.
        dst: Option<VReg>,
        /// Continuation block.
        cont: BbId,
    },
    /// Return (optionally with a value).
    Ret(Option<VReg>),
    /// Stop the program.
    Halt,
}

impl Terminator {
    /// The registers the terminator reads. `link_vreg` is the function's
    /// implicit link register, consumed by [`Terminator::Ret`].
    #[must_use]
    pub fn uses(&self, link_vreg: VReg) -> Vec<VReg> {
        match self {
            Terminator::Jump(_) | Terminator::Halt => vec![],
            Terminator::Branch { cond, .. } => vec![*cond],
            Terminator::Call { args, .. } => args.clone(),
            Terminator::Ret(v) => {
                let mut u: Vec<VReg> = v.iter().copied().collect();
                u.push(link_vreg);
                u
            }
        }
    }

    /// Successor blocks within the same function.
    #[must_use]
    pub fn successors(&self) -> Vec<BbId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Call { cont, .. } => vec![*cont],
            Terminator::Ret(_) | Terminator::Halt => vec![],
        }
    }
}

/// A basic block: straight-line ops plus a terminator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// The block body.
    pub ops: Vec<Op>,
    /// The terminator.
    pub term: Terminator,
}

/// A function: a CFG over virtual registers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Human-readable name.
    pub name: String,
    /// Number of parameters (passed in `r1..`; at most 8).
    pub n_params: usize,
    /// Parameter virtual registers (`params[i]` holds argument `i`).
    pub params: Vec<VReg>,
    /// The implicit link (return address) virtual register.
    pub link_vreg: VReg,
    /// Total virtual registers allocated (IDs `0..n_vregs`).
    pub n_vregs: u32,
    /// Basic blocks, indexed by [`BbId`].
    pub blocks: Vec<BasicBlock>,
    /// The entry block.
    pub entry: BbId,
}

impl Function {
    /// The basic block `id`.
    #[must_use]
    pub fn block(&self, id: BbId) -> &BasicBlock {
        &self.blocks[id.0]
    }

    /// Predecessor counts for every block.
    #[must_use]
    pub fn pred_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.blocks.len()];
        for b in &self.blocks {
            for s in b.term.successors() {
                counts[s.0] += 1;
            }
        }
        counts
    }
}

/// A whole program: functions plus an entry function.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// All functions, indexed by [`FuncId`].
    pub functions: Vec<Function>,
    /// The function executed first; its `Ret` halts the program.
    pub entry: FuncId,
}

impl Program {
    /// The function `id`.
    #[must_use]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0]
    }

    /// Looks up a function by name.
    #[must_use]
    pub fn function_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i), f))
    }

    /// Total static IR operation count.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.functions
            .iter()
            .map(|f| f.blocks.iter().map(|b| b.ops.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_uses_include_predicates_and_may_def() {
        let mut op = Op::new(OpKind::Bin {
            dst: VReg(3),
            op: Opcode::Add,
            a: VReg(1),
            b: VReg(2),
        });
        assert_eq!(op.uses(), vec![VReg(1), VReg(2)]);
        op.pred = vec![(VReg(9), true)];
        let uses = op.uses();
        assert!(uses.contains(&VReg(9)), "guard is a use");
        assert!(uses.contains(&VReg(3)), "predicated def is a may-use");
    }

    #[test]
    fn store_has_no_dst() {
        let k = OpKind::Store {
            addr: VReg(0),
            offset: 8,
            value: VReg(1),
            size: MemSize::Word,
        };
        assert_eq!(k.dst(), None);
        assert!(k.is_memory());
        assert_eq!(k.uses(), vec![VReg(0), VReg(1)]);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BbId(3)).successors(), vec![BbId(3)]);
        assert_eq!(
            Terminator::Branch {
                cond: VReg(0),
                then_bb: BbId(1),
                else_bb: BbId(2)
            }
            .successors(),
            vec![BbId(1), BbId(2)]
        );
        assert!(Terminator::Halt.successors().is_empty());
    }

    #[test]
    fn ret_uses_link() {
        let t = Terminator::Ret(Some(VReg(4)));
        let uses = t.uses(VReg(99));
        assert!(uses.contains(&VReg(4)));
        assert!(uses.contains(&VReg(99)));
    }
}
