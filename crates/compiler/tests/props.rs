//! Property tests for the compiler passes: placement is a semantics-
//! preserving permutation, liveness is sound, hyperblock formation
//! preserves interpreter results, and compilation is deterministic.

use clp_compiler::hyperblock::{form_hyperblocks, FormerOptions};
use clp_compiler::{
    compile, interpret, liveness, placement, CompileOptions, FunctionBuilder, ProgramBuilder,
};
use clp_isa::{BlockBuilder, BranchKind, Opcode, Reg};
use clp_mem::MemoryImage;
use proptest::prelude::*;

/// Builds a random dataflow block from a straight-line recipe.
fn build_block(ops: &[(u8, u8, u8)], nwrites: usize) -> Vec<clp_isa::Instruction> {
    let mut b = BlockBuilder::new(0);
    let mut vals = vec![b.movi(1), b.movi(2)];
    for &(k, xa, xb) in ops {
        let a = vals[xa as usize % vals.len()];
        let c = vals[xb as usize % vals.len()];
        let op = [Opcode::Add, Opcode::Sub, Opcode::Xor, Opcode::And][k as usize % 4];
        vals.push(b.op2(op, a, c));
    }
    for w in 0..nwrites.max(1) {
        let v = vals[w % vals.len()];
        b.write(Reg::new(w), v);
    }
    b.branch(BranchKind::Halt, None, 0);
    b.into_instructions()
}

/// The dataflow graph as a canonical set of (producer-op, consumer-op,
/// slot) edges, identified by opcode+imm multiset structure. Placement
/// must preserve this graph up to renumbering.
fn edge_fingerprint(insts: &[clp_isa::Instruction]) -> Vec<(String, String, u8)> {
    let label = |i: usize| format!("{:?}#{}", insts[i].opcode, insts[i].imm);
    let mut edges: Vec<(String, String, u8)> = insts
        .iter()
        .enumerate()
        .flat_map(|(i, inst)| {
            inst.targets()
                .map(move |t| (label(i), label(t.inst.index()), t.operand.encode()))
                .collect::<Vec<_>>()
        })
        .collect();
    edges.sort();
    edges
}

proptest! {
    /// Placement permutes instructions without changing the dataflow
    /// graph, and the result still validates as a block.
    #[test]
    fn placement_preserves_dataflow(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..40),
        nwrites in 1usize..6,
        log_cores in 0u32..6,
    ) {
        let insts = build_block(&ops, nwrites);
        let before = edge_fingerprint(&insts);
        let placed = placement::schedule(insts, 1 << log_cores);
        let after = edge_fingerprint(&placed);
        prop_assert_eq!(before, after, "dataflow graph changed");
        clp_isa::Block::from_instructions(0, placed).expect("still a valid block");
    }

    /// Liveness soundness: every register READ the generated code
    /// performs names a register that liveness declared live-in for that
    /// block... approximated end-to-end: compiling with hyperblocks ON
    /// and OFF gives interpreter-identical programs.
    #[test]
    fn formation_preserves_semantics(
        seed in 0u64..500,
        trips in 1u64..12,
    ) {
        // A small loop with a data-dependent branch inside.
        let mut f = FunctionBuilder::new("p", 2);
        let s0 = f.param(0);
        let n = f.param(1);
        let acc = f.c(0);
        let i = f.c(0);
        let (h, body, odd, even, tail, exit) = (
            f.new_block(), f.new_block(), f.new_block(),
            f.new_block(), f.new_block(), f.new_block(),
        );
        f.jump(h);
        f.switch_to(h);
        let c = f.bin(Opcode::Tlt, i, n);
        f.branch(c, body, exit);
        f.switch_to(body);
        let mixed = f.bin(Opcode::Xor, acc, s0);
        let one = f.c(1);
        let bit = f.bin(Opcode::And, mixed, one);
        f.branch(bit, odd, even);
        f.switch_to(odd);
        let three = f.c(3);
        f.bin_into(acc, Opcode::Mul, mixed, three);
        f.jump(tail);
        f.switch_to(even);
        let five = f.c(5);
        f.bin_into(acc, Opcode::Add, mixed, five);
        f.jump(tail);
        f.switch_to(tail);
        f.bin_into(i, Opcode::Add, i, one);
        f.jump(h);
        f.switch_to(exit);
        f.ret(Some(acc));
        let mut pb = ProgramBuilder::new();
        let id = pb.add_function(f.finish());
        let program = pb.finish(id);

        let mut img = MemoryImage::new();
        let golden = interpret(&program, &[seed, trips], &mut img, 1_000_000)
            .expect("terminates");

        for disabled in [false, true] {
            let mut opts = CompileOptions::default();
            opts.former.disabled = disabled;
            let edge = compile(&program, &opts).expect("compiles");
            // Execute through the cycle simulator at 1 core (cheap) to
            // check functional equality.
            let mut cfg = clp_sim::SimConfig::tflex();
            cfg.max_cycles = 5_000_000;
            let mut m = clp_sim::Machine::new(cfg);
            let pid = m.compose(1, 0, edge, &[seed, trips]).expect("composes");
            m.run().expect("runs");
            prop_assert_eq!(
                Some(m.register(pid, Reg::new(1))),
                golden.ret,
                "former.disabled={} diverged", disabled
            );
        }
    }

    /// Compilation is deterministic: same program, same binary.
    #[test]
    fn compilation_is_deterministic(n in 1i64..50) {
        let mut f = FunctionBuilder::new("d", 1);
        let x = f.param(0);
        let k = f.c(n);
        let y = f.bin(Opcode::Mul, x, k);
        f.ret(Some(y));
        let mut pb = ProgramBuilder::new();
        let id = pb.add_function(f.finish());
        let program = pb.finish(id);
        let a = compile(&program, &CompileOptions::default()).expect("compiles");
        let b = compile(&program, &CompileOptions::default()).expect("compiles");
        prop_assert_eq!(a, b);
    }

    /// The former never duplicates or loses IR operations: total op count
    /// across surviving hyperblocks equals the function's op count.
    #[test]
    fn formation_conserves_ops(arms in 1usize..5) {
        let mut f = FunctionBuilder::new("c", 1);
        let x = f.param(0);
        let mut join_blocks = Vec::new();
        for _ in 0..arms {
            let (t, e, j) = (f.new_block(), f.new_block(), f.new_block());
            let one = f.c(1);
            let c = f.bin(Opcode::And, x, one);
            f.branch(c, t, e);
            f.switch_to(t);
            let _ = f.bin(Opcode::Add, x, x);
            f.jump(j);
            f.switch_to(e);
            let _ = f.bin(Opcode::Mul, x, x);
            f.jump(j);
            f.switch_to(j);
            join_blocks.push(j);
        }
        f.ret(Some(x));
        let func = f.finish();
        let total: usize = func.blocks.iter().map(|b| b.ops.len()).sum();
        let hir = form_hyperblocks(&func, &FormerOptions::default());
        let hir_total: usize = hir
            .blocks
            .iter()
            .flatten()
            .map(|b| b.ops.len())
            .sum();
        prop_assert_eq!(total, hir_total);
        // Liveness is computable on the same function (smoke).
        let lv = liveness::liveness(&func);
        prop_assert_eq!(lv.live_in.len(), func.blocks.len());
    }
}
