//! Negative-path tests: the compiler reports structured errors instead
//! of panicking or silently miscompiling.

use clp_compiler::{compile, CompileError, CompileOptions, FunctionBuilder, ProgramBuilder};
use clp_isa::Opcode;

#[test]
fn cont_block_reached_by_jump_is_rejected() {
    // A call continuation that is also a jump target breaks the
    // caller-save reload convention.
    let mut pb = ProgramBuilder::new();
    let callee = {
        let mut f = FunctionBuilder::new("callee", 0);
        f.ret(None);
        pb.add_function(f.finish())
    };
    let mut f = FunctionBuilder::new("caller", 1);
    let x = f.param(0);
    let (callb, jumper, cont) = (f.new_block(), f.new_block(), f.new_block());
    f.branch(x, callb, jumper);
    f.switch_to(callb);
    f.call(callee, &[], None, cont);
    f.switch_to(jumper);
    f.jump(cont); // illegal: jumps into the continuation
    f.switch_to(cont);
    f.ret(None);
    let id = pb.add_function(f.finish());
    let err = compile(&pb.finish(id), &CompileOptions::default()).unwrap_err();
    assert!(
        matches!(err, CompileError::ContIsJumpTarget { .. }),
        "{err}"
    );
}

#[test]
fn register_pressure_is_reported() {
    // 130 values simultaneously live across a block boundary cannot be
    // colored into r9..r119.
    let mut f = FunctionBuilder::new("pressure", 1);
    let x = f.param(0);
    let vals: Vec<_> = (0..130)
        .map(|i| {
            let k = f.c(i);
            f.bin(Opcode::Add, x, k)
        })
        .collect();
    let next = f.new_block();
    f.jump(next);
    f.switch_to(next);
    let mut acc = vals[0];
    for &v in &vals[1..] {
        acc = f.bin(Opcode::Xor, acc, v);
    }
    f.ret(Some(acc));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let err = compile(&pb.finish(id), &CompileOptions::default()).unwrap_err();
    let CompileError::RegPressure(e) = err else {
        panic!("expected register pressure, got {err}");
    };
    assert!(e.needed > e.available);
    assert!(e.to_string().contains("pressure"));
}

#[test]
fn lsid_overflow_in_one_ir_block_is_reported() {
    // A single IR block with 40 loads cannot fit the 32-LSID budget even
    // with hyperblock formation disabled.
    let mut f = FunctionBuilder::new("mem_heavy", 1);
    let base = f.param(0);
    let mut acc = f.c(0);
    for i in 0..40 {
        let v = f.load(base, 8 * i);
        acc = f.bin(Opcode::Add, acc, v);
    }
    f.ret(Some(acc));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let err = compile(&pb.finish(id), &CompileOptions::default()).unwrap_err();
    assert!(matches!(err, CompileError::LsidOverflow { .. }), "{err}");
}

#[test]
fn oversized_single_block_is_reported() {
    // ~200 dependent ALU ops in one IR block exceed 128 EDGE slots no
    // matter what the former does.
    let mut f = FunctionBuilder::new("huge", 1);
    let x = f.param(0);
    let mut acc = x;
    for _ in 0..200 {
        acc = f.bin(Opcode::Add, acc, x);
    }
    f.ret(Some(acc));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let err = compile(&pb.finish(id), &CompileOptions::default()).unwrap_err();
    match err {
        CompileError::Block { source, .. } => {
            assert!(matches!(
                source,
                clp_isa::BlockError::TooManyInstructions(_)
            ));
        }
        CompileError::BlockTooLarge { .. } => {}
        other => panic!("expected a size error, got {other}"),
    }
}

#[test]
fn errors_render_helpfully() {
    let e = CompileError::LsidOverflow {
        function: "f".into(),
        bb: 3,
    };
    assert!(e.to_string().contains("32 load/store IDs"));
    let e = CompileError::ContIsJumpTarget {
        function: "g".into(),
        bb: 1,
    };
    assert!(e.to_string().contains("continuation"));
}
