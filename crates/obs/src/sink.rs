//! Trace sinks and the [`Tracer`] handle that feeds them.

use crate::event::TraceEvent;
use serde::Value;
use std::collections::VecDeque;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A consumer of cycle-stamped [`TraceEvent`]s.
pub trait TraceSink: Send {
    /// Records one event. `cycle` is the machine cycle the event occurred
    /// on; within one run, calls arrive with non-decreasing cycles.
    fn record(&mut self, cycle: u64, event: TraceEvent);

    /// Finalizes the sink (e.g. writes buffered output). Called once when
    /// the run ends; implementations must tolerate repeated calls.
    fn finish(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A sink that drops every event.
///
/// Used by the bench guard to prove the emission hooks cost nothing
/// beyond the `Tracer`'s branch: recording through a `NullSink` performs
/// no allocation and no work.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn record(&mut self, _cycle: u64, _event: TraceEvent) {}
}

/// An in-memory ring buffer keeping the most recent `capacity` events.
#[derive(Debug)]
pub struct RingRecorder {
    buf: VecDeque<(u64, TraceEvent)>,
    capacity: usize,
    dropped: u64,
}

impl RingRecorder {
    /// A recorder holding at most `capacity` events (oldest evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingRecorder capacity must be positive");
        RingRecorder {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, TraceEvent)> {
        self.buf.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, cycle: u64, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back((cycle, event));
    }
}

/// Writes the run as Chrome trace-event JSON, loadable in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing`.
///
/// Block lifecycles become async begin/end pairs (`ph: "b"`/`"e"`) so a
/// block renders as a span from fetch to commit/flush; everything else
/// is an instant (`ph: "i"`). One simulated cycle maps to one
/// microsecond of trace time.
pub struct ChromeTraceWriter {
    path: PathBuf,
    events: Vec<Value>,
    written: bool,
}

impl ChromeTraceWriter {
    /// A writer that will emit JSON to `path` on [`TraceSink::finish`].
    #[must_use]
    pub fn new(path: impl AsRef<Path>) -> Self {
        ChromeTraceWriter {
            path: path.as_ref().to_path_buf(),
            events: Vec::new(),
            written: false,
        }
    }

    fn push(&mut self, cycle: u64, ph: &str, name: String, ev: &TraceEvent, id: Option<u64>) {
        let (pid, tid) = ev.track();
        let mut obj = vec![
            ("name".to_string(), Value::String(name)),
            ("cat".to_string(), Value::String(ev.category().to_string())),
            ("ph".to_string(), Value::String(ph.to_string())),
            ("ts".to_string(), Value::UInt(cycle)),
            ("pid".to_string(), Value::UInt(pid)),
            ("tid".to_string(), Value::UInt(tid)),
        ];
        if let Some(id) = id {
            obj.push(("id".to_string(), Value::String(format!("{id:#x}"))));
        }
        if ph == "i" {
            // Thread-scoped instant.
            obj.push(("s".to_string(), Value::String("t".to_string())));
        }
        let args: Vec<(String, Value)> = ev
            .args()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        obj.push(("args".to_string(), Value::Object(args)));
        self.events.push(Value::Object(obj));
    }

    /// Number of buffered trace records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for ChromeTraceWriter {
    fn record(&mut self, cycle: u64, event: TraceEvent) {
        match event {
            TraceEvent::BlockFetched { proc, addr, .. } => {
                // Async span: opened at fetch, closed at commit/flush.
                let id = addr ^ ((proc as u64) << 48);
                self.push(cycle, "b", format!("block {addr:#x}"), &event, Some(id));
            }
            TraceEvent::BlockCommitted { proc, addr, .. }
            | TraceEvent::BlockFlushed { proc, addr, .. } => {
                let id = addr ^ ((proc as u64) << 48);
                self.push(cycle, "e", format!("block {addr:#x}"), &event, Some(id));
                // Also drop an instant so the cause is visible at a glance.
                self.push(cycle, "i", event.kind().to_string(), &event, None);
            }
            TraceEvent::ProfileBuckets { .. } => {
                // Counter sample: Perfetto draws one stacked counter
                // track per bucket from the args object.
                self.push(cycle, "C", event.kind().to_string(), &event, None);
            }
            _ => self.push(cycle, "i", event.kind().to_string(), &event, None),
        }
    }

    fn finish(&mut self) -> std::io::Result<()> {
        if self.written {
            return Ok(());
        }
        let doc = Value::Object(vec![
            (
                "traceEvents".to_string(),
                Value::Array(std::mem::take(&mut self.events)),
            ),
            (
                "displayTimeUnit".to_string(),
                Value::String("ms".to_string()),
            ),
        ]);
        let text = serde_json::to_string(&doc)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(&self.path, text)?;
        self.written = true;
        Ok(())
    }
}

impl fmt::Debug for ChromeTraceWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChromeTraceWriter")
            .field("path", &self.path)
            .field("events", &self.events.len())
            .finish()
    }
}

/// The cheap, cloneable handle subsystems emit through.
///
/// `Tracer::off()` is the default everywhere: one `Option` check and the
/// event-constructing closure never runs, so an untraced run pays a
/// single predictable branch per hook. When tracing is on, all clones
/// share one sink behind a mutex (the simulator is single-threaded per
/// machine; the lock is uncontended).
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<Mutex<dyn TraceSink>>>);

impl Tracer {
    /// A disabled tracer (all hooks become a single branch).
    #[must_use]
    pub fn off() -> Self {
        Tracer(None)
    }

    /// A tracer feeding `sink`.
    #[must_use]
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        Tracer(Some(Arc::new(Mutex::new(sink))))
    }

    /// A tracer sharing an existing sink handle (lets the caller keep
    /// access to the sink, e.g. to inspect a [`RingRecorder`] afterwards).
    #[must_use]
    pub fn shared(sink: Arc<Mutex<dyn TraceSink>>) -> Self {
        Tracer(Some(sink))
    }

    /// Whether a sink is attached.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records the event produced by `make` — which is only invoked when
    /// a sink is attached, keeping the disabled path free of event
    /// construction.
    #[inline]
    pub fn emit(&self, cycle: u64, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.0 {
            sink.lock()
                .expect("trace sink poisoned")
                .record(cycle, make());
        }
    }

    /// Finalizes the sink (writes buffered output for file-backed sinks).
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error, if any.
    pub fn finish(&self) -> std::io::Result<()> {
        match &self.0 {
            Some(sink) => sink.lock().expect("trace sink poisoned").finish(),
            None => Ok(()),
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tracer({})", if self.enabled() { "on" } else { "off" })
    }
}
