//! clp-diff: structural comparison of two runs' measurement documents.
//!
//! Two cycle counts that differ tell you *that* something moved;
//! attribution tells you *what*. This module diffs any pair of the
//! pinned JSON documents the stack emits — a stats-registry snapshot, a
//! `clp-prof-v1` profile, a `clp-bench-v1` suite matrix, a
//! `clp-trend-v1` time series, or a `clp-scope-v1` service report — and
//! attributes the cycle delta to the cycle-accounting buckets, the
//! cores, and the NoC links that moved, sorted by magnitude with fixed
//! tie-breaks.
//!
//! `clp-bench --check --explain` uses [`attribute_buckets`] to turn a
//! bare threshold miss into an explanation; the `clp-diff` binary wraps
//! [`diff_documents`] for any two files.

use crate::profile::Bucket;
use serde::Value;

/// Which pinned document schema a JSON value carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DocKind {
    /// A serialized `StatsSnapshot` (stats-registry tree).
    Snapshot,
    /// A `clp-prof-v1` profile (bare report or the CLI's `runs` wrapper).
    Prof,
    /// A `clp-bench-v1` suite matrix (`BENCH_baseline.json`).
    Bench,
    /// A `clp-trend-v1` time series.
    Trend,
    /// A `clp-scope-v1` service observability report.
    Scope,
}

impl DocKind {
    /// Stable label for rendering.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DocKind::Snapshot => "stats-snapshot",
            DocKind::Prof => "clp-prof-v1",
            DocKind::Bench => "clp-bench-v1",
            DocKind::Trend => "clp-trend-v1",
            DocKind::Scope => "clp-scope-v1",
        }
    }
}

/// Identifies which pinned schema `doc` carries.
#[must_use]
pub fn detect_kind(doc: &Value) -> Option<DocKind> {
    match doc.get("schema").as_str() {
        Some("clp-prof-v1") => return Some(DocKind::Prof),
        Some("clp-bench-v1") => return Some(DocKind::Bench),
        Some("clp-trend-v1") => return Some(DocKind::Trend),
        Some("clp-scope-v1") => return Some(DocKind::Scope),
        _ => {}
    }
    // A snapshot has no schema tag; recognize its fixed shape.
    if doc.get("root").get("name").as_str().is_some() && doc.get("cycles").as_u64().is_some() {
        return Some(DocKind::Snapshot);
    }
    None
}

/// One attributed difference: a labeled quantity that moved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffEntry {
    /// What moved (bucket label, `core 7`, `link 3 -> 7`, or a
    /// stats-registry path).
    pub label: String,
    /// Value in the first (baseline) document.
    pub before: u64,
    /// Value in the second document.
    pub after: u64,
}

impl DiffEntry {
    /// Signed movement `after - before`.
    #[must_use]
    pub fn delta(&self) -> i64 {
        self.after as i64 - self.before as i64
    }
}

/// Where a cycle delta went: the buckets, cores, links, and counters
/// that moved between two documents.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AttributionReport {
    /// The schemas compared (label of [`DocKind`]).
    pub kind: String,
    /// Total cycles `(before, after)` when both documents carry one.
    pub cycles: Option<(u64, u64)>,
    /// Cycle-accounting buckets that moved, by |delta| descending.
    pub buckets: Vec<DiffEntry>,
    /// Per-core critical-cycle attribution that moved.
    pub cores: Vec<DiffEntry>,
    /// Directed NoC links whose critical cycles moved.
    pub links: Vec<DiffEntry>,
    /// Other counters that moved (stats paths, bench cells).
    pub metrics: Vec<DiffEntry>,
}

/// Sorts entries by |delta| descending, then label ascending (fixed
/// tie-break), and drops entries that did not move.
fn rank(mut entries: Vec<DiffEntry>) -> Vec<DiffEntry> {
    entries.retain(|e| e.before != e.after);
    entries.sort_by(|a, b| {
        b.delta()
            .unsigned_abs()
            .cmp(&a.delta().unsigned_abs())
            .then(a.label.cmp(&b.label))
    });
    entries
}

impl AttributionReport {
    /// Whether nothing moved at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
            && self.cores.is_empty()
            && self.links.is_empty()
            && self.metrics.is_empty()
    }

    /// Human-readable attribution, largest movers first. `top` bounds
    /// each section (0 means unbounded).
    #[must_use]
    pub fn render(&self, top: usize) -> String {
        let take = |v: &[DiffEntry]| -> Vec<DiffEntry> {
            let n = if top == 0 { v.len() } else { top.min(v.len()) };
            v[..n].to_vec()
        };
        let mut out = String::new();
        if let Some((b, a)) = self.cycles {
            let d = a as i64 - b as i64;
            out.push_str(&format!("cycles: {b} -> {a} ({d:+})\n"));
        }
        let mut section = |title: &str, entries: &[DiffEntry]| {
            if entries.is_empty() {
                return;
            }
            out.push_str(&format!("{title}:\n"));
            for e in take(entries) {
                out.push_str(&format!(
                    "  {:<24} {:>10} -> {:<10} ({:+})\n",
                    e.label,
                    e.before,
                    e.after,
                    e.delta()
                ));
            }
        };
        section("buckets", &self.buckets);
        section("cores", &self.cores);
        section("links", &self.links);
        section("metrics", &self.metrics);
        if self.is_empty() {
            out.push_str("(no movement attributed)\n");
        }
        out
    }
}

/// Diffs two bucket objects (`{"fetch": 1, ...}`), returning the moved
/// buckets ranked by |delta|. Used directly by `clp-bench --explain`.
#[must_use]
pub fn attribute_buckets(before: &Value, after: &Value) -> Vec<DiffEntry> {
    let get = |v: &Value, label: &str| v.get(label).as_u64().unwrap_or(0);
    rank(
        Bucket::ALL
            .iter()
            .map(|b| DiffEntry {
                label: b.label().to_string(),
                before: get(before, b.label()),
                after: get(after, b.label()),
            })
            .collect(),
    )
}

/// Diffs two documents of the same pinned schema.
///
/// # Errors
///
/// Returns a message if either document's schema is unrecognized or the
/// two schemas differ.
pub fn diff_documents(a: &Value, b: &Value) -> Result<AttributionReport, String> {
    let ka = detect_kind(a).ok_or_else(|| "first document has no recognized schema".to_string())?;
    let kb =
        detect_kind(b).ok_or_else(|| "second document has no recognized schema".to_string())?;
    if ka != kb {
        return Err(format!("cannot diff {} against {}", ka.label(), kb.label()));
    }
    let mut report = match ka {
        DocKind::Snapshot => diff_snapshots(a, b),
        DocKind::Prof => diff_profiles(a, b),
        DocKind::Bench => diff_bench(a, b),
        DocKind::Trend => diff_trend(a, b),
        DocKind::Scope => diff_scope(a, b),
    };
    report.kind = ka.label().to_string();
    Ok(report)
}

// -- snapshot trees ---------------------------------------------------------

/// Collects every `Count` metric of a serialized `StatsNode` into
/// `(path, value)` pairs.
fn flatten_counts(node: &Value, prefix: &str, out: &mut Vec<(String, u64)>) {
    if let Some(metrics) = node.get("metrics").as_array() {
        for m in metrics {
            let Some(name) = m.get("name").as_str() else {
                continue;
            };
            // MetricValue serializes as {"Count": n} or {"Gauge": x}.
            if let Some(c) = m.get("value").get("Count").as_u64() {
                let path = if prefix.is_empty() {
                    name.to_string()
                } else {
                    format!("{prefix}/{name}")
                };
                out.push((path, c));
            }
        }
    }
    if let Some(children) = node.get("children").as_array() {
        for c in children {
            let Some(name) = c.get("name").as_str() else {
                continue;
            };
            let path = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}/{name}")
            };
            flatten_counts(c, &path, out);
        }
    }
}

fn paired(before: &[(String, u64)], after: &[(String, u64)]) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    for (path, b) in before {
        let a = after
            .iter()
            .find(|(p, _)| p == path)
            .map(|&(_, v)| v)
            .unwrap_or(0);
        out.push(DiffEntry {
            label: path.clone(),
            before: *b,
            after: a,
        });
    }
    for (path, a) in after {
        if !before.iter().any(|(p, _)| p == path) {
            out.push(DiffEntry {
                label: path.clone(),
                before: 0,
                after: *a,
            });
        }
    }
    out
}

fn diff_snapshots(a: &Value, b: &Value) -> AttributionReport {
    let mut fa = Vec::new();
    let mut fb = Vec::new();
    flatten_counts(a.get("root"), "", &mut fa);
    flatten_counts(b.get("root"), "", &mut fb);
    let all = paired(&fa, &fb);
    // Profile buckets (present when the run was profiled) get their own
    // section; everything else lands in metrics.
    let is_bucket = |label: &str| {
        label
            .strip_prefix("profile/buckets/")
            .is_some_and(|l| Bucket::ALL.iter().any(|b| b.label() == l))
    };
    let (bucket_entries, metrics): (Vec<_>, Vec<_>) =
        all.into_iter().partition(|e| is_bucket(&e.label));
    let buckets = bucket_entries
        .into_iter()
        .map(|e| DiffEntry {
            label: e.label.trim_start_matches("profile/buckets/").to_string(),
            ..e
        })
        .collect();
    AttributionReport {
        cycles: match (a.get("cycles").as_u64(), b.get("cycles").as_u64()) {
            (Some(x), Some(y)) => Some((x, y)),
            _ => None,
        },
        buckets: rank(buckets),
        metrics: rank(metrics),
        ..AttributionReport::default()
    }
}

// -- clp-prof reports -------------------------------------------------------

/// Extracts the bare report object, unwrapping the CLI's
/// `{"runs": [{"profile": ...}]}` shape down to its first run.
fn prof_report(doc: &Value) -> Value {
    if let Some(runs) = doc.get("runs").as_array() {
        if let Some(first) = runs.first() {
            return first.get("profile").clone();
        }
    }
    doc.clone()
}

fn summed_run_buckets(report: &Value) -> Value {
    let mut sums = vec![0u64; Bucket::ALL.len()];
    if let Some(procs) = report.get("procs").as_array() {
        for p in procs {
            for (i, b) in Bucket::ALL.iter().enumerate() {
                sums[i] += p.get("run_buckets").get(b.label()).as_u64().unwrap_or(0);
            }
        }
    }
    Value::Object(
        Bucket::ALL
            .iter()
            .zip(sums)
            .map(|(b, s)| (b.label().to_string(), Value::UInt(s)))
            .collect(),
    )
}

fn diff_profiles(a: &Value, b: &Value) -> AttributionReport {
    let (ra, rb) = (prof_report(a), prof_report(b));
    let buckets = attribute_buckets(&summed_run_buckets(&ra), &summed_run_buckets(&rb));
    let core_list = |r: &Value| -> Vec<u64> {
        r.get("cores")
            .as_array()
            .map(|v| v.iter().map(|c| c.as_u64().unwrap_or(0)).collect())
            .unwrap_or_default()
    };
    let (ca, cb) = (core_list(&ra), core_list(&rb));
    let cores = rank(
        (0..ca.len().max(cb.len()))
            .map(|i| DiffEntry {
                label: format!("core {i}"),
                before: ca.get(i).copied().unwrap_or(0),
                after: cb.get(i).copied().unwrap_or(0),
            })
            .collect(),
    );
    let link_list = |r: &Value| -> Vec<(String, u64)> {
        r.get("links")
            .as_array()
            .map(|v| {
                v.iter()
                    .filter_map(|l| {
                        let from = l.get("from").as_u64()?;
                        let to = l.get("to").as_u64()?;
                        let cycles = l.get("cycles").as_u64()?;
                        Some((format!("link {from} -> {to}"), cycles))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let links = rank(paired(&link_list(&ra), &link_list(&rb)));
    AttributionReport {
        cycles: match (ra.get("elapsed").as_u64(), rb.get("elapsed").as_u64()) {
            (Some(x), Some(y)) => Some((x, y)),
            _ => None,
        },
        buckets,
        cores,
        links,
        ..AttributionReport::default()
    }
}

// -- clp-bench matrices -----------------------------------------------------

/// Cells of a `clp-bench-v1` document as
/// `(workload x cores, cycles, buckets)`.
fn bench_cells(doc: &Value) -> Vec<(String, u64, Value)> {
    let mut out = Vec::new();
    if let Some(workloads) = doc.get("workloads").as_array() {
        for w in workloads {
            let Some(name) = w.get("name").as_str() else {
                continue;
            };
            if let Some(runs) = w.get("runs").as_array() {
                for r in runs {
                    if let (Some(cores), Some(cycles)) =
                        (r.get("cores").as_u64(), r.get("cycles").as_u64())
                    {
                        out.push((format!("{name} x{cores}"), cycles, r.get("buckets").clone()));
                    }
                }
            }
        }
    }
    out
}

fn diff_bench(a: &Value, b: &Value) -> AttributionReport {
    let (ca, cb) = (bench_cells(a), bench_cells(b));
    let mut metrics = Vec::new();
    let mut bucket_sums: Vec<DiffEntry> = Bucket::ALL
        .iter()
        .map(|b| DiffEntry {
            label: b.label().to_string(),
            before: 0,
            after: 0,
        })
        .collect();
    for (label, before, before_buckets) in &ca {
        let Some((_, after, after_buckets)) = cb.iter().find(|(l, ..)| l == label) else {
            continue;
        };
        metrics.push(DiffEntry {
            label: label.clone(),
            before: *before,
            after: *after,
        });
        if before == after {
            continue;
        }
        // Aggregate bucket movement over the cells that moved.
        for (i, b) in Bucket::ALL.iter().enumerate() {
            bucket_sums[i].before += before_buckets.get(b.label()).as_u64().unwrap_or(0);
            bucket_sums[i].after += after_buckets.get(b.label()).as_u64().unwrap_or(0);
        }
    }
    AttributionReport {
        buckets: rank(bucket_sums),
        metrics: rank(metrics),
        ..AttributionReport::default()
    }
}

// -- clp-trend series -------------------------------------------------------

fn diff_trend(a: &Value, b: &Value) -> AttributionReport {
    let bucket_totals = |doc: &Value| -> Value {
        Value::Object(
            Bucket::ALL
                .iter()
                .map(|bk| {
                    let total = doc
                        .get("buckets")
                        .get(bk.label())
                        .as_array()
                        .map(|v| v.iter().map(|x| x.as_u64().unwrap_or(0)).sum())
                        .unwrap_or(0u64);
                    (bk.label().to_string(), Value::UInt(total))
                })
                .collect(),
        )
    };
    let scalar = |doc: &Value, key: &str| doc.get(key).as_u64().unwrap_or(0);
    let metrics = rank(
        ["intervals", "period"]
            .iter()
            .map(|k| DiffEntry {
                label: k.to_string(),
                before: scalar(a, k),
                after: scalar(b, k),
            })
            .chain(std::iter::once(DiffEntry {
                label: "phases".to_string(),
                before: a.get("phases").as_array().map_or(0, |p| p.len() as u64),
                after: b.get("phases").as_array().map_or(0, |p| p.len() as u64),
            }))
            .collect(),
    );
    AttributionReport {
        cycles: Some((scalar(a, "cycles"), scalar(b, "cycles"))),
        buckets: attribute_buckets(&bucket_totals(a), &bucket_totals(b)),
        metrics,
        ..AttributionReport::default()
    }
}

// -- clp-scope service reports ----------------------------------------------

fn diff_scope(a: &Value, b: &Value) -> AttributionReport {
    // Fleet attribution: total simulated cycles, the fleet bucket book,
    // and the per-class / per-composition-size rollups as metrics.
    let rollups = |doc: &Value| -> Vec<(String, u64)> {
        let mut out = Vec::new();
        if let Some(classes) = doc.get("fleet").get("by_class").as_array() {
            for c in classes {
                if let (Some(l), Some(cyc)) = (c.get("label").as_str(), c.get("sim_cycles").as_u64())
                {
                    out.push((format!("class {l}"), cyc));
                }
            }
        }
        if let Some(sizes) = doc.get("fleet").get("by_cores").as_array() {
            for c in sizes {
                if let (Some(n), Some(cyc)) = (c.get("cores").as_u64(), c.get("sim_cycles").as_u64())
                {
                    out.push((format!("composition x{n}"), cyc));
                }
            }
        }
        for (label, key) in [("workers", "workers"), ("drained_at", "drained_at")] {
            out.push((label.to_string(), doc.get(key).as_u64().unwrap_or(0)));
        }
        out.push((
            "jobs".to_string(),
            doc.get("jobs").as_array().map_or(0, |j| j.len() as u64),
        ));
        out.push((
            "completed".to_string(),
            doc.get("fleet").get("jobs").as_u64().unwrap_or(0),
        ));
        out
    };
    AttributionReport {
        cycles: match (
            a.get("fleet").get("sim_cycles").as_u64(),
            b.get("fleet").get("sim_cycles").as_u64(),
        ) {
            (Some(x), Some(y)) => Some((x, y)),
            _ => None,
        },
        buckets: attribute_buckets(a.get("fleet").get("buckets"), b.get("fleet").get("buckets")),
        metrics: rank(paired(&rollups(a), &rollups(b))),
        ..AttributionReport::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket_obj(pairs: &[(&str, u64)]) -> Value {
        Value::Object(
            pairs
                .iter()
                .map(|&(k, v)| (k.to_string(), Value::UInt(v)))
                .collect(),
        )
    }

    #[test]
    fn bucket_attribution_ranks_by_magnitude() {
        let before = bucket_obj(&[("fetch", 100), ("mem_wait", 50), ("execute", 10)]);
        let after = bucket_obj(&[("fetch", 110), ("mem_wait", 500), ("execute", 10)]);
        let moved = attribute_buckets(&before, &after);
        assert_eq!(moved.len(), 2);
        assert_eq!(moved[0].label, "mem_wait");
        assert_eq!(moved[0].delta(), 450);
        assert_eq!(moved[1].label, "fetch");
    }

    #[test]
    fn detect_kind_recognizes_the_pinned_schemas() {
        let prof = Value::Object(vec![(
            "schema".to_string(),
            Value::String("clp-prof-v1".to_string()),
        )]);
        assert_eq!(detect_kind(&prof), Some(DocKind::Prof));
        let snap = Value::Object(vec![
            ("cycles".to_string(), Value::UInt(7)),
            (
                "root".to_string(),
                Value::Object(vec![("name".to_string(), Value::String("run".to_string()))]),
            ),
        ]);
        assert_eq!(detect_kind(&snap), Some(DocKind::Snapshot));
        assert_eq!(detect_kind(&Value::Null), None);
        assert!(diff_documents(&prof, &snap).is_err());
    }

    #[test]
    fn scope_diff_attributes_the_fleet_movement() {
        let doc = |sim: u64, spec_int: u64, memw: u64| {
            Value::Object(vec![
                (
                    "schema".to_string(),
                    Value::String("clp-scope-v1".to_string()),
                ),
                ("workers".to_string(), Value::UInt(4)),
                ("drained_at".to_string(), Value::UInt(9000)),
                ("jobs".to_string(), Value::Array(vec![Value::Null; 3])),
                (
                    "fleet".to_string(),
                    Value::Object(vec![
                        ("jobs".to_string(), Value::UInt(3)),
                        ("sim_cycles".to_string(), Value::UInt(sim)),
                        (
                            "buckets".to_string(),
                            bucket_obj(&[("mem_wait", memw), ("fetch", 10)]),
                        ),
                        (
                            "by_class".to_string(),
                            Value::Array(vec![Value::Object(vec![
                                (
                                    "label".to_string(),
                                    Value::String("spec_int".to_string()),
                                ),
                                ("sim_cycles".to_string(), Value::UInt(spec_int)),
                            ])]),
                        ),
                        (
                            "by_cores".to_string(),
                            Value::Array(vec![Value::Object(vec![
                                ("cores".to_string(), Value::UInt(4)),
                                ("sim_cycles".to_string(), Value::UInt(spec_int)),
                            ])]),
                        ),
                    ]),
                ),
            ])
        };
        let report =
            diff_documents(&doc(1000, 600, 100), &doc(1500, 1100, 400)).expect("diffs");
        assert_eq!(report.kind, "clp-scope-v1");
        assert_eq!(report.cycles, Some((1000, 1500)));
        assert_eq!(report.buckets[0].label, "mem_wait");
        assert_eq!(report.buckets[0].delta(), 300);
        assert!(report
            .metrics
            .iter()
            .any(|e| e.label == "class spec_int" && e.delta() == 500));
        assert!(report.metrics.iter().any(|e| e.label == "composition x4"));
    }

    #[test]
    fn bench_diff_names_the_moved_cell_and_buckets() {
        let doc = |cycles: u64, memw: u64| {
            Value::Object(vec![
                (
                    "schema".to_string(),
                    Value::String("clp-bench-v1".to_string()),
                ),
                (
                    "workloads".to_string(),
                    Value::Array(vec![Value::Object(vec![
                        ("name".to_string(), Value::String("conv".to_string())),
                        (
                            "runs".to_string(),
                            Value::Array(vec![Value::Object(vec![
                                ("cores".to_string(), Value::UInt(4)),
                                ("cycles".to_string(), Value::UInt(cycles)),
                                (
                                    "buckets".to_string(),
                                    bucket_obj(&[("mem_wait", memw), ("fetch", 10)]),
                                ),
                            ])]),
                        ),
                    ])]),
                ),
            ])
        };
        let report = diff_documents(&doc(1000, 100), &doc(1400, 480)).expect("diffs");
        assert_eq!(report.kind, "clp-bench-v1");
        assert_eq!(report.metrics[0].label, "conv x4");
        assert_eq!(report.metrics[0].delta(), 400);
        assert_eq!(report.buckets[0].label, "mem_wait");
        let text = report.render(3);
        assert!(text.contains("conv x4"));
        assert!(text.contains("mem_wait"));
    }
}
