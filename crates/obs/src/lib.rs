//! Observability for the CLP/TFlex simulation stack.
//!
//! The paper's results (Figures 5–10) are all derived views of
//! microarchitectural events — fetch/commit latency breakdowns, operand
//! network occupancy, flush causes. This crate makes those events
//! first-class:
//!
//! - [`TraceEvent`] is a typed vocabulary for the block lifecycle
//!   (fetch → issue → commit/flush), memory system activity (LSQ NACKs,
//!   cache misses, ordering violations), operand/control mesh routing,
//!   and next-block prediction.
//! - [`TraceSink`] is the pluggable consumer trait, with three
//!   implementations: [`NullSink`] (drops everything; used to prove the
//!   hooks stay off the hot path), [`RingRecorder`] (last-N events in
//!   memory, for tests and debugging), and [`ChromeTraceWriter`]
//!   (Chrome trace-event JSON that loads directly in Perfetto).
//! - [`Tracer`] is the cheap cloneable handle distributed to every
//!   subsystem. When tracing is off it is a single `Option` branch and
//!   the event-constructing closure never runs.
//! - [`StatsSnapshot`] unifies the per-subsystem stats structs
//!   (`ProcStats`, `MemStats`, `MeshStats`, `PredictorStats`) into one
//!   hierarchical, serde-serializable tree, with optional per-interval
//!   time series ([`IntervalSampler`]) so runs can report IPC and
//!   network occupancy over time, not just end-of-run sums.
//! - [`ProfileReport`] (the clp-prof data model) carries the top-down
//!   cycle-accounting buckets and critical-path attribution the
//!   simulator extracts from last-arrival dependence edges; see
//!   [`profile`] for the bucket taxonomy.
//! - [`TrendReport`] (the clp-trend data model) generalizes the interval
//!   sampler into a columnar time series over any set of stats-registry
//!   paths plus the profiler's buckets and per-core heat rows, with a
//!   deterministic integer-only phase detector on top; see [`trend`].
//! - [`diff`] structurally compares two runs' pinned JSON documents and
//!   attributes the delta to the buckets, cores, and NoC links that
//!   moved (the clp-diff library).
//! - [`scope`] (the clp-scope data model) lifts the same discipline to
//!   the service layer: deterministic per-job lifecycle span trees on
//!   virtual time, worker occupancy tracks, a fleet-wide top-down cycle
//!   book rolled up per workload class and composition size, and a
//!   service time series riding the trend recorder.

pub mod diff;
pub mod event;
pub mod latency;
pub mod profile;
pub mod scope;
pub mod sink;
pub mod snapshot;
pub mod trend;

pub use diff::{attribute_buckets, detect_kind, diff_documents, AttributionReport, DiffEntry};
pub use event::{CacheLevel, FlushReason, TraceEvent};
pub use latency::LatencySummary;
pub use profile::{BlockSpanStat, Bucket, BucketCycles, ProcProfile, ProfileReport, NUM_BUCKETS};
pub use scope::{
    AttemptEnd, AttemptSpan, ClassBook, FleetBook, JobSpans, ScopeOptions, ScopeRecorder,
    ScopeReport, Span, Terminal, WorkerSlice, WorkerTrack,
};
pub use sink::{ChromeTraceWriter, NullSink, RingRecorder, TraceSink, Tracer};
pub use snapshot::{
    IntervalSample, IntervalSampler, Metric, MetricValue, SampleCounters, StatsNode, StatsSnapshot,
};
pub use trend::{ColumnKind, Phase, TrendColumn, TrendOptions, TrendRecorder, TrendReport};
