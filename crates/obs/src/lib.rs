//! Observability for the CLP/TFlex simulation stack.
//!
//! The paper's results (Figures 5–10) are all derived views of
//! microarchitectural events — fetch/commit latency breakdowns, operand
//! network occupancy, flush causes. This crate makes those events
//! first-class:
//!
//! - [`TraceEvent`] is a typed vocabulary for the block lifecycle
//!   (fetch → issue → commit/flush), memory system activity (LSQ NACKs,
//!   cache misses, ordering violations), operand/control mesh routing,
//!   and next-block prediction.
//! - [`TraceSink`] is the pluggable consumer trait, with three
//!   implementations: [`NullSink`] (drops everything; used to prove the
//!   hooks stay off the hot path), [`RingRecorder`] (last-N events in
//!   memory, for tests and debugging), and [`ChromeTraceWriter`]
//!   (Chrome trace-event JSON that loads directly in Perfetto).
//! - [`Tracer`] is the cheap cloneable handle distributed to every
//!   subsystem. When tracing is off it is a single `Option` branch and
//!   the event-constructing closure never runs.
//! - [`StatsSnapshot`] unifies the per-subsystem stats structs
//!   (`ProcStats`, `MemStats`, `MeshStats`, `PredictorStats`) into one
//!   hierarchical, serde-serializable tree, with optional per-interval
//!   time series ([`IntervalSampler`]) so runs can report IPC and
//!   network occupancy over time, not just end-of-run sums.
//! - [`ProfileReport`] (the clp-prof data model) carries the top-down
//!   cycle-accounting buckets and critical-path attribution the
//!   simulator extracts from last-arrival dependence edges; see
//!   [`profile`] for the bucket taxonomy.

pub mod event;
pub mod profile;
pub mod sink;
pub mod snapshot;

pub use event::{CacheLevel, FlushReason, TraceEvent};
pub use profile::{Bucket, BucketCycles, ProcProfile, ProfileReport, NUM_BUCKETS};
pub use sink::{ChromeTraceWriter, NullSink, RingRecorder, TraceSink, Tracer};
pub use snapshot::{
    IntervalSample, IntervalSampler, Metric, MetricValue, SampleCounters, StatsNode, StatsSnapshot,
};
