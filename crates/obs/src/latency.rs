//! Latency distribution summaries (nearest-rank percentiles).
//!
//! clp-serve reports job sojourn times in virtual ticks; figure and CI
//! tooling want the usual tail percentiles rather than raw sample lists.
//! Everything here is integer-in / deterministic-out: nearest-rank
//! percentiles over a sorted sample vector, so the same samples always
//! produce the same summary on every platform.

use crate::snapshot::StatsNode;
use serde::{Deserialize, Serialize};

/// Summary statistics of a latency sample set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Nearest-rank 50th percentile.
    pub p50: u64,
    /// Nearest-rank 90th percentile.
    pub p90: u64,
    /// Nearest-rank 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

/// Nearest-rank percentile of a sorted, non-empty slice: the smallest
/// sample such that at least `pct`% of the set is `<=` it.
fn nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (sorted.len() as u64 * pct).div_ceil(100).max(1);
    sorted[(rank as usize - 1).min(sorted.len() - 1)]
}

impl LatencySummary {
    /// Summarizes a sample set. The input is sorted in place; an empty
    /// set produces the all-zero summary rather than an error, so
    /// services that completed no jobs still render a well-formed report.
    #[must_use]
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let sum: u64 = samples.iter().sum();
        LatencySummary {
            count: samples.len(),
            mean: sum as f64 / samples.len() as f64,
            p50: nearest_rank(samples, 50),
            p90: nearest_rank(samples, 90),
            p99: nearest_rank(samples, 99),
            max: *samples.last().expect("non-empty"),
        }
    }

    /// Renders the summary as a stats-registry node named `name`, so a
    /// service can hang it off its `serve/*` subtree.
    #[must_use]
    pub fn to_node(&self, name: &str) -> StatsNode {
        StatsNode::new(name)
            .count("count", self.count as u64)
            .gauge("mean", self.mean)
            .count("p50", self.p50)
            .count("p90", self.p90)
            .count("p99", self.p99)
            .count("max", self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_is_all_zero() {
        let s = LatencySummary::from_samples(&mut []);
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencySummary::from_samples(&mut [7]);
        assert_eq!((s.p50, s.p90, s.p99, s.max), (7, 7, 7, 7));
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn nearest_rank_matches_hand_computation() {
        // 1..=100: pN is exactly N.
        let mut v: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_samples(&mut v);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p90, 90);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut v = vec![30, 10, 20];
        let s = LatencySummary::from_samples(&mut v);
        assert_eq!(s.p50, 20);
        assert_eq!(s.max, 30);
    }

    #[test]
    fn renders_as_a_stats_node() {
        let s = LatencySummary::from_samples(&mut [1, 2, 3, 4]);
        let n = s.to_node("latency");
        assert_eq!(n.lookup("p90").map(|m| m.as_f64()), Some(4.0));
        assert_eq!(n.lookup("count").map(|m| m.as_f64()), Some(4.0));
    }
}
