//! Latency distribution summaries (nearest-rank percentiles).
//!
//! clp-serve reports job sojourn times in virtual ticks; figure and CI
//! tooling want the usual tail percentiles rather than raw sample lists.
//! Everything here is integer-in / deterministic-out: nearest-rank
//! percentiles over a sorted sample vector, so the same samples always
//! produce the same summary on every platform.
//!
//! An empty sample set has no percentiles; the summary carries `None`
//! (serialized as `null`, omitted from the stats node) rather than a
//! sentinel zero that downstream thresholds would mistake for a real
//! zero-tick latency.

use crate::snapshot::StatsNode;
use serde::{Deserialize, Serialize};

/// Summary statistics of a latency sample set. The statistics are
/// `None` exactly when `count == 0`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Option<f64>,
    /// Nearest-rank 50th percentile.
    pub p50: Option<u64>,
    /// Nearest-rank 90th percentile.
    pub p90: Option<u64>,
    /// Nearest-rank 99th percentile.
    pub p99: Option<u64>,
    /// Largest sample.
    pub max: Option<u64>,
}

/// Nearest-rank percentile of a sorted, non-empty slice: the smallest
/// sample such that at least `pct`% of the set is `<=` it.
fn nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (sorted.len() as u64 * pct).div_ceil(100).max(1);
    sorted[(rank as usize - 1).min(sorted.len() - 1)]
}

impl LatencySummary {
    /// Summarizes a sample set. The input is sorted in place; an empty
    /// set produces the `count: 0` summary with every statistic `None`,
    /// so services that completed no jobs still render a well-formed
    /// report without inventing a zero-tick percentile.
    #[must_use]
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let sum: u64 = samples.iter().sum();
        LatencySummary {
            count: samples.len(),
            mean: Some(sum as f64 / samples.len() as f64),
            p50: Some(nearest_rank(samples, 50)),
            p90: Some(nearest_rank(samples, 90)),
            p99: Some(nearest_rank(samples, 99)),
            max: Some(*samples.last().expect("non-empty")),
        }
    }

    /// Renders the summary as a stats-registry node named `name`, so a
    /// service can hang it off its `serve/*` subtree. Statistics that do
    /// not exist (empty sample set) are omitted, not zero-filled.
    #[must_use]
    pub fn to_node(&self, name: &str) -> StatsNode {
        let mut node = StatsNode::new(name).count("count", self.count as u64);
        if let Some(mean) = self.mean {
            node = node.gauge("mean", mean);
        }
        for (label, value) in [
            ("p50", self.p50),
            ("p90", self.p90),
            ("p99", self.p99),
            ("max", self.max),
        ] {
            if let Some(v) = value {
                node = node.count(label, v);
            }
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_percentiles() {
        let s = LatencySummary::from_samples(&mut []);
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, None);
        assert_eq!(s.p99, None);
        assert_eq!(s.mean, None);
        assert_eq!(s.max, None);
        // The stats node omits what does not exist instead of rendering
        // a sentinel zero.
        let n = s.to_node("latency");
        assert_eq!(n.lookup("count").map(|m| m.as_f64()), Some(0.0));
        assert_eq!(n.lookup("p99"), None);
        assert_eq!(n.lookup("mean"), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencySummary::from_samples(&mut [7]);
        let all = (s.p50, s.p90, s.p99, s.max);
        assert_eq!(all, (Some(7), Some(7), Some(7), Some(7)));
        assert_eq!(s.mean, Some(7.0));
    }

    #[test]
    fn nearest_rank_matches_hand_computation() {
        // 1..=100: pN is exactly N.
        let mut v: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_samples(&mut v);
        assert_eq!(s.p50, Some(50));
        assert_eq!(s.p90, Some(90));
        assert_eq!(s.p99, Some(99));
        assert_eq!(s.max, Some(100));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut v = vec![30, 10, 20];
        let s = LatencySummary::from_samples(&mut v);
        assert_eq!(s.p50, Some(20));
        assert_eq!(s.max, Some(30));
    }

    #[test]
    fn renders_as_a_stats_node() {
        let s = LatencySummary::from_samples(&mut [1, 2, 3, 4]);
        let n = s.to_node("latency");
        assert_eq!(n.lookup("p90").map(|m| m.as_f64()), Some(4.0));
        assert_eq!(n.lookup("count").map(|m| m.as_f64()), Some(4.0));
    }
}
