//! The unified stats registry: a hierarchical, serializable snapshot of
//! every subsystem's counters, plus per-interval time-series sampling.

use serde::{Deserialize, Serialize};

/// A single named measurement.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// A monotonically accumulated count.
    Count(u64),
    /// A derived or averaged quantity.
    Gauge(f64),
}

impl MetricValue {
    /// The value as an `f64` regardless of kind.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            MetricValue::Count(c) => c as f64,
            MetricValue::Gauge(g) => g,
        }
    }
}

/// A named metric within a [`StatsNode`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Metric name, unique within its node.
    pub name: String,
    /// The measured value.
    pub value: MetricValue,
}

/// One node of the hierarchical stats tree.
///
/// Subsystem stats structs (`ProcStats`, `MemStats`, `MeshStats`,
/// `PredictorStats`) each render themselves into a node; the simulator
/// assembles them under one root so consumers address any counter by a
/// stable `"mem/l1d_hits"`-style path instead of plucking struct fields.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsNode {
    /// Node name (path segment).
    pub name: String,
    /// Metrics directly on this node.
    pub metrics: Vec<Metric>,
    /// Child nodes.
    pub children: Vec<StatsNode>,
}

impl StatsNode {
    /// An empty node named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        StatsNode {
            name: name.into(),
            metrics: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds a count metric (builder style).
    #[must_use]
    pub fn count(mut self, name: impl Into<String>, value: u64) -> Self {
        self.metrics.push(Metric {
            name: name.into(),
            value: MetricValue::Count(value),
        });
        self
    }

    /// Adds a gauge metric (builder style).
    #[must_use]
    pub fn gauge(mut self, name: impl Into<String>, value: f64) -> Self {
        self.metrics.push(Metric {
            name: name.into(),
            value: MetricValue::Gauge(value),
        });
        self
    }

    /// Adds a child node (builder style).
    #[must_use]
    pub fn child(mut self, child: StatsNode) -> Self {
        self.children.push(child);
        self
    }

    /// Looks up a direct child by name.
    #[must_use]
    pub fn get_child(&self, name: &str) -> Option<&StatsNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Looks up a metric on this node by name.
    #[must_use]
    pub fn get_metric(&self, name: &str) -> Option<MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }

    /// Resolves a `"child/.../metric"` path from this node.
    #[must_use]
    pub fn lookup(&self, path: &str) -> Option<MetricValue> {
        match path.split_once('/') {
            None => self.get_metric(path),
            Some((child, rest)) => self.get_child(child)?.lookup(rest),
        }
    }
}

/// One sampling window of the time series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IntervalSample {
    /// First cycle of the window (inclusive).
    pub start_cycle: u64,
    /// Last cycle of the window (exclusive).
    pub end_cycle: u64,
    /// Instructions committed during the window.
    pub insts_committed: u64,
    /// Blocks committed during the window.
    pub blocks_committed: u64,
    /// Blocks flushed during the window.
    pub blocks_flushed: u64,
    /// Operand-network messages delivered during the window.
    pub operand_msgs: u64,
    /// Committed instructions per cycle over the window.
    pub ipc: f64,
    /// Operand messages delivered per cycle over the window.
    pub operand_occupancy: f64,
}

/// Cumulative counters the sampler differentiates into window deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SampleCounters {
    /// Total instructions committed so far.
    pub insts_committed: u64,
    /// Total blocks committed so far.
    pub blocks_committed: u64,
    /// Total blocks flushed so far.
    pub blocks_flushed: u64,
    /// Total operand-network messages delivered so far.
    pub operand_msgs: u64,
}

/// Turns cumulative counters into fixed-width [`IntervalSample`]s.
///
/// The hot loop pays one integer compare per cycle ([`IntervalSampler::due`]);
/// the owner gathers [`SampleCounters`] only on due cycles.
#[derive(Clone, Debug)]
pub struct IntervalSampler {
    period: u64,
    next_due: u64,
    window_start: u64,
    last: SampleCounters,
    samples: Vec<IntervalSample>,
}

impl IntervalSampler {
    /// A sampler emitting one sample every `period` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(period: u64) -> Self {
        assert!(period > 0, "sampling period must be positive");
        IntervalSampler {
            period,
            next_due: period,
            window_start: 0,
            last: SampleCounters::default(),
            samples: Vec::new(),
        }
    }

    /// Whether the current cycle closes a window.
    #[inline]
    #[must_use]
    pub fn due(&self, cycle: u64) -> bool {
        cycle >= self.next_due
    }

    /// The earliest cycle at which [`IntervalSampler::due`] will next
    /// return true. Event-driven steppers must not skip past this
    /// cycle, or window boundaries (and thus the emitted samples) would
    /// shift.
    #[inline]
    #[must_use]
    pub fn next_due_cycle(&self) -> u64 {
        self.next_due
    }

    /// Closes the current window at `cycle` given the cumulative
    /// `counters`, recording one sample.
    pub fn sample(&mut self, cycle: u64, counters: SampleCounters) {
        let span = cycle.saturating_sub(self.window_start).max(1);
        let insts = counters.insts_committed - self.last.insts_committed;
        let msgs = counters.operand_msgs - self.last.operand_msgs;
        self.samples.push(IntervalSample {
            start_cycle: self.window_start,
            end_cycle: cycle,
            insts_committed: insts,
            blocks_committed: counters.blocks_committed - self.last.blocks_committed,
            blocks_flushed: counters.blocks_flushed - self.last.blocks_flushed,
            operand_msgs: msgs,
            ipc: insts as f64 / span as f64,
            operand_occupancy: msgs as f64 / span as f64,
        });
        self.last = counters;
        self.window_start = cycle;
        self.next_due = cycle + self.period;
    }

    /// Closes the final partial window (if non-empty) and returns all
    /// samples.
    #[must_use]
    pub fn finish(mut self, cycle: u64, counters: SampleCounters) -> Vec<IntervalSample> {
        if cycle > self.window_start {
            self.sample(cycle, counters);
        }
        self.samples
    }

    /// Samples collected so far.
    #[must_use]
    pub fn samples(&self) -> &[IntervalSample] {
        &self.samples
    }
}

/// The full, self-describing result of a run: end-of-run totals as a
/// navigable tree plus the sampled time series.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Total machine cycles simulated.
    pub cycles: u64,
    /// Root of the hierarchical stats tree.
    pub root: StatsNode,
    /// Per-interval time series (empty unless sampling was enabled).
    pub intervals: Vec<IntervalSample>,
}

impl StatsSnapshot {
    /// Resolves a `"node/.../metric"` path from the root.
    ///
    /// The root node's own name is *not* part of the path:
    /// `snapshot.get("mem/l1d_hits")`.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<f64> {
        self.root.lookup(path).map(MetricValue::as_f64)
    }

    /// Like [`StatsSnapshot::get`] but panics with the path in the
    /// message — for figure binaries where a missing counter is a bug.
    ///
    /// # Panics
    ///
    /// Panics if the path does not resolve.
    #[must_use]
    pub fn expect(&self, path: &str) -> f64 {
        self.get(path)
            .unwrap_or_else(|| panic!("stats snapshot has no metric at `{path}`"))
    }

    /// Serializes the snapshot as pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Parses a snapshot from JSON text.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse/shape error.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}
