//! clp-scope: service-level spans and fleet-wide cycle attribution.
//!
//! clp-obs, clp-prof, and clp-trend see inside *one* run; the service
//! layer (clp-serve) is a black box between admission and completion.
//! This module gives the service the same treatment the simulator got:
//!
//! - a **deterministic span model on virtual time** — every job carries
//!   a tree of lifecycle spans (queued → attempt{compile, run} →
//!   backoff → …) and every worker an occupancy track, all recorded at
//!   the service's fixed per-tick event points, so the same
//!   `(seed, job list)` produces byte-identical span logs;
//! - a **fleet-level top-down book** — each completed job's clp-prof
//!   run-level [`BucketCycles`] folded into per-workload-class and
//!   per-composition-size rollups (summing raw books is inherently
//!   cycle-weighted), the feedback signal an online compose/decompose
//!   policy would read;
//! - a **live virtual-time series** — queue depth, worker utilization,
//!   retry/shed rates, and cache hit ratio sampled through the existing
//!   [`TrendRecorder`] machinery;
//! - **exports** — the pinned `clp-scope-v1` JSON, a Perfetto
//!   track export (one track per worker plus queue/admission tracks,
//!   spans nested per job), and an ASCII fleet breakdown.
//!
//! The recorder is driven by plain values (ids, ticks, string labels),
//! so this crate stays independent of the service crate; clp-serve owns
//! the emission points and the determinism argument (see DESIGN.md,
//! "Service observability").

use crate::profile::{BucketCycles, ProfileReport};
use crate::snapshot::StatsNode;
use crate::trend::{TrendOptions, TrendRecorder, TrendReport};
use serde::Value;
use std::collections::BTreeMap;

/// Scope layer configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScopeOptions {
    /// Virtual-tick width of the time-series sampling interval.
    pub period: u64,
}

impl Default for ScopeOptions {
    fn default() -> Self {
        ScopeOptions { period: 5_000 }
    }
}

/// A half-open interval of virtual ticks `[start, end)` (zero-length
/// spans are legal: a job can be dispatched on its arrival tick).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// First tick of the span.
    pub start: u64,
    /// End tick (exclusive).
    pub end: u64,
}

impl Span {
    fn to_json(self) -> Value {
        Value::Object(vec![
            ("start".to_string(), Value::UInt(self.start)),
            ("end".to_string(), Value::UInt(self.end)),
        ])
    }
}

/// How one dispatched attempt ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptEnd {
    /// Ran to completion and verified.
    Success,
    /// Reaped by the deadline watchdog (retryable with a bigger budget).
    DeadlineKill,
    /// Failed transiently (faults, recovery failure, placement).
    Transient,
    /// Panicked in the worker; the worker was poisoned and respawned.
    Panicked,
    /// Failed permanently; no retry can help.
    Permanent,
}

impl AttemptEnd {
    /// Stable snake_case label (JSON, Perfetto args).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AttemptEnd::Success => "success",
            AttemptEnd::DeadlineKill => "deadline_kill",
            AttemptEnd::Transient => "transient",
            AttemptEnd::Panicked => "panic",
            AttemptEnd::Permanent => "permanent",
        }
    }
}

/// One dispatched attempt: occupancy of one worker for one span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttemptSpan {
    /// 0-based attempt index.
    pub attempt: u32,
    /// Worker slot that executed the attempt.
    pub worker: usize,
    /// Dispatch tick.
    pub start: u64,
    /// Completion-event tick.
    pub end: u64,
    /// Whether the program came out of the compile cache.
    pub cache_hit: bool,
    /// Compile sub-span (present on a cache miss; charged at the front
    /// of the attempt).
    pub compile: Option<Span>,
    /// How the attempt ended.
    pub end_kind: AttemptEnd,
}

/// Terminal disposition of a job, as the span model sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Terminal {
    /// Completed and verified; carries the successful attempt's
    /// simulated cycles.
    Completed {
        /// Simulated cycles of the successful attempt.
        cycles: u64,
    },
    /// Failed permanently.
    Failed,
    /// Spent every retry without a success.
    Exhausted,
    /// Shed at admission (queue full).
    Shed,
    /// Refused as malformed at admission.
    Invalid,
}

impl Terminal {
    /// Stable snake_case label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Terminal::Completed { .. } => "completed",
            Terminal::Failed => "failed",
            Terminal::Exhausted => "exhausted",
            Terminal::Shed => "shed",
            Terminal::Invalid => "invalid",
        }
    }

    fn to_json(self) -> Value {
        let mut fields = vec![(
            "kind".to_string(),
            Value::String(self.label().to_string()),
        )];
        if let Terminal::Completed { cycles } = self {
            fields.push(("cycles".to_string(), Value::UInt(cycles)));
        }
        Value::Object(fields)
    }
}

/// The complete span tree of one job. Invariants (asserted by the
/// property suite): spans nest and tile — `queued[k].end ==
/// attempts[k].start`, `attempts[k].end == backoffs[k].start`,
/// `backoffs[k].end == queued[k+1].start`, compile sub-spans lie inside
/// their attempt, and `attempts.last().end == finish`.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpans {
    /// Job id.
    pub id: u64,
    /// Workload name.
    pub workload: String,
    /// Workload-class label (e.g. `spec_int`), or `unknown` for jobs
    /// rejected before name resolution.
    pub class: String,
    /// Composition size granted (0 for rejected jobs).
    pub cores: usize,
    /// Arrival tick.
    pub arrival: u64,
    /// Terminal-event tick.
    pub finish: u64,
    /// Terminal disposition.
    pub terminal: Terminal,
    /// Ready-to-dispatch waits: one per dispatch, opened at admission or
    /// retry release.
    pub queued: Vec<Span>,
    /// Dispatched attempts, in attempt order.
    pub attempts: Vec<AttemptSpan>,
    /// Backoff waits between a failed attempt and its retry release
    /// (always `attempts.len() - 1` entries for executed jobs).
    pub backoffs: Vec<Span>,
    /// The job's clp-prof run-level book (completed jobs when profiling
    /// was on); the fleet book is exactly the sum of these.
    pub book: Option<BucketCycles>,
}

impl JobSpans {
    fn to_json(&self) -> Value {
        let spans = |v: &[Span]| Value::Array(v.iter().map(|s| s.to_json()).collect());
        let mut fields = vec![
            ("id".to_string(), Value::UInt(self.id)),
            (
                "workload".to_string(),
                Value::String(self.workload.clone()),
            ),
            ("class".to_string(), Value::String(self.class.clone())),
            ("cores".to_string(), Value::UInt(self.cores as u64)),
            ("arrival".to_string(), Value::UInt(self.arrival)),
            ("finish".to_string(), Value::UInt(self.finish)),
            ("terminal".to_string(), self.terminal.to_json()),
            ("queued".to_string(), spans(&self.queued)),
            (
                "attempts".to_string(),
                Value::Array(
                    self.attempts
                        .iter()
                        .map(|a| {
                            let mut f = vec![
                                ("attempt".to_string(), Value::UInt(u64::from(a.attempt))),
                                ("worker".to_string(), Value::UInt(a.worker as u64)),
                                ("start".to_string(), Value::UInt(a.start)),
                                ("end".to_string(), Value::UInt(a.end)),
                                (
                                    "cache".to_string(),
                                    Value::String(
                                        if a.cache_hit { "hit" } else { "miss" }.to_string(),
                                    ),
                                ),
                                (
                                    "outcome".to_string(),
                                    Value::String(a.end_kind.label().to_string()),
                                ),
                            ];
                            if let Some(c) = a.compile {
                                f.push(("compile".to_string(), c.to_json()));
                            }
                            Value::Object(f)
                        })
                        .collect(),
                ),
            ),
            ("backoffs".to_string(), spans(&self.backoffs)),
        ];
        if let Some(book) = &self.book {
            fields.push(("book".to_string(), buckets_json(book)));
        }
        Value::Object(fields)
    }
}

/// One occupancy slice of a worker track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerSlice {
    /// Job occupying the worker.
    pub job: u64,
    /// That job's attempt index.
    pub attempt: u32,
    /// Dispatch tick.
    pub start: u64,
    /// Completion-event tick.
    pub end: u64,
}

/// One worker's occupancy track: slices in dispatch order, never
/// overlapping (a slot holds one in-flight job at a time).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerTrack {
    /// Occupancy slices, sorted by start tick.
    pub slices: Vec<WorkerSlice>,
}

impl WorkerTrack {
    /// Total ticks this worker spent occupied.
    #[must_use]
    pub fn busy_ticks(&self) -> u64 {
        self.slices.iter().map(|s| s.end - s.start).sum()
    }
}

/// Cycle rollup for one key of the fleet book (a workload class or a
/// composition size).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassBook {
    /// Completed jobs folded in.
    pub jobs: u64,
    /// Sum of the jobs' simulated cycle counts.
    pub sim_cycles: u64,
    /// Sum of the jobs' run-level clp-prof books.
    pub buckets: BucketCycles,
}

impl ClassBook {
    fn fold(&mut self, sim_cycles: u64, buckets: &BucketCycles) {
        self.jobs += 1;
        self.sim_cycles += sim_cycles;
        self.buckets.merge(buckets);
    }

    fn to_json(&self) -> Vec<(String, Value)> {
        vec![
            ("jobs".to_string(), Value::UInt(self.jobs)),
            ("sim_cycles".to_string(), Value::UInt(self.sim_cycles)),
            ("buckets".to_string(), buckets_json(&self.buckets)),
        ]
    }
}

/// The fleet-wide top-down book: where the fleet's cycles went, total
/// and rolled up per workload class and per composition size. Weighting
/// is by construction cycle-proportional — raw per-job books are summed,
/// never averaged.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetBook {
    /// Rollup over every completed job.
    pub total: ClassBook,
    /// Per-workload-class rollups, keyed by class label.
    pub by_class: BTreeMap<String, ClassBook>,
    /// Per-composition-size rollups, keyed by granted cores.
    pub by_cores: BTreeMap<usize, ClassBook>,
}

impl FleetBook {
    /// Folds one completed job's run-level book into the fleet book.
    pub fn fold(&mut self, class: &str, cores: usize, sim_cycles: u64, buckets: &BucketCycles) {
        self.total.fold(sim_cycles, buckets);
        self.by_class
            .entry(class.to_string())
            .or_default()
            .fold(sim_cycles, buckets);
        self.by_cores
            .entry(cores)
            .or_default()
            .fold(sim_cycles, buckets);
    }

    fn to_json(&self) -> Value {
        let mut fields = self.total.to_json();
        fields.push((
            "by_class".to_string(),
            Value::Array(
                self.by_class
                    .iter()
                    .map(|(label, b)| {
                        let mut f =
                            vec![("label".to_string(), Value::String(label.clone()))];
                        f.extend(b.to_json());
                        Value::Object(f)
                    })
                    .collect(),
            ),
        ));
        fields.push((
            "by_cores".to_string(),
            Value::Array(
                self.by_cores
                    .iter()
                    .map(|(&cores, b)| {
                        let mut f = vec![("cores".to_string(), Value::UInt(cores as u64))];
                        f.extend(b.to_json());
                        Value::Object(f)
                    })
                    .collect(),
            ),
        ));
        Value::Object(fields)
    }
}

fn buckets_json(b: &BucketCycles) -> Value {
    Value::Object(
        b.iter()
            .map(|(bk, c)| (bk.label().to_string(), Value::UInt(c)))
            .collect(),
    )
}

/// Stats-registry paths the scope time series records (all under a
/// `scope/` subtree the recorder synthesizes at each sample point).
const SERIES_PATHS: [&str; 9] = [
    "scope/queue_depth",
    "scope/busy_workers",
    "scope/utilization",
    "scope/cache_hit_ratio",
    "scope/completed",
    "scope/retries",
    "scope/shed",
    "scope/cache_hits",
    "scope/cache_misses",
];

#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    completed: u64,
    retries: u64,
    shed: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Records service lifecycle events into span trees, worker tracks, the
/// fleet book, and a trend series. Every method must be called at the
/// service's deterministic event points; the recorder itself never
/// consults a clock and never feeds anything back into scheduling.
#[derive(Debug)]
pub struct ScopeRecorder {
    workers: usize,
    jobs: BTreeMap<u64, JobSpans>,
    /// Tick at which each live job last became ready to dispatch
    /// (admission or retry release); closed into a queued span at
    /// dispatch.
    ready_since: BTreeMap<u64, u64>,
    tracks: Vec<WorkerTrack>,
    fleet: FleetBook,
    trend: TrendRecorder,
    counters: Counters,
}

impl ScopeRecorder {
    /// A recorder for a service with `workers` worker slots.
    #[must_use]
    pub fn new(opts: &ScopeOptions, workers: usize) -> Self {
        let trend_opts = TrendOptions {
            period: opts.period.max(1),
            paths: SERIES_PATHS.iter().map(|s| (*s).to_string()).collect(),
            buckets: false,
            heat: false,
            ..TrendOptions::default()
        };
        ScopeRecorder {
            workers,
            jobs: BTreeMap::new(),
            ready_since: BTreeMap::new(),
            tracks: vec![WorkerTrack::default(); workers],
            fleet: FleetBook::default(),
            trend: TrendRecorder::new(trend_opts, 0),
            counters: Counters::default(),
        }
    }

    fn job(&mut self, id: u64) -> &mut JobSpans {
        self.jobs.get_mut(&id).expect("job was admitted")
    }

    /// A job entered the submission queue.
    pub fn admitted(&mut self, id: u64, workload: &str, class: &str, cores: usize, now: u64) {
        self.jobs.insert(
            id,
            JobSpans {
                id,
                workload: workload.to_string(),
                class: class.to_string(),
                cores,
                arrival: now,
                finish: now,
                terminal: Terminal::Failed, // overwritten at the terminal event
                queued: Vec::new(),
                attempts: Vec::new(),
                backoffs: Vec::new(),
                book: None,
            },
        );
        self.ready_since.insert(id, now);
    }

    /// A job was refused at admission (`shed`: queue-full shedding;
    /// otherwise a malformed-request rejection).
    pub fn rejected(
        &mut self,
        id: u64,
        workload: &str,
        class: &str,
        cores: usize,
        now: u64,
        shed: bool,
    ) {
        if shed {
            self.counters.shed += 1;
        }
        self.jobs.insert(
            id,
            JobSpans {
                id,
                workload: workload.to_string(),
                class: class.to_string(),
                cores,
                arrival: now,
                finish: now,
                terminal: if shed { Terminal::Shed } else { Terminal::Invalid },
                queued: Vec::new(),
                attempts: Vec::new(),
                backoffs: Vec::new(),
                book: None,
            },
        );
    }

    /// A job left the queue for worker `worker`; the virtual completion
    /// tick `done_at` is already known at the dispatch barrier.
    pub fn dispatched(
        &mut self,
        id: u64,
        worker: usize,
        now: u64,
        done_at: u64,
        cache_hit: bool,
        compile_ticks: u64,
    ) {
        if cache_hit {
            self.counters.cache_hits += 1;
        } else {
            self.counters.cache_misses += 1;
        }
        let ready = self.ready_since.remove(&id).expect("job was ready");
        let attempt = self.jobs.get(&id).map_or(0, |j| j.attempts.len()) as u32;
        self.tracks[worker].slices.push(WorkerSlice {
            job: id,
            attempt,
            start: now,
            end: done_at,
        });
        let job = self.job(id);
        job.queued.push(Span {
            start: ready,
            end: now,
        });
        job.attempts.push(AttemptSpan {
            attempt,
            worker,
            start: now,
            end: done_at,
            cache_hit,
            compile: (!cache_hit).then_some(Span {
                start: now,
                end: now + compile_ticks,
            }),
            // Overwritten when the completion event is processed.
            end_kind: AttemptEnd::Success,
        });
    }

    fn close_attempt(&mut self, id: u64, end: AttemptEnd) {
        self.job(id)
            .attempts
            .last_mut()
            .expect("attempt was dispatched")
            .end_kind = end;
    }

    /// The job's current attempt completed and verified; `profile` is
    /// its clp-prof report when profiling was on.
    pub fn completed(
        &mut self,
        id: u64,
        now: u64,
        cycles: u64,
        profile: Option<&ProfileReport>,
    ) {
        self.counters.completed += 1;
        self.close_attempt(id, AttemptEnd::Success);
        let book = profile.map(ProfileReport::run_buckets);
        let job = self.job(id);
        job.finish = now;
        job.terminal = Terminal::Completed { cycles };
        job.book = book;
        let (class, cores) = (job.class.clone(), job.cores);
        if let Some(b) = book {
            self.fleet.fold(&class, cores, cycles, &b);
        }
    }

    /// The job's current attempt failed permanently.
    pub fn failed(&mut self, id: u64, now: u64) {
        self.close_attempt(id, AttemptEnd::Permanent);
        let job = self.job(id);
        job.finish = now;
        job.terminal = Terminal::Failed;
    }

    /// The job's current attempt failed (`end`) and every retry is
    /// spent.
    pub fn exhausted(&mut self, id: u64, now: u64, end: AttemptEnd) {
        self.close_attempt(id, end);
        let job = self.job(id);
        job.finish = now;
        job.terminal = Terminal::Exhausted;
    }

    /// The job's current attempt failed (`end`) and a retry was
    /// scheduled for release at `release_at`.
    pub fn retry(&mut self, id: u64, now: u64, release_at: u64, end: AttemptEnd) {
        self.counters.retries += 1;
        self.close_attempt(id, end);
        self.job(id).backoffs.push(Span {
            start: now,
            end: release_at,
        });
        self.ready_since.insert(id, release_at);
    }

    fn stats_tree(&self, queue_depth: usize, busy: usize) -> StatsNode {
        let c = &self.counters;
        let looked_up = c.cache_hits + c.cache_misses;
        StatsNode::new("service").child(
            StatsNode::new("scope")
                .gauge("queue_depth", queue_depth as f64)
                .gauge("busy_workers", busy as f64)
                .gauge("utilization", busy as f64 / self.workers.max(1) as f64)
                .gauge(
                    "cache_hit_ratio",
                    c.cache_hits as f64 / looked_up.max(1) as f64,
                )
                .count("completed", c.completed)
                .count("retries", c.retries)
                .count("shed", c.shed)
                .count("cache_hits", c.cache_hits)
                .count("cache_misses", c.cache_misses),
        )
    }

    /// Closes the current series interval if one is due at `now`. Called
    /// once at the end of every processed event tick, with the queue
    /// depth and busy-worker count as they stand after dispatch.
    pub fn sample(&mut self, now: u64, queue_depth: usize, busy: usize) {
        if !self.trend.due(now) {
            return;
        }
        let root = self.stats_tree(queue_depth, busy);
        let completed = self.counters.completed;
        self.trend.record(now, &root, completed, None);
    }

    /// Finishes the recording at drain tick `drained_at` and assembles
    /// the report. `seed` is echoed for provenance.
    #[must_use]
    pub fn finish(self, drained_at: u64, seed: u64) -> ScopeReport {
        let root = self.stats_tree(0, 0);
        let series = self
            .trend
            .finish(drained_at, &root, self.counters.completed, None);
        ScopeReport {
            seed,
            workers: self.workers,
            drained_at,
            jobs: self.jobs.into_values().collect(),
            tracks: self.tracks,
            fleet: self.fleet,
            series,
        }
    }
}

/// The complete service-level observability document of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct ScopeReport {
    /// Service seed (provenance echo; the replay key lives with the
    /// arrival schedule).
    pub seed: u64,
    /// Worker slots.
    pub workers: usize,
    /// Tick of the last processed event.
    pub drained_at: u64,
    /// Per-job span trees, sorted by job id.
    pub jobs: Vec<JobSpans>,
    /// Per-worker occupancy tracks, by worker index.
    pub tracks: Vec<WorkerTrack>,
    /// The fleet-wide top-down cycle book.
    pub fleet: FleetBook,
    /// The virtual-time series (queue depth, utilization, rates).
    pub series: TrendReport,
}

impl ScopeReport {
    /// The report under the pinned `clp-scope-v1` schema. Every value is
    /// an integer or a string, so equal runs serialize byte-identically.
    #[must_use]
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            (
                "schema".to_string(),
                Value::String("clp-scope-v1".to_string()),
            ),
            ("seed".to_string(), Value::UInt(self.seed)),
            ("workers".to_string(), Value::UInt(self.workers as u64)),
            ("drained_at".to_string(), Value::UInt(self.drained_at)),
            (
                "jobs".to_string(),
                Value::Array(self.jobs.iter().map(JobSpans::to_json).collect()),
            ),
            (
                "worker_tracks".to_string(),
                Value::Array(
                    self.tracks
                        .iter()
                        .enumerate()
                        .map(|(w, t)| {
                            Value::Object(vec![
                                ("worker".to_string(), Value::UInt(w as u64)),
                                ("busy".to_string(), Value::UInt(t.busy_ticks())),
                                (
                                    "slices".to_string(),
                                    Value::Array(
                                        t.slices
                                            .iter()
                                            .map(|s| {
                                                Value::Object(vec![
                                                    ("job".to_string(), Value::UInt(s.job)),
                                                    (
                                                        "attempt".to_string(),
                                                        Value::UInt(u64::from(s.attempt)),
                                                    ),
                                                    (
                                                        "start".to_string(),
                                                        Value::UInt(s.start),
                                                    ),
                                                    ("end".to_string(), Value::UInt(s.end)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("fleet".to_string(), self.fleet.to_json()),
            ("series".to_string(), self.series.to_json_value()),
        ])
    }

    /// The report serialized as pretty `clp-scope-v1` JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_json_value()).expect("serializes")
    }

    /// One-paragraph run summary (terminal-state census + utilization).
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut census: BTreeMap<&'static str, u64> = BTreeMap::new();
        for j in &self.jobs {
            *census.entry(j.terminal.label()).or_default() += 1;
        }
        let census: Vec<String> = census.iter().map(|(k, v)| format!("{v} {k}")).collect();
        let busy: u64 = self.tracks.iter().map(WorkerTrack::busy_ticks).sum();
        let capacity = self.drained_at.max(1) * self.workers.max(1) as u64;
        let mut out = format!(
            "clp-scope: {} jobs over {} workers, drained at tick {}\n",
            self.jobs.len(),
            self.workers,
            self.drained_at
        );
        out.push_str(&format!(
            "  terminals: {}\n  worker occupancy: {}.{:01}% of {} worker-ticks\n",
            census.join(", "),
            busy * 1000 / capacity / 10,
            busy * 1000 / capacity % 10,
            capacity,
        ));
        out
    }

    /// The ASCII fleet breakdown: per-class and per-composition-size
    /// rollup tables plus the total bucket book.
    #[must_use]
    pub fn render_fleet(&self) -> String {
        let total_crit = self.fleet.total.buckets.total().max(1);
        let mut out = format!(
            "fleet cycle attribution: {} completed jobs, {} critical cycles, {} simulated\n",
            self.fleet.total.jobs,
            self.fleet.total.buckets.total(),
            self.fleet.total.sim_cycles,
        );
        let section = |out: &mut String, title: &str, rows: Vec<(String, &ClassBook)>| {
            out.push_str(&format!(
                "\n{title}\n{:<16} {:>5} {:>12} {:>7}  top buckets\n",
                "key", "jobs", "cycles", "share"
            ));
            for (label, book) in rows {
                let mut ranked: Vec<_> = book.buckets.iter().filter(|&(_, c)| c > 0).collect();
                ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
                let cycles = book.buckets.total();
                let top: Vec<String> = ranked
                    .iter()
                    .take(3)
                    .map(|(b, c)| format!("{} {}%", b.label(), c * 100 / cycles.max(1)))
                    .collect();
                out.push_str(&format!(
                    "{:<16} {:>5} {:>12} {:>6.1}%  {}\n",
                    label,
                    book.jobs,
                    cycles,
                    100.0 * cycles as f64 / total_crit as f64,
                    top.join(", ")
                ));
            }
        };
        section(
            &mut out,
            "by workload class:",
            self.fleet
                .by_class
                .iter()
                .map(|(l, b)| (l.clone(), b))
                .collect(),
        );
        section(
            &mut out,
            "by composition size:",
            self.fleet
                .by_cores
                .iter()
                .map(|(c, b)| (format!("x{c}"), b))
                .collect(),
        );
        out.push_str("\nfleet bucket book:\n");
        out.push_str(&format!("{:<14} {:>12} {:>7}\n", "bucket", "cycles", "share"));
        for (b, c) in self.fleet.total.buckets.iter() {
            if c == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<14} {:>12} {:>6.1}%\n",
                b.label(),
                c,
                100.0 * c as f64 / total_crit as f64
            ));
        }
        out
    }

    /// Chrome trace-event JSON loadable at <https://ui.perfetto.dev>:
    /// one thread track per worker carrying occupancy slices (compile
    /// sub-spans nested inside), one async track per job with its
    /// queued/attempt/backoff spans nested, instant marks for
    /// shed/invalid arrivals on the admission track, and queue-depth /
    /// utilization counter tracks from the time series.
    #[must_use]
    pub fn to_perfetto(&self) -> String {
        let s = |x: &str| Value::String(x.to_string());
        let mut events: Vec<Value> = Vec::new();
        let meta = |name: &str, tid: u64, label: String| {
            Value::Object(vec![
                ("name".to_string(), s(name)),
                ("ph".to_string(), s("M")),
                ("pid".to_string(), Value::UInt(1)),
                ("tid".to_string(), Value::UInt(tid)),
                (
                    "args".to_string(),
                    Value::Object(vec![("name".to_string(), Value::String(label))]),
                ),
            ])
        };
        events.push(meta("process_name", 0, "clp-serve".to_string()));
        events.push(meta("thread_name", 0, "admission".to_string()));
        for w in 0..self.workers {
            events.push(meta("thread_name", w as u64 + 1, format!("worker {w}")));
        }
        // Worker occupancy: complete ("X") slices, compile sub-spans
        // nested within by timestamp containment.
        for (w, track) in self.tracks.iter().enumerate() {
            for slice in &track.slices {
                let job = self
                    .jobs
                    .iter()
                    .find(|j| j.id == slice.job)
                    .expect("slice has a job");
                events.push(Value::Object(vec![
                    (
                        "name".to_string(),
                        Value::String(format!(
                            "job {} {} x{}",
                            job.id, job.workload, job.cores
                        )),
                    ),
                    ("cat".to_string(), s("worker")),
                    ("ph".to_string(), s("X")),
                    ("ts".to_string(), Value::UInt(slice.start)),
                    ("dur".to_string(), Value::UInt(slice.end - slice.start)),
                    ("pid".to_string(), Value::UInt(1)),
                    ("tid".to_string(), Value::UInt(w as u64 + 1)),
                    (
                        "args".to_string(),
                        Value::Object(vec![(
                            "attempt".to_string(),
                            Value::UInt(u64::from(slice.attempt)),
                        )]),
                    ),
                ]));
                let attempt = job
                    .attempts
                    .iter()
                    .find(|a| a.attempt == slice.attempt)
                    .expect("slice has an attempt");
                if let Some(c) = attempt.compile {
                    events.push(Value::Object(vec![
                        ("name".to_string(), s("compile")),
                        ("cat".to_string(), s("worker")),
                        ("ph".to_string(), s("X")),
                        ("ts".to_string(), Value::UInt(c.start)),
                        ("dur".to_string(), Value::UInt(c.end - c.start)),
                        ("pid".to_string(), Value::UInt(1)),
                        ("tid".to_string(), Value::UInt(w as u64 + 1)),
                    ]));
                }
            }
        }
        // Per-job async span trees (one track per job id) + admission
        // instants for refused arrivals.
        for job in &self.jobs {
            match job.terminal {
                Terminal::Shed | Terminal::Invalid => {
                    events.push(Value::Object(vec![
                        (
                            "name".to_string(),
                            Value::String(format!(
                                "{} job {} {}",
                                job.terminal.label(),
                                job.id,
                                job.workload
                            )),
                        ),
                        ("cat".to_string(), s("admission")),
                        ("ph".to_string(), s("i")),
                        ("ts".to_string(), Value::UInt(job.arrival)),
                        ("pid".to_string(), Value::UInt(1)),
                        ("tid".to_string(), Value::UInt(0)),
                        ("s".to_string(), s("t")),
                    ]));
                    continue;
                }
                _ => {}
            }
            let async_ev = |name: String, ph: &str, ts: u64, id: u64| {
                Value::Object(vec![
                    ("name".to_string(), Value::String(name)),
                    ("cat".to_string(), s("job")),
                    ("ph".to_string(), s(ph)),
                    ("ts".to_string(), Value::UInt(ts)),
                    ("pid".to_string(), Value::UInt(1)),
                    ("id".to_string(), Value::UInt(id)),
                ])
            };
            let title = format!("job {} {} x{}", job.id, job.workload, job.cores);
            events.push(async_ev(title.clone(), "b", job.arrival, job.id));
            for (k, q) in job.queued.iter().enumerate() {
                events.push(async_ev("queued".to_string(), "b", q.start, job.id));
                events.push(async_ev("queued".to_string(), "e", q.end, job.id));
                let a = &job.attempts[k];
                events.push(async_ev(
                    format!("attempt {} ({})", a.attempt, a.end_kind.label()),
                    "b",
                    a.start,
                    job.id,
                ));
                if let Some(c) = a.compile {
                    events.push(async_ev("compile".to_string(), "b", c.start, job.id));
                    events.push(async_ev("compile".to_string(), "e", c.end, job.id));
                }
                events.push(async_ev(
                    format!("attempt {} ({})", a.attempt, a.end_kind.label()),
                    "e",
                    a.end,
                    job.id,
                ));
                if let Some(bo) = job.backoffs.get(k) {
                    events.push(async_ev("backoff".to_string(), "b", bo.start, job.id));
                    events.push(async_ev("backoff".to_string(), "e", bo.end, job.id));
                }
            }
            events.push(async_ev(title, "e", job.finish, job.id));
        }
        // Counter tracks from the series: queue depth and utilization.
        for (path, name, divisor) in [
            ("scope/queue_depth", "queue_depth", 1000u64),
            ("scope/utilization", "utilization_milli", 1),
        ] {
            if let Some(col) = self.series.columns.iter().find(|c| c.path == path) {
                for (i, &v) in col.values.iter().enumerate() {
                    events.push(Value::Object(vec![
                        ("name".to_string(), s(name)),
                        ("ph".to_string(), s("C")),
                        ("ts".to_string(), Value::UInt(self.series.ends[i])),
                        ("pid".to_string(), Value::UInt(1)),
                        (
                            "args".to_string(),
                            Value::Object(vec![(
                                "value".to_string(),
                                Value::UInt(v / divisor),
                            )]),
                        ),
                    ]));
                }
            }
        }
        serde_json::to_string(&Value::Object(vec![(
            "traceEvents".to_string(),
            Value::Array(events),
        )]))
        .expect("serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Bucket, ProcProfile};

    fn profile(execute: u64, mem: u64) -> ProfileReport {
        let mut p = ProcProfile::default();
        p.run_buckets.add(Bucket::Execute, execute);
        p.run_buckets.add(Bucket::MemWait, mem);
        p.crit_path_cycles = execute + mem;
        ProfileReport {
            procs: vec![p],
            elapsed: execute + mem + 10,
            ..ProfileReport::default()
        }
    }

    /// Drives one small synthetic service history through the recorder:
    /// job 0 completes on attempt 0; job 1 fails once and completes on
    /// its retry; job 2 is shed.
    fn recorded() -> ScopeReport {
        let mut r = ScopeRecorder::new(&ScopeOptions { period: 100 }, 2);
        r.admitted(0, "conv", "hand_optimized", 4, 10);
        r.admitted(1, "bezier", "eembc", 2, 12);
        r.rejected(2, "conv", "hand_optimized", 8, 14, true);
        r.dispatched(0, 0, 10, 50, false, 5);
        r.dispatched(1, 1, 12, 40, true, 5);
        r.sample(20, 0, 2);
        r.completed(0, 50, 35, Some(&profile(30, 5)));
        r.retry(1, 40, 60, AttemptEnd::Transient);
        r.dispatched(1, 1, 60, 90, true, 5);
        r.completed(1, 90, 25, Some(&profile(20, 5)));
        r.finish(90, 7)
    }

    #[test]
    fn spans_nest_and_tile() {
        let rep = recorded();
        assert_eq!(rep.jobs.len(), 3);
        let j1 = &rep.jobs[1];
        assert_eq!(j1.id, 1);
        assert_eq!(j1.queued.len(), 2);
        assert_eq!(j1.attempts.len(), 2);
        assert_eq!(j1.backoffs.len(), 1);
        // queued -> attempt -> backoff -> queued -> attempt tiles.
        assert_eq!(j1.queued[0].end, j1.attempts[0].start);
        assert_eq!(j1.attempts[0].end, j1.backoffs[0].start);
        assert_eq!(j1.backoffs[0].end, j1.queued[1].start);
        assert_eq!(j1.queued[1].end, j1.attempts[1].start);
        assert_eq!(j1.attempts[1].end, j1.finish);
        assert_eq!(j1.attempts[0].end_kind, AttemptEnd::Transient);
        assert_eq!(j1.attempts[1].end_kind, AttemptEnd::Success);
        // Compile sub-span inside the missing attempt only.
        let j0 = &rep.jobs[0];
        let c = j0.attempts[0].compile.expect("miss compiles");
        assert!(c.start >= j0.attempts[0].start && c.end <= j0.attempts[0].end);
        assert!(j1.attempts[0].compile.is_none(), "hit has no compile span");
        // The shed job has no spans.
        assert_eq!(rep.jobs[2].terminal, Terminal::Shed);
        assert!(rep.jobs[2].attempts.is_empty());
    }

    #[test]
    fn worker_tracks_never_overlap() {
        let rep = recorded();
        assert_eq!(rep.tracks.len(), 2);
        assert_eq!(rep.tracks[1].slices.len(), 2);
        for track in &rep.tracks {
            for pair in track.slices.windows(2) {
                assert!(pair[0].end <= pair[1].start);
            }
        }
        assert_eq!(rep.tracks[0].busy_ticks(), 40);
        assert_eq!(rep.tracks[1].busy_ticks(), 28 + 30);
    }

    #[test]
    fn fleet_book_sums_the_per_job_books() {
        let rep = recorded();
        assert_eq!(rep.fleet.total.jobs, 2);
        assert_eq!(rep.fleet.total.sim_cycles, 60);
        assert_eq!(rep.fleet.total.buckets.total(), 60);
        assert_eq!(rep.fleet.by_class.len(), 2);
        assert_eq!(rep.fleet.by_class["hand_optimized"].buckets.total(), 35);
        assert_eq!(rep.fleet.by_class["eembc"].buckets.total(), 25);
        assert_eq!(rep.fleet.by_cores[&4].jobs, 1);
        assert_eq!(rep.fleet.by_cores[&2].jobs, 1);
        // The per-job books sum exactly to the fleet total.
        let mut sum = BucketCycles::default();
        for j in &rep.jobs {
            if let Some(b) = &j.book {
                sum.merge(b);
            }
        }
        assert_eq!(sum, rep.fleet.total.buckets);
    }

    #[test]
    fn series_records_levels_and_deltas() {
        let rep = recorded();
        // The sample at tick 20 is before the first due tick (period
        // 100), so only the finish flush closes an interval.
        assert!(!rep.series.ends.is_empty());
        let depth = rep
            .series
            .columns
            .iter()
            .find(|c| c.path == "scope/queue_depth")
            .expect("column");
        assert_eq!(depth.values.len(), rep.series.ends.len());
        let completed = rep
            .series
            .columns
            .iter()
            .find(|c| c.path == "scope/completed")
            .expect("column");
        let total: u64 = completed.values.iter().sum();
        assert_eq!(total, 2, "completed column deltas sum to the census");
    }

    #[test]
    fn json_and_renderers_are_deterministic() {
        let a = recorded();
        let b = recorded();
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"schema\": \"clp-scope-v1\""));
        assert_eq!(a.to_perfetto(), b.to_perfetto());
        let trace = a.to_perfetto();
        assert!(trace.contains("traceEvents"));
        assert!(trace.contains("worker 0"));
        assert!(trace.contains("queue_depth"));
        assert!(trace.contains("shed job 2"));
        let fleet = a.render_fleet();
        assert!(fleet.contains("by workload class"));
        assert!(fleet.contains("hand_optimized"));
        assert!(fleet.contains("x4"));
        assert!(fleet.contains("execute"));
        let summary = a.render_summary();
        assert!(summary.contains("2 completed"));
        assert!(summary.contains("1 shed"));
    }
}
