//! clp-prof: top-down cycle accounting and critical-path extraction.
//!
//! The simulator (when profiling is enabled) records, for every committed
//! block, which input *last-arrived* at each firing instruction — the
//! dispatch hand-off, an operand hop chain over the mesh, a register-read
//! round trip, or a memory-system response. Walking those last-arrival
//! edges backward from the commit handshake yields the block's critical
//! path; clipping each walk at the previous block's commit ("commit-pull"
//! accounting) tiles the whole run, so the per-[`Bucket`] totals sum
//! *exactly* to the cycles between composition and halt.
//!
//! This module holds the passive data model — the bucket taxonomy and the
//! accumulated [`ProfileReport`] — plus its renderings (stats-registry
//! node, pinned JSON schema, human-readable tables). The edge recording
//! and the backward walk themselves live in `clp-sim`, which owns the
//! microarchitectural state the walk consumes.

use crate::snapshot::StatsNode;
use serde::Value;
use std::collections::BTreeMap;

/// Number of cycle-accounting buckets (the length of [`Bucket::ALL`]).
pub const NUM_BUCKETS: usize = 14;

/// Where a cycle went, per the last-arrival attribution rule.
///
/// Every cycle of a profiled run lands in exactly one bucket. The first
/// group covers getting a block's instructions into the window, the
/// second covers executing them, and the third covers retiring the block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bucket {
    /// Block fetch machinery: next-block prediction, I-cache access,
    /// fetch-command distribution, and instruction dispatch up to the
    /// critical instruction entering the window.
    Fetch,
    /// Owner-to-owner fetch hand-off in flight on the control mesh.
    HandOff,
    /// Redirect gap after a next-block misprediction (wrong-path cycles
    /// plus the refetch of the correct target).
    Mispredict,
    /// Refetch gaps after a load/store ordering violation, speculative
    /// resource overflow, or hard-fault recovery flush.
    Squash,
    /// A ready instruction waiting for an issue slot (issue-width
    /// contention on its core).
    IssueWait,
    /// ALU/FPU occupancy of the critical producer.
    Execute,
    /// Same-core operand bypass latency.
    OperandLocal,
    /// Operand mesh transit of the critical operand: hop latency plus
    /// link contention.
    OperandNoc,
    /// Register-read round trip at the owning bank, including waiting
    /// for a cross-block writer to forward the value.
    RegWait,
    /// Memory-system service of the critical load: LSQ search, cache
    /// access, DRAM, NACK retries, and conservative-load deferral.
    MemWait,
    /// Exit-branch resolution traveling from the issuing core to the
    /// block owner.
    Resolve,
    /// Store and register-write acknowledgments draining after the last
    /// dataflow firing, gating block completion.
    OutputDrain,
    /// Completion gates met but the block could not start committing
    /// (not yet the oldest block, or event-queue slack).
    CommitWait,
    /// The distributed commit handshake and architectural update.
    Commit,
}

impl Bucket {
    /// Every bucket, in canonical (rendering) order.
    pub const ALL: [Bucket; NUM_BUCKETS] = [
        Bucket::Fetch,
        Bucket::HandOff,
        Bucket::Mispredict,
        Bucket::Squash,
        Bucket::IssueWait,
        Bucket::Execute,
        Bucket::OperandLocal,
        Bucket::OperandNoc,
        Bucket::RegWait,
        Bucket::MemWait,
        Bucket::Resolve,
        Bucket::OutputDrain,
        Bucket::CommitWait,
        Bucket::Commit,
    ];

    /// Stable snake_case label (JSON keys, stats-registry metric names).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Bucket::Fetch => "fetch",
            Bucket::HandOff => "hand_off",
            Bucket::Mispredict => "mispredict",
            Bucket::Squash => "squash",
            Bucket::IssueWait => "issue_wait",
            Bucket::Execute => "execute",
            Bucket::OperandLocal => "operand_local",
            Bucket::OperandNoc => "operand_noc",
            Bucket::RegWait => "reg_wait",
            Bucket::MemWait => "mem_wait",
            Bucket::Resolve => "resolve",
            Bucket::OutputDrain => "output_drain",
            Bucket::CommitWait => "commit_wait",
            Bucket::Commit => "commit",
        }
    }

    /// The bucket's index into a [`BucketCycles`] array (canonical order).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Cycles accumulated per [`Bucket`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BucketCycles(pub [u64; NUM_BUCKETS]);

impl BucketCycles {
    /// Charges `cycles` to `bucket`.
    pub fn add(&mut self, bucket: Bucket, cycles: u64) {
        self.0[bucket.index()] += cycles;
    }

    /// Cycles charged to `bucket`.
    #[must_use]
    pub fn get(&self, bucket: Bucket) -> u64 {
        self.0[bucket.index()]
    }

    /// Sum over all buckets.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Adds another accumulation into this one, bucket by bucket.
    pub fn merge(&mut self, other: &BucketCycles) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }

    /// `(bucket, cycles)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Bucket, u64)> + '_ {
        Bucket::ALL.iter().map(move |&b| (b, self.get(b)))
    }

    fn to_json(self) -> Value {
        Value::Object(
            self.iter()
                .map(|(b, c)| (b.label().to_string(), Value::UInt(c)))
                .collect(),
        )
    }
}

/// Span observations for one block address: how often it committed and
/// the shortest fetch-to-commit span any commit achieved.
///
/// The *minimum* is the figure of merit: clp-bound's static per-block
/// lower bound must hold for every execution, so the soundness gate
/// compares it against the best span the simulator ever measured.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockSpanStat {
    /// Block address.
    pub addr: u64,
    /// Commits observed for this block.
    pub commits: u64,
    /// Minimum fetch-to-commit span over those commits, in cycles.
    pub min_cycles: u64,
}

/// One logical processor's profile: per-block tilings summed over every
/// committed block, plus the whole-run critical path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcProfile {
    /// Committed blocks profiled.
    pub blocks: u64,
    /// Sum of every block's fetch-to-commit span in cycles.
    pub block_cycles: u64,
    /// Per-block top-down buckets summed over blocks. Invariant:
    /// `block_buckets.total() == block_cycles` (each block tiles its own
    /// span exactly).
    pub block_buckets: BucketCycles,
    /// Whole-run commit-pull accounting. Invariant:
    /// `run_buckets.total() == crit_path_cycles`.
    pub run_buckets: BucketCycles,
    /// Length of the whole-run critical path in cycles (composition to
    /// final commit); never exceeds the machine's elapsed cycles.
    pub crit_path_cycles: u64,
    /// Last-arrival dependence edges walked on the run-level path.
    pub crit_path_edges: u64,
    /// Longest single-block backward chain, in edges.
    pub longest_chain: u64,
    /// Critical loads served by a store forward out of the LSQ.
    pub crit_loads_forwarded: u64,
    /// Critical loads served by an L1 D-cache hit.
    pub crit_loads_l1: u64,
    /// Critical loads that missed L1 (served by L2 or DRAM).
    pub crit_loads_missed: u64,
    /// Per-block span observations, sorted by block address.
    pub block_spans: Vec<BlockSpanStat>,
}

impl ProcProfile {
    /// Folds one committed block's fetch-to-commit span into the
    /// per-address span table.
    pub fn record_span(&mut self, addr: u64, span: u64) {
        match self.block_spans.binary_search_by_key(&addr, |s| s.addr) {
            Ok(i) => {
                let s = &mut self.block_spans[i];
                s.commits += 1;
                s.min_cycles = s.min_cycles.min(span);
            }
            Err(i) => self.block_spans.insert(
                i,
                BlockSpanStat {
                    addr,
                    commits: 1,
                    min_cycles: span,
                },
            ),
        }
    }

    /// Renders this processor's profile as a stats-registry node.
    #[must_use]
    pub fn to_node(&self, name: &str) -> StatsNode {
        let mut buckets = StatsNode::new("buckets");
        for (b, c) in self.run_buckets.iter() {
            buckets = buckets.count(b.label(), c);
        }
        let mut block_buckets = StatsNode::new("block_buckets");
        for (b, c) in self.block_buckets.iter() {
            block_buckets = block_buckets.count(b.label(), c);
        }
        StatsNode::new(name)
            .count("blocks", self.blocks)
            .count("block_cycles", self.block_cycles)
            .count("crit_path_cycles", self.crit_path_cycles)
            .count("crit_path_edges", self.crit_path_edges)
            .count("longest_chain", self.longest_chain)
            .count("crit_loads_forwarded", self.crit_loads_forwarded)
            .count("crit_loads_l1", self.crit_loads_l1)
            .count("crit_loads_missed", self.crit_loads_missed)
            .child(buckets)
            .child(block_buckets)
    }

    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("blocks".to_string(), Value::UInt(self.blocks)),
            ("block_cycles".to_string(), Value::UInt(self.block_cycles)),
            (
                "crit_path_cycles".to_string(),
                Value::UInt(self.crit_path_cycles),
            ),
            (
                "crit_path_edges".to_string(),
                Value::UInt(self.crit_path_edges),
            ),
            ("longest_chain".to_string(), Value::UInt(self.longest_chain)),
            (
                "crit_loads".to_string(),
                Value::Object(vec![
                    (
                        "forwarded".to_string(),
                        Value::UInt(self.crit_loads_forwarded),
                    ),
                    ("l1_hit".to_string(), Value::UInt(self.crit_loads_l1)),
                    ("missed".to_string(), Value::UInt(self.crit_loads_missed)),
                ]),
            ),
            ("run_buckets".to_string(), self.run_buckets.to_json()),
            ("block_buckets".to_string(), self.block_buckets.to_json()),
            (
                "block_spans".to_string(),
                Value::Array(
                    self.block_spans
                        .iter()
                        .map(|s| {
                            Value::Object(vec![
                                ("addr".to_string(), Value::UInt(s.addr)),
                                ("commits".to_string(), Value::UInt(s.commits)),
                                ("min_cycles".to_string(), Value::UInt(s.min_cycles)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The complete profile of one run: per-processor accounting plus the
/// per-core and per-mesh-link contribution maps.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileReport {
    /// One profile per logical processor, in processor-id order.
    pub procs: Vec<ProcProfile>,
    /// Critical-path cycles attributed to each global core (consumer
    /// core for operand/issue segments, bank core for register/memory
    /// segments, owner core for fetch/commit segments).
    pub core_cycles: Vec<u64>,
    /// Critical-path cycles attributed to each directed operand-mesh
    /// link `(from_node, to_node)`, sorted by link.
    pub link_cycles: Vec<((usize, usize), u64)>,
    /// Operand-mesh width (for heatmap rendering).
    pub mesh_width: usize,
    /// Operand-mesh height (for heatmap rendering).
    pub mesh_height: usize,
    /// Total machine cycles the run took.
    pub elapsed: u64,
}

impl ProfileReport {
    /// The run-level buckets summed over every logical processor.
    #[must_use]
    pub fn run_buckets(&self) -> BucketCycles {
        let mut total = BucketCycles::default();
        for p in &self.procs {
            total.merge(&p.run_buckets);
        }
        total
    }

    /// Per-address span observations merged across processors: commit
    /// counts sum, minimum spans take the min. This is the measured side
    /// of the clp-bound soundness check.
    #[must_use]
    pub fn block_spans(&self) -> BTreeMap<u64, BlockSpanStat> {
        let mut merged: BTreeMap<u64, BlockSpanStat> = BTreeMap::new();
        for p in &self.procs {
            for s in &p.block_spans {
                merged
                    .entry(s.addr)
                    .and_modify(|m| {
                        m.commits += s.commits;
                        m.min_cycles = m.min_cycles.min(s.min_cycles);
                    })
                    .or_insert(*s);
            }
        }
        merged
    }

    /// Whole-run critical-path length (max over processors — independent
    /// logical processors run concurrently).
    #[must_use]
    pub fn crit_path_cycles(&self) -> u64 {
        self.procs
            .iter()
            .map(|p| p.crit_path_cycles)
            .max()
            .unwrap_or(0)
    }

    /// Renders the report as a stats-registry node named `"profile"`.
    #[must_use]
    pub fn to_node(&self) -> StatsNode {
        let mut buckets = StatsNode::new("buckets");
        for (b, c) in self.run_buckets().iter() {
            buckets = buckets.count(b.label(), c);
        }
        let mut node = StatsNode::new("profile")
            .count("elapsed", self.elapsed)
            .count("crit_path_cycles", self.crit_path_cycles())
            .child(buckets);
        for (i, p) in self.procs.iter().enumerate() {
            node = node.child(p.to_node(&format!("proc{i}")));
        }
        node
    }

    /// The report under the pinned `clp-prof-v1` JSON schema.
    #[must_use]
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            (
                "schema".to_string(),
                Value::String("clp-prof-v1".to_string()),
            ),
            ("elapsed".to_string(), Value::UInt(self.elapsed)),
            (
                "mesh".to_string(),
                Value::Object(vec![
                    ("width".to_string(), Value::UInt(self.mesh_width as u64)),
                    ("height".to_string(), Value::UInt(self.mesh_height as u64)),
                ]),
            ),
            (
                "procs".to_string(),
                Value::Array(self.procs.iter().map(ProcProfile::to_json).collect()),
            ),
            (
                "cores".to_string(),
                Value::Array(self.core_cycles.iter().map(|&c| Value::UInt(c)).collect()),
            ),
            (
                "links".to_string(),
                Value::Array(
                    self.link_cycles
                        .iter()
                        .map(|&((from, to), cycles)| {
                            Value::Object(vec![
                                ("from".to_string(), Value::UInt(from as u64)),
                                ("to".to_string(), Value::UInt(to as u64)),
                                ("cycles".to_string(), Value::UInt(cycles)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// A per-bucket breakdown table: one row per bucket with cycles and
    /// the share of the run-level critical path.
    #[must_use]
    pub fn render_breakdown(&self) -> String {
        let buckets = self.run_buckets();
        let total = buckets.total().max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>12} {:>7}\n",
            "bucket", "cycles", "share"
        ));
        for (b, c) in buckets.iter() {
            if c == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<14} {:>12} {:>6.1}%\n",
                b.label(),
                c,
                100.0 * c as f64 / total as f64
            ));
        }
        out.push_str(&format!(
            "{:<14} {:>12} {:>6.1}%\n",
            "total",
            buckets.total(),
            100.0
        ));
        out
    }

    /// A mesh-shaped heatmap of per-core critical-cycle contributions
    /// (one row per mesh row; `.` marks cores that never appeared on the
    /// critical path).
    #[must_use]
    pub fn render_core_heatmap(&self) -> String {
        let mut out = String::new();
        for y in 0..self.mesh_height {
            for x in 0..self.mesh_width {
                let core = y * self.mesh_width + x;
                let c = self.core_cycles.get(core).copied().unwrap_or(0);
                if c == 0 {
                    out.push_str(&format!("{:>9}", "."));
                } else {
                    out.push_str(&format!("{c:>9}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// The `top_n` hottest directed mesh links, one per line.
    #[must_use]
    pub fn render_links(&self, top_n: usize) -> String {
        let mut links = self.link_cycles.clone();
        links.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut out = String::new();
        for &((from, to), cycles) in links.iter().take(top_n) {
            out.push_str(&format!("  link {from:>2} -> {to:>2}: {cycles} cycles\n"));
        }
        if links.is_empty() {
            out.push_str("  (no operand-mesh segments on the critical path)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_match_canonical_order() {
        for (i, b) in Bucket::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
        // Labels are unique.
        let mut labels: Vec<_> = Bucket::ALL.iter().map(|b| b.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), NUM_BUCKETS);
    }

    #[test]
    fn bucket_cycles_accumulate_and_merge() {
        let mut a = BucketCycles::default();
        a.add(Bucket::Fetch, 5);
        a.add(Bucket::Execute, 7);
        assert_eq!(a.get(Bucket::Fetch), 5);
        assert_eq!(a.total(), 12);
        let mut b = BucketCycles::default();
        b.add(Bucket::Fetch, 1);
        b.merge(&a);
        assert_eq!(b.get(Bucket::Fetch), 6);
        assert_eq!(b.total(), 13);
    }

    #[test]
    fn report_renders_and_serializes() {
        let mut p = ProcProfile {
            blocks: 2,
            block_cycles: 100,
            crit_path_cycles: 90,
            crit_path_edges: 12,
            longest_chain: 5,
            ..ProcProfile::default()
        };
        p.block_buckets.add(Bucket::Fetch, 40);
        p.block_buckets.add(Bucket::Execute, 60);
        p.run_buckets.add(Bucket::Fetch, 30);
        p.run_buckets.add(Bucket::Execute, 60);
        let report = ProfileReport {
            procs: vec![p],
            core_cycles: vec![50, 0, 40],
            link_cycles: vec![((0, 1), 9), ((1, 2), 3)],
            mesh_width: 2,
            mesh_height: 2,
            elapsed: 120,
        };
        assert_eq!(report.run_buckets().total(), 90);
        assert_eq!(report.crit_path_cycles(), 90);
        let node = report.to_node();
        assert_eq!(node.name, "profile");
        let table = report.render_breakdown();
        assert!(table.contains("fetch"));
        assert!(table.contains("execute"));
        let heat = report.render_core_heatmap();
        assert_eq!(heat.lines().count(), 2);
        let links = report.render_links(1);
        assert!(links.contains("0 ->  1"));
        let json = report.to_json_value();
        let text = serde_json::to_string(&json).unwrap();
        assert!(text.contains("clp-prof-v1"));
    }
}
