//! clp-trend: deterministic columnar time-series telemetry and phase
//! detection.
//!
//! [`TrendRecorder`] generalizes the fixed-field `IntervalSampler` into a
//! column store: per interval it records any selected set of
//! stats-registry paths (`mem/*`, `operand_net/*`, `faults/*`, …) plus
//! the 14 clp-prof cycle-accounting buckets and the per-core heat-map
//! rows. Recording follows the zero-perturbation discipline — values are
//! *written* on due cycles but never *read back* for timing, so cycle
//! counts with trend recording on are bit-identical to uninstrumented
//! runs (asserted by `obs_guard`).
//!
//! On top of the columns, a deterministic phase detector runs windowed
//! change-point scoring over the per-interval bucket/IPC feature vectors.
//! The decision path is integer-only (per-mille shares, milli-IPC,
//! integer window means, L1 distances) with fixed tie-breaks — earliest
//! boundary wins — so phase tables are pinnable in goldens. The result is
//! a [`TrendReport`]: the pinned `clp-trend-v1` JSON schema, an ASCII
//! timeline renderer, a phase table with per-phase bucket breakdowns, and
//! a Perfetto counter-track export.

use crate::profile::{Bucket, BucketCycles, NUM_BUCKETS};
use crate::snapshot::{MetricValue, StatsNode};
use serde::Value;

/// What the trend recorder samples and how phases are scored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrendOptions {
    /// Interval width in cycles.
    pub period: u64,
    /// Stats-registry paths to record as columns (e.g. `mem/l1d_misses`,
    /// `proc0/ipc`, `operand_net/link_traversals`). Count metrics are
    /// stored as per-interval deltas, gauges as milli-unit levels.
    pub paths: Vec<String>,
    /// Record the 14 clp-prof buckets as per-interval delta columns
    /// (requires profiling to be enabled on the machine; zero otherwise).
    pub buckets: bool,
    /// Record per-core critical-cycle heat rows (same requirement).
    pub heat: bool,
    /// Half-window width (in intervals) for change-point scoring.
    pub phase_window: usize,
    /// Minimum L1 feature distance (per-mille units) for a boundary.
    pub phase_threshold: u64,
}

impl Default for TrendOptions {
    fn default() -> Self {
        TrendOptions {
            period: 1000,
            paths: Vec::new(),
            buckets: true,
            heat: true,
            phase_window: 4,
            phase_threshold: 150,
        }
    }
}

/// How a recorded column's integer values are to be read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnKind {
    /// Per-interval delta of a monotonically accumulated count.
    Count,
    /// Level of a gauge at the interval end, in milli-units
    /// (`round(value * 1000)`).
    GaugeMilli,
    /// The path never resolved in the stats tree; values are all zero.
    Missing,
}

impl ColumnKind {
    /// Stable label used in the JSON schema.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ColumnKind::Count => "count",
            ColumnKind::GaugeMilli => "gauge_milli",
            ColumnKind::Missing => "missing",
        }
    }
}

/// One recorded stats-registry column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrendColumn {
    /// The stats-registry path this column tracks.
    pub path: String,
    /// How the values are encoded.
    pub kind: ColumnKind,
    /// One integer per interval.
    pub values: Vec<u64>,
}

/// One detected phase: a maximal run of intervals with a stable
/// bucket/IPC profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Phase {
    /// First interval of the phase (inclusive).
    pub start_interval: usize,
    /// Last interval of the phase (inclusive).
    pub end_interval: usize,
    /// First cycle of the phase.
    pub start_cycle: u64,
    /// Last cycle of the phase (exclusive).
    pub end_cycle: u64,
    /// Instructions dispatched during the phase.
    pub insts: u64,
    /// Dispatched instructions per cycle over the phase, in milli-units.
    pub ipc_milli: u64,
    /// Bucket cycles summed over the phase's intervals.
    pub buckets: BucketCycles,
    /// The bucket with the most cycles (canonical order breaks ties).
    pub dominant: Bucket,
    /// Change-point score at the boundary that opened this phase (0 for
    /// the first phase).
    pub score: u64,
}

/// The complete time-series record of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct TrendReport {
    /// Interval width in cycles (the last interval may be shorter).
    pub period: u64,
    /// Total cycles the run took.
    pub cycles: u64,
    /// End cycle of each interval (exclusive); starts are the previous
    /// entry (0 for the first).
    pub ends: Vec<u64>,
    /// Instructions dispatched per interval.
    pub insts: Vec<u64>,
    /// Requested stats-registry columns.
    pub columns: Vec<TrendColumn>,
    /// Per-bucket delta columns, indexed per [`Bucket::ALL`]; empty when
    /// bucket recording was off.
    pub buckets: Vec<Vec<u64>>,
    /// Per-core critical-cycle delta rows; empty when heat recording was
    /// off.
    pub heat: Vec<Vec<u64>>,
    /// Detected phases, covering every interval exactly once.
    pub phases: Vec<Phase>,
}

/// Per-column delta state while recording.
#[derive(Clone, Debug)]
struct ColState {
    kind: ColumnKind,
    last: u64,
}

/// Records columnar interval samples during a run and detects phases at
/// [`TrendRecorder::finish`] time.
#[derive(Clone, Debug)]
pub struct TrendRecorder {
    opts: TrendOptions,
    next_due: u64,
    window_start: u64,
    ends: Vec<u64>,
    insts: Vec<u64>,
    last_insts: u64,
    col_state: Vec<ColState>,
    col_values: Vec<Vec<u64>>,
    last_buckets: [u64; NUM_BUCKETS],
    bucket_values: Vec<Vec<u64>>,
    last_heat: Vec<u64>,
    heat_values: Vec<Vec<u64>>,
}

impl TrendRecorder {
    /// A recorder sampling every `opts.period` cycles over `cores`
    /// heat-map rows.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    #[must_use]
    pub fn new(opts: TrendOptions, cores: usize) -> Self {
        assert!(opts.period > 0, "trend period must be positive");
        let n_paths = opts.paths.len();
        let n_heat = if opts.heat { cores } else { 0 };
        let n_buckets = if opts.buckets { NUM_BUCKETS } else { 0 };
        TrendRecorder {
            next_due: opts.period,
            window_start: 0,
            ends: Vec::new(),
            insts: Vec::new(),
            last_insts: 0,
            col_state: vec![
                ColState {
                    kind: ColumnKind::Missing,
                    last: 0,
                };
                n_paths
            ],
            col_values: vec![Vec::new(); n_paths],
            last_buckets: [0; NUM_BUCKETS],
            bucket_values: vec![Vec::new(); n_buckets],
            last_heat: vec![0; n_heat],
            heat_values: vec![Vec::new(); n_heat],
            opts,
        }
    }

    /// Whether the current cycle closes an interval. One integer compare
    /// — the only trend cost on non-due cycles.
    #[inline]
    #[must_use]
    pub fn due(&self, cycle: u64) -> bool {
        cycle >= self.next_due
    }

    /// The earliest cycle at which [`TrendRecorder::due`] will next
    /// return true. Event-driven steppers must not skip past this
    /// cycle, or interval boundaries (and thus the recorded series)
    /// would shift.
    #[inline]
    #[must_use]
    pub fn next_due_cycle(&self) -> u64 {
        self.next_due
    }

    /// Closes the interval ending at `cycle`. `root` is the current
    /// stats tree; `insts` the cumulative dispatched-instruction count;
    /// `prof` the profiler's cumulative run-level buckets and per-core
    /// cycles when profiling is on.
    pub fn record(
        &mut self,
        cycle: u64,
        root: &StatsNode,
        insts: u64,
        prof: Option<(&BucketCycles, &[u64])>,
    ) {
        self.ends.push(cycle);
        self.insts.push(insts - self.last_insts);
        self.last_insts = insts;
        for (i, path) in self.opts.paths.iter().enumerate() {
            let st = &mut self.col_state[i];
            let v = match root.lookup(path) {
                Some(MetricValue::Count(c)) => {
                    if st.kind == ColumnKind::Missing {
                        st.kind = ColumnKind::Count;
                    }
                    let d = c.saturating_sub(st.last);
                    st.last = c;
                    d
                }
                Some(MetricValue::Gauge(g)) => {
                    if st.kind == ColumnKind::Missing {
                        st.kind = ColumnKind::GaugeMilli;
                    }
                    (g.max(0.0) * 1000.0).round() as u64
                }
                None => 0,
            };
            self.col_values[i].push(v);
        }
        let (buckets, heat) = match prof {
            Some((b, h)) => (b.0, h),
            None => ([0; NUM_BUCKETS], &[] as &[u64]),
        };
        for (i, col) in self.bucket_values.iter_mut().enumerate() {
            col.push(buckets[i].saturating_sub(self.last_buckets[i]));
        }
        if self.opts.buckets {
            self.last_buckets = buckets;
        }
        for (i, row) in self.heat_values.iter_mut().enumerate() {
            let cur = heat.get(i).copied().unwrap_or(0);
            row.push(cur.saturating_sub(self.last_heat[i]));
            self.last_heat[i] = cur;
        }
        self.window_start = cycle;
        self.next_due = cycle + self.opts.period;
    }

    /// Closes the final partial interval (if non-empty), runs phase
    /// detection, and returns the finished report.
    #[must_use]
    pub fn finish(
        mut self,
        cycle: u64,
        root: &StatsNode,
        insts: u64,
        prof: Option<(&BucketCycles, &[u64])>,
    ) -> TrendReport {
        if cycle > self.window_start {
            self.record(cycle, root, insts, prof);
        }
        let columns = self
            .opts
            .paths
            .iter()
            .zip(self.col_state.iter())
            .zip(self.col_values.iter())
            .map(|((path, st), values)| TrendColumn {
                path: path.clone(),
                kind: st.kind,
                values: values.clone(),
            })
            .collect();
        let mut report = TrendReport {
            period: self.opts.period,
            cycles: cycle,
            ends: self.ends,
            insts: self.insts,
            columns,
            buckets: self.bucket_values,
            heat: self.heat_values,
            phases: Vec::new(),
        };
        report.phases = detect_phases(&report, self.opts.phase_window, self.opts.phase_threshold);
        report
    }
}

// -- phase detection --------------------------------------------------------

/// One interval's feature vector: the 14 bucket shares in per-mille of
/// the interval's bucket total, plus milli-IPC. All integers.
fn features(report: &TrendReport, i: usize) -> [u64; NUM_BUCKETS + 1] {
    let mut f = [0u64; NUM_BUCKETS + 1];
    if !report.buckets.is_empty() {
        let total: u64 = report.buckets.iter().map(|col| col[i]).sum();
        for (k, col) in report.buckets.iter().enumerate() {
            f[k] = (col[i] * 1000).checked_div(total).unwrap_or(0);
        }
    }
    f[NUM_BUCKETS] = report.insts[i] * 1000 / span_of(report, i).max(1);
    f
}

fn span_of(report: &TrendReport, i: usize) -> u64 {
    let start = if i == 0 { 0 } else { report.ends[i - 1] };
    report.ends[i] - start
}

/// Windowed L1 change-point score at boundary `b` (between intervals
/// `b-1` and `b`): the distance between the integer mean feature vectors
/// of the `w` intervals before and after the boundary.
fn boundary_score(feats: &[[u64; NUM_BUCKETS + 1]], b: usize, window: usize) -> u64 {
    let n = feats.len();
    let w = window.min(b).min(n - b);
    if w == 0 {
        return 0;
    }
    let mut score = 0u64;
    for k in 0..NUM_BUCKETS + 1 {
        let before: u64 = feats[b - w..b].iter().map(|f| f[k]).sum::<u64>() / w as u64;
        let after: u64 = feats[b..b + w].iter().map(|f| f[k]).sum::<u64>() / w as u64;
        score += before.abs_diff(after);
    }
    score
}

/// Deterministic change-point detection: a boundary is accepted when its
/// score reaches the threshold, is a maximum over its `±window`
/// neighborhood (earliest boundary wins ties), and lies at least
/// `window` intervals past the previously accepted boundary.
fn detect_phases(report: &TrendReport, window: usize, threshold: u64) -> Vec<Phase> {
    let n = report.ends.len();
    if n == 0 {
        return Vec::new();
    }
    let window = window.max(1);
    let feats: Vec<[u64; NUM_BUCKETS + 1]> = (0..n).map(|i| features(report, i)).collect();
    let scores: Vec<u64> = (0..=n)
        .map(|b| {
            if b == 0 || b == n {
                0
            } else {
                boundary_score(&feats, b, window)
            }
        })
        .collect();
    let mut boundaries: Vec<usize> = vec![0];
    for b in 1..n {
        if scores[b] < threshold {
            continue;
        }
        let lo = b.saturating_sub(window);
        let hi = (b + window).min(n);
        // Earliest-wins maximum: strictly greater than every earlier
        // neighbor in the window, at least as great as every later one.
        let is_max =
            (lo..b).all(|j| scores[j] < scores[b]) && (b..hi).all(|j| scores[j] <= scores[b]);
        if is_max && b - boundaries.last().expect("nonempty") >= window {
            boundaries.push(b);
        }
    }
    boundaries.push(n);
    let mut phases = Vec::new();
    for pair in boundaries.windows(2) {
        let (s, e) = (pair[0], pair[1]);
        let start_cycle = if s == 0 { 0 } else { report.ends[s - 1] };
        let end_cycle = report.ends[e - 1];
        let insts: u64 = report.insts[s..e].iter().sum();
        let mut buckets = BucketCycles::default();
        for (k, col) in report.buckets.iter().enumerate() {
            buckets.0[k] = col[s..e].iter().sum();
        }
        let dominant = Bucket::ALL
            .iter()
            .copied()
            .max_by_key(|b| buckets.get(*b))
            .expect("buckets nonempty");
        // max_by_key returns the last maximum; canonical order should
        // break ties toward the earlier bucket instead.
        let dominant = Bucket::ALL
            .iter()
            .copied()
            .find(|b| buckets.get(*b) == buckets.get(dominant))
            .expect("found");
        phases.push(Phase {
            start_interval: s,
            end_interval: e - 1,
            start_cycle,
            end_cycle,
            insts,
            ipc_milli: insts * 1000 / (end_cycle - start_cycle).max(1),
            buckets,
            dominant,
            score: scores[s],
        });
    }
    phases
}

// -- report rendering -------------------------------------------------------

impl TrendReport {
    /// The report under the pinned `clp-trend-v1` JSON schema. Every
    /// value is an integer, so equal runs serialize byte-identically.
    #[must_use]
    pub fn to_json_value(&self) -> Value {
        let uints = |v: &[u64]| Value::Array(v.iter().map(|&x| Value::UInt(x)).collect());
        let mut top = vec![
            (
                "schema".to_string(),
                Value::String("clp-trend-v1".to_string()),
            ),
            ("period".to_string(), Value::UInt(self.period)),
            ("cycles".to_string(), Value::UInt(self.cycles)),
            ("intervals".to_string(), Value::UInt(self.ends.len() as u64)),
            ("ends".to_string(), uints(&self.ends)),
            ("insts".to_string(), uints(&self.insts)),
            (
                "columns".to_string(),
                Value::Array(
                    self.columns
                        .iter()
                        .map(|c| {
                            Value::Object(vec![
                                ("path".to_string(), Value::String(c.path.clone())),
                                (
                                    "kind".to_string(),
                                    Value::String(c.kind.label().to_string()),
                                ),
                                ("values".to_string(), uints(&c.values)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if !self.buckets.is_empty() {
            top.push((
                "buckets".to_string(),
                Value::Object(
                    Bucket::ALL
                        .iter()
                        .map(|b| (b.label().to_string(), uints(&self.buckets[b.index()])))
                        .collect(),
                ),
            ));
        }
        if !self.heat.is_empty() {
            top.push((
                "heat".to_string(),
                Value::Array(self.heat.iter().map(|row| uints(row)).collect()),
            ));
        }
        top.push((
            "phases".to_string(),
            Value::Array(
                self.phases
                    .iter()
                    .map(|p| {
                        Value::Object(vec![
                            (
                                "start_interval".to_string(),
                                Value::UInt(p.start_interval as u64),
                            ),
                            (
                                "end_interval".to_string(),
                                Value::UInt(p.end_interval as u64),
                            ),
                            ("start_cycle".to_string(), Value::UInt(p.start_cycle)),
                            ("end_cycle".to_string(), Value::UInt(p.end_cycle)),
                            ("insts".to_string(), Value::UInt(p.insts)),
                            ("ipc_milli".to_string(), Value::UInt(p.ipc_milli)),
                            (
                                "dominant".to_string(),
                                Value::String(p.dominant.label().to_string()),
                            ),
                            ("score".to_string(), Value::UInt(p.score)),
                            (
                                "buckets".to_string(),
                                Value::Object(
                                    p.buckets
                                        .iter()
                                        .map(|(b, c)| (b.label().to_string(), Value::UInt(c)))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ));
        Value::Object(top)
    }

    /// The report serialized as pretty `clp-trend-v1` JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_json_value()).expect("serializes")
    }

    /// An ASCII timeline: one sparkline row of per-interval IPC with `|`
    /// marks at phase boundaries, plus a cycle ruler.
    #[must_use]
    pub fn render_timeline(&self) -> String {
        const GLYPHS: &[u8] = b" .:-=+*#%@";
        let n = self.ends.len();
        if n == 0 {
            return "(no intervals recorded)\n".to_string();
        }
        let ipc: Vec<u64> = (0..n)
            .map(|i| self.insts[i] * 1000 / span_of(self, i).max(1))
            .collect();
        let max = ipc.iter().copied().max().unwrap_or(0).max(1);
        let mut boundaries = vec![false; n];
        for p in self.phases.iter().skip(1) {
            boundaries[p.start_interval] = true;
        }
        let mut line = String::from("ipc |");
        for i in 0..n {
            if boundaries[i] {
                line.push('|');
            }
            let g = (ipc[i] * (GLYPHS.len() as u64 - 1) / max) as usize;
            line.push(GLYPHS[g] as char);
        }
        line.push('|');
        let mut out = format!(
            "{} intervals x {} cycles, {} phases (max ipc {}.{:03})\n",
            n,
            self.period,
            self.phases.len(),
            max / 1000,
            max % 1000
        );
        out.push_str(&line);
        out.push('\n');
        out
    }

    /// The phase table: one row per phase with its interval range, cycle
    /// range, IPC, and dominant buckets.
    #[must_use]
    pub fn render_phase_table(&self) -> String {
        let mut out = format!(
            "{:<6} {:>10} {:>16} {:>8} {:>8} {:<13} top buckets\n",
            "phase", "intervals", "cycles", "ipc", "score", "dominant"
        );
        for (i, p) in self.phases.iter().enumerate() {
            let mut ranked: Vec<(Bucket, u64)> = p.buckets.iter().filter(|&(_, c)| c > 0).collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
            let total = p.buckets.total().max(1);
            let top: Vec<String> = ranked
                .iter()
                .take(3)
                .map(|(b, c)| format!("{} {}%", b.label(), c * 100 / total))
                .collect();
            out.push_str(&format!(
                "{:<6} {:>4}..{:<5} {:>7}..{:<8} {:>4}.{:03} {:>8} {:<13} {}\n",
                i,
                p.start_interval,
                p.end_interval,
                p.start_cycle,
                p.end_cycle,
                p.ipc_milli / 1000,
                p.ipc_milli % 1000,
                p.score,
                p.dominant.label(),
                top.join(", ")
            ));
        }
        out
    }

    /// The series as Chrome trace-event JSON counter tracks (`ph: "C"`),
    /// loadable at <https://ui.perfetto.dev> alongside an event trace:
    /// one `ipc_milli` counter and one multi-series `cycle_buckets`
    /// counter per interval.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let mut events = Vec::new();
        for i in 0..self.ends.len() {
            let ts = self.ends[i];
            let ipc = self.insts[i] * 1000 / span_of(self, i).max(1);
            events.push(Value::Object(vec![
                ("name".to_string(), Value::String("ipc_milli".to_string())),
                ("ph".to_string(), Value::String("C".to_string())),
                ("ts".to_string(), Value::UInt(ts)),
                ("pid".to_string(), Value::UInt(7)),
                (
                    "args".to_string(),
                    Value::Object(vec![("value".to_string(), Value::UInt(ipc))]),
                ),
            ]));
            if !self.buckets.is_empty() {
                events.push(Value::Object(vec![
                    (
                        "name".to_string(),
                        Value::String("cycle_buckets".to_string()),
                    ),
                    ("ph".to_string(), Value::String("C".to_string())),
                    ("ts".to_string(), Value::UInt(ts)),
                    ("pid".to_string(), Value::UInt(7)),
                    (
                        "args".to_string(),
                        Value::Object(
                            Bucket::ALL
                                .iter()
                                .map(|b| {
                                    (
                                        b.label().to_string(),
                                        Value::UInt(self.buckets[b.index()][i]),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                ]));
            }
        }
        serde_json::to_string(&Value::Object(vec![(
            "traceEvents".to_string(),
            Value::Array(events),
        )]))
        .expect("serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(l1d: u64, ipc: f64) -> StatsNode {
        StatsNode::new("run")
            .child(StatsNode::new("mem").count("l1d_misses", l1d))
            .child(StatsNode::new("proc0").gauge("ipc", ipc))
    }

    #[test]
    fn columns_delta_counts_and_level_gauges() {
        let opts = TrendOptions {
            period: 100,
            paths: vec![
                "mem/l1d_misses".to_string(),
                "proc0/ipc".to_string(),
                "no/such/path".to_string(),
            ],
            buckets: false,
            heat: false,
            ..TrendOptions::default()
        };
        let mut rec = TrendRecorder::new(opts, 4);
        assert!(!rec.due(99));
        assert!(rec.due(100));
        rec.record(100, &tree(10, 1.5), 50, None);
        rec.record(200, &tree(25, 2.0), 150, None);
        let report = rec.finish(230, &tree(31, 2.25), 190, None);
        assert_eq!(report.ends, vec![100, 200, 230]);
        assert_eq!(report.insts, vec![50, 100, 40]);
        assert_eq!(report.columns[0].kind, ColumnKind::Count);
        assert_eq!(report.columns[0].values, vec![10, 15, 6]);
        assert_eq!(report.columns[1].kind, ColumnKind::GaugeMilli);
        assert_eq!(report.columns[1].values, vec![1500, 2000, 2250]);
        assert_eq!(report.columns[2].kind, ColumnKind::Missing);
        assert_eq!(report.columns[2].values, vec![0, 0, 0]);
        // A report with no bucket columns still yields one covering phase.
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].end_cycle, 230);
    }

    #[test]
    fn bucket_deltas_tile_the_cumulative_totals() {
        let opts = TrendOptions {
            period: 100,
            phase_window: 1,
            ..TrendOptions::default()
        };
        let mut rec = TrendRecorder::new(opts, 2);
        let mut cum = BucketCycles::default();
        cum.add(Bucket::Execute, 40);
        cum.add(Bucket::MemWait, 10);
        let heat = [30u64, 20];
        rec.record(100, &tree(0, 0.0), 10, Some((&cum, &heat)));
        cum.add(Bucket::Execute, 5);
        cum.add(Bucket::MemWait, 60);
        let heat2 = [40u64, 75];
        let report = rec.finish(200, &tree(0, 0.0), 20, Some((&cum, &heat2)));
        let exec = Bucket::Execute.index();
        let memw = Bucket::MemWait.index();
        assert_eq!(report.buckets[exec], vec![40, 5]);
        assert_eq!(report.buckets[memw], vec![10, 60]);
        assert_eq!(
            report.buckets[exec].iter().sum::<u64>(),
            cum.get(Bucket::Execute)
        );
        assert_eq!(report.heat[0], vec![30, 10]);
        assert_eq!(report.heat[1], vec![20, 55]);
    }

    /// A synthetic two-regime series: execute-dominant then
    /// mem_wait-dominant. The detector must find exactly one boundary at
    /// the regime switch.
    #[test]
    fn phase_detector_finds_the_regime_switch() {
        let opts = TrendOptions {
            period: 100,
            phase_window: 2,
            phase_threshold: 300,
            ..TrendOptions::default()
        };
        let mut rec = TrendRecorder::new(opts, 1);
        let mut cum = BucketCycles::default();
        for i in 1..=12u64 {
            if i <= 6 {
                cum.add(Bucket::Execute, 90);
                cum.add(Bucket::MemWait, 10);
            } else {
                cum.add(Bucket::Execute, 10);
                cum.add(Bucket::MemWait, 90);
            }
            let insts = i * 100;
            if i < 12 {
                rec.record(i * 100, &tree(0, 0.0), insts, Some((&cum, &[0])));
            } else {
                let report = rec.finish(i * 100, &tree(0, 0.0), insts, Some((&cum, &[0])));
                assert_eq!(report.phases.len(), 2, "{:#?}", report.phases);
                assert_eq!(report.phases[0].dominant, Bucket::Execute);
                assert_eq!(report.phases[1].dominant, Bucket::MemWait);
                assert_eq!(report.phases[1].start_interval, 6);
                assert_eq!(report.phases[0].end_cycle, report.phases[1].start_cycle);
                // Renderers cover every phase.
                let table = report.render_phase_table();
                assert!(table.contains("execute"));
                assert!(table.contains("mem_wait"));
                let timeline = report.render_timeline();
                assert!(timeline.contains('|'));
                let json = report.to_json();
                assert!(json.contains("clp-trend-v1"));
                let trace = report.to_chrome_trace();
                assert!(trace.contains("cycle_buckets"));
                return;
            }
        }
    }

    /// Identical inputs serialize byte-identically (the JSON path is
    /// integer-only).
    #[test]
    fn report_json_is_deterministic() {
        let build = || {
            let mut rec = TrendRecorder::new(
                TrendOptions {
                    period: 50,
                    paths: vec!["mem/l1d_misses".to_string()],
                    ..TrendOptions::default()
                },
                2,
            );
            let mut cum = BucketCycles::default();
            cum.add(Bucket::Fetch, 30);
            rec.record(50, &tree(5, 1.0), 10, Some((&cum, &[30, 0])));
            rec.finish(90, &tree(9, 1.25), 25, Some((&cum, &[30, 0])))
        };
        assert_eq!(build().to_json(), build().to_json());
    }
}
