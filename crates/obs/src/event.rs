//! The typed trace-event vocabulary.
//!
//! Every variant is plain-old-data — no heap allocation — so
//! constructing an event on the traced path never touches the
//! allocator, and the [`NullSink`](crate::NullSink) path stays
//! allocation-free (asserted by a test).

/// Why a processor's speculative state was flushed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// Next-block (exit or target) misprediction.
    Mispredict,
    /// Load/store ordering violation detected by the LSQ.
    Violation,
    /// Speculative-resource overflow (in-flight block window full).
    Overflow,
    /// Hard-fault recovery discarded everything younger than the last
    /// globally committed block before recomposing without the dead
    /// cores.
    Recovery,
}

impl FlushReason {
    /// Short label used in trace output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FlushReason::Mispredict => "mispredict",
            FlushReason::Violation => "violation",
            FlushReason::Overflow => "overflow",
            FlushReason::Recovery => "recovery",
        }
    }
}

/// Which cache level an access touched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheLevel {
    /// Per-core L1 data bank.
    L1D,
    /// Per-core L1 instruction bank.
    L1I,
    /// Shared NUCA L2.
    L2,
}

impl CacheLevel {
    /// Short label used in trace output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CacheLevel::L1D => "L1D",
            CacheLevel::L1I => "L1I",
            CacheLevel::L2 => "L2",
        }
    }
}

/// A cycle-stamped microarchitectural event.
///
/// The stamp itself (the cycle) travels alongside the event in
/// [`TraceSink::record`](crate::TraceSink::record), so the variants only
/// carry *what* happened and *where*.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A block was installed into a core's instruction window.
    BlockFetched {
        /// Logical processor id.
        proc: usize,
        /// Physical core the block landed on.
        core: usize,
        /// Block address.
        addr: u64,
        /// Whether the block was speculatively fetched off a prediction.
        speculative: bool,
    },
    /// Block-fetch ownership was handed from one core to the next owner.
    FetchHandoff {
        /// Logical processor id.
        proc: usize,
        /// Core handing off.
        from_core: usize,
        /// Core taking ownership.
        to_core: usize,
        /// Block address being handed off.
        addr: u64,
    },
    /// An instruction fired on an execution port.
    InstIssued {
        /// Logical processor id.
        proc: usize,
        /// Core issuing.
        core: usize,
        /// Owning block address.
        block: u64,
        /// Index of the instruction within its block.
        inst: usize,
        /// Opcode mnemonic.
        opcode: &'static str,
    },
    /// An operand (or protocol message) finished routing on a mesh.
    OperandRouted {
        /// Which mesh plane (`"operand"` or `"control"`).
        plane: &'static str,
        /// Source node.
        src: usize,
        /// Destination node.
        dst: usize,
        /// Cycles from injection to delivery.
        latency: u64,
    },
    /// A mesh router could not forward a message this cycle.
    LinkContention {
        /// Which mesh plane (`"operand"` or `"control"`).
        plane: &'static str,
        /// Node whose output queue stalled.
        node: usize,
    },
    /// A block finished its distributed commit handshake.
    BlockCommitted {
        /// Logical processor id.
        proc: usize,
        /// Owning core.
        core: usize,
        /// Block address.
        addr: u64,
        /// Instructions the block dispatched (committed slots).
        insts: usize,
    },
    /// Speculative state was flushed from a block onward.
    BlockFlushed {
        /// Logical processor id.
        proc: usize,
        /// Block address the flush started at.
        addr: u64,
        /// Why the flush happened.
        reason: FlushReason,
    },
    /// The exit/target predictor resolved a block's actual exit.
    BranchResolved {
        /// Logical processor id.
        proc: usize,
        /// Block whose exit resolved.
        addr: u64,
        /// Whether the next-block prediction was correct.
        correct: bool,
    },
    /// The next-block predictor produced a prediction.
    BlockPredicted {
        /// Core that owns the predictor bank consulted.
        core: usize,
        /// Block being predicted from.
        addr: u64,
        /// Predicted next-block address.
        target: u64,
    },
    /// The LSQ refused a memory operation (flow-control NACK).
    LsqNack {
        /// LSQ bank (global core index).
        bank: usize,
        /// Effective address.
        addr: u64,
    },
    /// The LSQ detected a load/store ordering violation.
    MemViolation {
        /// LSQ bank (global core index) that detected the conflict.
        bank: usize,
        /// Effective address of the conflicting access.
        addr: u64,
    },
    /// A cache miss (with optional dirty write-back of the victim).
    CacheMiss {
        /// Which cache level missed.
        level: CacheLevel,
        /// Bank index within the level.
        bank: usize,
        /// Missing line address.
        addr: u64,
        /// Whether a dirty victim was written back.
        writeback: bool,
    },
    /// The deterministic fault-injection layer perturbed a protocol.
    ///
    /// Injected faults cost cycles, never correctness; this event makes
    /// each perturbation visible in Perfetto so a slow chaos run can be
    /// debugged alongside the protocol events it disturbed.
    FaultInjected {
        /// Stable fault-kind label (e.g. `"noc_delay"`, `"forced_nack"`).
        kind: &'static str,
        /// Core the fault was injected at (owner core for fetch-side
        /// faults, bank core for memory-side faults).
        core: usize,
        /// Extra cycles charged by the fault (0 for faults whose cost is
        /// indirect, like a flipped prediction).
        extra_cycles: u64,
    },
    /// A scheduled hard fault permanently silenced a core's pipelines
    /// and NoC ports. Survivors do *not* see this event's information —
    /// they must detect the silence through the heartbeat watchdog.
    CoreKilled {
        /// Global core index that died.
        core: usize,
    },
    /// The heartbeat watchdog on a logical processor concluded a
    /// participating core is dead.
    CoreDeclaredDead {
        /// Logical processor id.
        proc: usize,
        /// Global core index declared dead.
        core: usize,
        /// Cycles from the kill to this declaration.
        detection_cycles: u64,
    },
    /// Degraded-mode recomposition finished: state migrated off the dead
    /// cores, interleavings re-hashed over the survivors, fetch resumed.
    RecoveryCompleted {
        /// Logical processor id.
        proc: usize,
        /// Cores remaining in the composition.
        survivors: usize,
        /// In-flight blocks discarded by the recovery flush.
        flushed_blocks: usize,
        /// Bytes of architectural state migrated (registers + dirty
        /// cache lines).
        migrated_bytes: u64,
    },
    /// A logical processor was composed from a region of cores — the
    /// allocation decisions (multiprogramming, adaptive control,
    /// degraded-mode recomposition) all flow through this event so trend
    /// series can be aligned with composition changes.
    ProcessorComposed {
        /// Logical processor id assigned.
        proc: usize,
        /// Number of cores in the composition.
        cores: usize,
        /// Global index of the region's first core.
        base_core: usize,
        /// Why the composition happened (e.g. `"compose"`,
        /// `"recompose"`).
        why: &'static str,
    },
    /// A logical processor released its cores back to the chip.
    ProcessorDecomposed {
        /// Logical processor id.
        proc: usize,
        /// Number of cores released.
        cores: usize,
    },
    /// A snapshot of the profiler's cumulative run-level cycle buckets,
    /// emitted at each block commit when both tracing and profiling are
    /// on. Renders as Perfetto counter tracks (`ph: "C"`) so the
    /// top-down accounting draws alongside the event timeline.
    ProfileBuckets {
        /// Logical processor id.
        proc: usize,
        /// Cumulative cycles per bucket, indexed per
        /// [`Bucket::ALL`](crate::profile::Bucket::ALL).
        buckets: [u64; crate::profile::NUM_BUCKETS],
    },
}

impl TraceEvent {
    /// The event's kind as a stable snake_case name (trace `name` field).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::BlockFetched { .. } => "block_fetched",
            TraceEvent::FetchHandoff { .. } => "fetch_handoff",
            TraceEvent::InstIssued { .. } => "inst_issued",
            TraceEvent::OperandRouted { .. } => "operand_routed",
            TraceEvent::LinkContention { .. } => "link_contention",
            TraceEvent::BlockCommitted { .. } => "block_committed",
            TraceEvent::BlockFlushed { .. } => "block_flushed",
            TraceEvent::BranchResolved { .. } => "branch_resolved",
            TraceEvent::BlockPredicted { .. } => "block_predicted",
            TraceEvent::LsqNack { .. } => "lsq_nack",
            TraceEvent::MemViolation { .. } => "mem_violation",
            TraceEvent::CacheMiss { .. } => "cache_miss",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::CoreKilled { .. } => "core_killed",
            TraceEvent::CoreDeclaredDead { .. } => "core_declared_dead",
            TraceEvent::RecoveryCompleted { .. } => "recovery_completed",
            TraceEvent::ProcessorComposed { .. } => "processor_composed",
            TraceEvent::ProcessorDecomposed { .. } => "processor_decomposed",
            TraceEvent::ProfileBuckets { .. } => "cycle_accounting",
        }
    }

    /// Trace category (groups related kinds in viewers).
    #[must_use]
    pub fn category(&self) -> &'static str {
        match self {
            TraceEvent::BlockFetched { .. }
            | TraceEvent::FetchHandoff { .. }
            | TraceEvent::BlockCommitted { .. }
            | TraceEvent::BlockFlushed { .. } => "block",
            TraceEvent::InstIssued { .. } => "issue",
            TraceEvent::OperandRouted { .. } | TraceEvent::LinkContention { .. } => "noc",
            TraceEvent::BranchResolved { .. } | TraceEvent::BlockPredicted { .. } => "predict",
            TraceEvent::LsqNack { .. }
            | TraceEvent::MemViolation { .. }
            | TraceEvent::CacheMiss { .. } => "mem",
            TraceEvent::FaultInjected { .. } | TraceEvent::CoreKilled { .. } => "fault",
            TraceEvent::CoreDeclaredDead { .. } | TraceEvent::RecoveryCompleted { .. } => {
                "recovery"
            }
            TraceEvent::ProcessorComposed { .. } | TraceEvent::ProcessorDecomposed { .. } => {
                "compose"
            }
            TraceEvent::ProfileBuckets { .. } => "profile",
        }
    }

    /// The track a viewer should draw this event on: `(pid, tid)`.
    ///
    /// Cores render as process 0 with one thread per logical processor;
    /// the memory system, NoC planes, and predictor get processes 1–3.
    #[must_use]
    pub fn track(&self) -> (u64, u64) {
        match self {
            TraceEvent::BlockFetched { proc, .. }
            | TraceEvent::FetchHandoff { proc, .. }
            | TraceEvent::InstIssued { proc, .. }
            | TraceEvent::BlockCommitted { proc, .. }
            | TraceEvent::BlockFlushed { proc, .. }
            | TraceEvent::BranchResolved { proc, .. } => (0, *proc as u64),
            TraceEvent::LsqNack { bank, .. } => (1, *bank as u64),
            TraceEvent::MemViolation { bank, .. } => (1, *bank as u64),
            TraceEvent::CacheMiss { bank, .. } => (1, *bank as u64),
            TraceEvent::OperandRouted { plane, dst, .. } => {
                (if *plane == "control" { 3 } else { 2 }, *dst as u64)
            }
            TraceEvent::LinkContention { plane, node } => {
                (if *plane == "control" { 3 } else { 2 }, *node as u64)
            }
            TraceEvent::BlockPredicted { core, .. } => (4, *core as u64),
            TraceEvent::FaultInjected { core, .. } | TraceEvent::CoreKilled { core } => {
                (5, *core as u64)
            }
            TraceEvent::CoreDeclaredDead { proc, .. }
            | TraceEvent::RecoveryCompleted { proc, .. }
            | TraceEvent::ProcessorComposed { proc, .. }
            | TraceEvent::ProcessorDecomposed { proc, .. } => (0, *proc as u64),
            TraceEvent::ProfileBuckets { proc, .. } => (6, *proc as u64),
        }
    }

    /// The event's payload as `(key, value)` pairs for the trace `args`
    /// object. Allocation happens only here, at sink-encoding time —
    /// never on the emitting hot path.
    #[must_use]
    pub fn args(&self) -> Vec<(&'static str, serde::Value)> {
        use serde::Value;
        let hex = |a: u64| Value::String(format!("{a:#x}"));
        match *self {
            TraceEvent::BlockFetched {
                proc,
                core,
                addr,
                speculative,
            } => vec![
                ("proc", Value::UInt(proc as u64)),
                ("core", Value::UInt(core as u64)),
                ("addr", hex(addr)),
                ("speculative", Value::Bool(speculative)),
            ],
            TraceEvent::FetchHandoff {
                proc,
                from_core,
                to_core,
                addr,
            } => vec![
                ("proc", Value::UInt(proc as u64)),
                ("from_core", Value::UInt(from_core as u64)),
                ("to_core", Value::UInt(to_core as u64)),
                ("addr", hex(addr)),
            ],
            TraceEvent::InstIssued {
                proc,
                core,
                block,
                inst,
                opcode,
            } => vec![
                ("proc", Value::UInt(proc as u64)),
                ("core", Value::UInt(core as u64)),
                ("block", hex(block)),
                ("inst", Value::UInt(inst as u64)),
                ("opcode", Value::String(opcode.to_string())),
            ],
            TraceEvent::OperandRouted {
                plane,
                src,
                dst,
                latency,
            } => vec![
                ("plane", Value::String(plane.to_string())),
                ("src", Value::UInt(src as u64)),
                ("dst", Value::UInt(dst as u64)),
                ("latency", Value::UInt(latency)),
            ],
            TraceEvent::LinkContention { plane, node } => vec![
                ("plane", Value::String(plane.to_string())),
                ("node", Value::UInt(node as u64)),
            ],
            TraceEvent::BlockCommitted {
                proc,
                core,
                addr,
                insts,
            } => vec![
                ("proc", Value::UInt(proc as u64)),
                ("core", Value::UInt(core as u64)),
                ("addr", hex(addr)),
                ("insts", Value::UInt(insts as u64)),
            ],
            TraceEvent::BlockFlushed { proc, addr, reason } => vec![
                ("proc", Value::UInt(proc as u64)),
                ("addr", hex(addr)),
                ("reason", Value::String(reason.label().to_string())),
            ],
            TraceEvent::BranchResolved {
                proc,
                addr,
                correct,
            } => vec![
                ("proc", Value::UInt(proc as u64)),
                ("addr", hex(addr)),
                ("correct", Value::Bool(correct)),
            ],
            TraceEvent::BlockPredicted { core, addr, target } => vec![
                ("core", Value::UInt(core as u64)),
                ("addr", hex(addr)),
                ("target", hex(target)),
            ],
            TraceEvent::LsqNack { bank, addr } => {
                vec![("bank", Value::UInt(bank as u64)), ("addr", hex(addr))]
            }
            TraceEvent::MemViolation { bank, addr } => {
                vec![("bank", Value::UInt(bank as u64)), ("addr", hex(addr))]
            }
            TraceEvent::CacheMiss {
                level,
                bank,
                addr,
                writeback,
            } => vec![
                ("level", Value::String(level.label().to_string())),
                ("bank", Value::UInt(bank as u64)),
                ("addr", hex(addr)),
                ("writeback", Value::Bool(writeback)),
            ],
            TraceEvent::FaultInjected {
                kind,
                core,
                extra_cycles,
            } => vec![
                ("kind", Value::String(kind.to_string())),
                ("core", Value::UInt(core as u64)),
                ("extra_cycles", Value::UInt(extra_cycles)),
            ],
            TraceEvent::CoreKilled { core } => vec![("core", Value::UInt(core as u64))],
            TraceEvent::CoreDeclaredDead {
                proc,
                core,
                detection_cycles,
            } => vec![
                ("proc", Value::UInt(proc as u64)),
                ("core", Value::UInt(core as u64)),
                ("detection_cycles", Value::UInt(detection_cycles)),
            ],
            TraceEvent::RecoveryCompleted {
                proc,
                survivors,
                flushed_blocks,
                migrated_bytes,
            } => vec![
                ("proc", Value::UInt(proc as u64)),
                ("survivors", Value::UInt(survivors as u64)),
                ("flushed_blocks", Value::UInt(flushed_blocks as u64)),
                ("migrated_bytes", Value::UInt(migrated_bytes)),
            ],
            TraceEvent::ProcessorComposed {
                proc,
                cores,
                base_core,
                why,
            } => vec![
                ("proc", Value::UInt(proc as u64)),
                ("cores", Value::UInt(cores as u64)),
                ("base_core", Value::UInt(base_core as u64)),
                ("why", Value::String(why.to_string())),
            ],
            TraceEvent::ProcessorDecomposed { proc, cores } => vec![
                ("proc", Value::UInt(proc as u64)),
                ("cores", Value::UInt(cores as u64)),
            ],
            TraceEvent::ProfileBuckets { buckets, .. } => crate::profile::Bucket::ALL
                .iter()
                .map(|b| (b.label(), Value::UInt(buckets[b.index()])))
                .collect(),
        }
    }
}
