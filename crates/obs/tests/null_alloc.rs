//! Proves the disabled/null tracing path never touches the allocator.
//!
//! This file is its own test binary so the counting global allocator
//! sees only this test's activity.

use clp_obs::{NullSink, TraceEvent, Tracer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn emit_burst(tracer: &Tracer, n: u64) {
    for cycle in 0..n {
        tracer.emit(cycle, || TraceEvent::BlockFetched {
            proc: 0,
            core: 3,
            addr: 0x1000 + cycle,
            speculative: true,
        });
        tracer.emit(cycle, || TraceEvent::OperandRouted {
            plane: "operand",
            src: 1,
            dst: 2,
            latency: 4,
        });
        tracer.emit(cycle, || TraceEvent::InstIssued {
            proc: 0,
            core: 3,
            block: 0x1000,
            inst: 7,
            opcode: "add",
        });
    }
}

#[test]
fn null_sink_and_off_tracer_do_not_allocate() {
    // Construct both tracers first — Tracer::new boxes the sink once.
    let off = Tracer::off();
    let null = Tracer::new(NullSink);
    // Warm up any lazy runtime allocation.
    emit_burst(&off, 1);
    emit_burst(&null, 1);

    // The counting allocator is process-global, so a concurrently
    // running harness thread (e.g. progress I/O) can allocate during
    // the window. The property under test is that the emit path CAN
    // run allocation-free, so accept any clean window out of a few.
    let clean_window = (0..5).any(|_| {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        emit_burst(&off, 10_000);
        emit_burst(&null, 10_000);
        ALLOCATIONS.load(Ordering::SeqCst) == before
    });
    assert!(
        clean_window,
        "tracing hooks allocated on the off/null path in every window"
    );
}
