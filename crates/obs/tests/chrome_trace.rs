//! Golden-file test for the Chrome trace writer: the output must be
//! valid JSON in the trace-event format, with non-decreasing timestamps
//! and paired async begin/end records for block lifecycles.

use clp_obs::{CacheLevel, ChromeTraceWriter, FlushReason, TraceEvent, TraceSink};
use serde::Value;

fn record_golden_run(w: &mut ChromeTraceWriter) {
    let events: [(u64, TraceEvent); 10] = [
        (
            1,
            TraceEvent::BlockFetched {
                proc: 0,
                core: 2,
                addr: 0x1000,
                speculative: false,
            },
        ),
        (
            3,
            TraceEvent::BlockPredicted {
                core: 2,
                addr: 0x1000,
                target: 0x1200,
            },
        ),
        (
            5,
            TraceEvent::InstIssued {
                proc: 0,
                core: 2,
                block: 0x1000,
                inst: 0,
                opcode: "add",
            },
        ),
        (
            6,
            TraceEvent::OperandRouted {
                plane: "operand",
                src: 2,
                dst: 5,
                latency: 3,
            },
        ),
        (
            7,
            TraceEvent::CacheMiss {
                level: CacheLevel::L1D,
                bank: 5,
                addr: 0x8000,
                writeback: false,
            },
        ),
        (
            8,
            TraceEvent::LsqNack {
                bank: 5,
                addr: 0x8008,
            },
        ),
        (
            9,
            TraceEvent::FetchHandoff {
                proc: 0,
                from_core: 2,
                to_core: 4,
                addr: 0x1200,
            },
        ),
        (
            11,
            TraceEvent::BlockFetched {
                proc: 0,
                core: 4,
                addr: 0x1200,
                speculative: true,
            },
        ),
        (
            14,
            TraceEvent::BlockCommitted {
                proc: 0,
                core: 2,
                addr: 0x1000,
                insts: 12,
            },
        ),
        (
            17,
            TraceEvent::BlockFlushed {
                proc: 0,
                addr: 0x1200,
                reason: FlushReason::Mispredict,
            },
        ),
    ];
    for (cycle, ev) in events {
        w.record(cycle, ev);
    }
}

#[test]
fn chrome_trace_is_valid_and_ordered() {
    let path = std::env::temp_dir().join(format!("clp_obs_chrome_{}.json", std::process::id()));
    let mut w = ChromeTraceWriter::new(&path);
    record_golden_run(&mut w);
    w.finish().expect("writes");
    let text = std::fs::read_to_string(&path).expect("file written");
    std::fs::remove_file(&path).ok();

    // Valid JSON with the trace-event envelope.
    let doc: Value = serde::json::parse(&text).expect("valid JSON");
    assert_eq!(doc["displayTimeUnit"].as_str(), Some("ms"));
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());

    // Timestamps non-decreasing; every record carries the envelope fields.
    let mut prev = 0u64;
    for e in events {
        let ts = e["ts"].as_u64().expect("ts");
        assert!(ts >= prev, "timestamps regressed: {ts} < {prev}");
        prev = ts;
        assert!(e["name"].as_str().is_some());
        assert!(e["ph"].as_str().is_some());
        assert!(e["pid"].as_u64().is_some());
        assert!(e["tid"].as_u64().is_some());
        assert!(!e["args"].is_null());
    }

    // At least 5 distinct event kinds (Perfetto acceptance bar).
    let mut kinds: Vec<&str> = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("i"))
        .filter_map(|e| e["name"].as_str())
        .collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert!(
        kinds.len() >= 5,
        "only {} distinct kinds: {kinds:?}",
        kinds.len()
    );

    // Block lifecycles pair up: every async begin has a matching end id.
    let ids = |ph: &str| -> Vec<String> {
        events
            .iter()
            .filter(|e| e["ph"].as_str() == Some(ph))
            .map(|e| e["id"].as_str().expect("async id").to_string())
            .collect()
    };
    let begins = ids("b");
    let ends = ids("e");
    assert_eq!(begins.len(), 2, "two blocks fetched");
    assert_eq!(ends.len(), 2, "both blocks closed (commit + flush)");
    for b in &begins {
        assert!(ends.contains(b), "unclosed block span {b}");
    }
}

#[test]
fn writer_finish_is_idempotent() {
    let path =
        std::env::temp_dir().join(format!("clp_obs_chrome_idem_{}.json", std::process::id()));
    let mut w = ChromeTraceWriter::new(&path);
    record_golden_run(&mut w);
    w.finish().expect("writes");
    w.finish().expect("second finish is a no-op");
    let text = std::fs::read_to_string(&path).expect("file written");
    std::fs::remove_file(&path).ok();
    assert!(serde::json::parse(&text).is_ok());
}
