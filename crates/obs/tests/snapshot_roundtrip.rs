//! Serde round-trips and path lookups for the stats registry.

use clp_obs::{IntervalSample, MetricValue, StatsNode, StatsSnapshot};

fn sample_snapshot() -> StatsSnapshot {
    let root = StatsNode::new("run")
        .count("cycles", 12345)
        .child(
            StatsNode::new("proc0")
                .count("blocks_committed", 42)
                .gauge("ipc", 1.75)
                .child(StatsNode::new("predictor").count("predictions", 99)),
        )
        .child(
            StatsNode::new("mem")
                .count("l1d_hits", 7)
                .gauge("l1d_hit_rate", 0.875),
        );
    StatsSnapshot {
        cycles: 12345,
        root,
        intervals: vec![
            IntervalSample {
                start_cycle: 0,
                end_cycle: 1000,
                insts_committed: 800,
                blocks_committed: 25,
                blocks_flushed: 3,
                operand_msgs: 1500,
                ipc: 0.8,
                operand_occupancy: 1.5,
            },
            IntervalSample {
                start_cycle: 1000,
                end_cycle: 2000,
                insts_committed: 900,
                blocks_committed: 30,
                blocks_flushed: 0,
                operand_msgs: 1700,
                ipc: 0.9,
                operand_occupancy: 1.7,
            },
        ],
    }
}

#[test]
fn json_round_trip_preserves_everything() {
    let snap = sample_snapshot();
    let text = snap.to_json();
    let back = StatsSnapshot::from_json(&text).expect("parses");
    assert_eq!(snap, back);
}

#[test]
fn empty_snapshot_round_trips() {
    let snap = StatsSnapshot::default();
    let back = StatsSnapshot::from_json(&snap.to_json()).expect("parses");
    assert_eq!(snap, back);
}

#[test]
fn path_lookup_resolves_nested_metrics() {
    let snap = sample_snapshot();
    assert_eq!(snap.get("cycles"), Some(12345.0));
    assert_eq!(snap.get("proc0/blocks_committed"), Some(42.0));
    assert_eq!(snap.get("proc0/predictor/predictions"), Some(99.0));
    assert_eq!(snap.get("mem/l1d_hit_rate"), Some(0.875));
    assert_eq!(snap.get("mem/missing"), None);
    assert_eq!(snap.get("nope/l1d_hits"), None);
}

#[test]
fn metric_kinds_survive_the_trip() {
    let snap = sample_snapshot();
    let back = StatsSnapshot::from_json(&snap.to_json()).expect("parses");
    let proc0 = back.root.get_child("proc0").expect("child");
    assert_eq!(
        proc0.get_metric("blocks_committed"),
        Some(MetricValue::Count(42))
    );
    assert_eq!(proc0.get_metric("ipc"), Some(MetricValue::Gauge(1.75)));
}

#[test]
#[should_panic(expected = "proc9/ipc")]
fn expect_names_the_missing_path() {
    let _ = sample_snapshot().expect("proc9/ipc");
}
