//! # clp-core — the high-level Composable Lightweight Processor API
//!
//! Ties the stack together for users and for the evaluation harness:
//! compile a [`Workload`](clp_workloads::Workload) once, run it on any processor organization
//! (TFlex compositions of 1–32 cores, or the TRIPS baseline), verify the
//! outputs against the reference interpreter, and collect performance,
//! power, and area metrics. Sweeps produce the speedup curves that feed
//! the Figure 6–8 plots and the Figure 10 allocator.
//!
//! ```no_run
//! use clp_core::{run_workload, ProcessorConfig};
//! use clp_workloads::suite;
//!
//! let w = suite::by_name("conv").expect("exists");
//! let r = run_workload(&w, &ProcessorConfig::tflex(8)).expect("runs");
//! assert!(r.correct);
//! println!("{} cycles, {:.2} W", r.stats.cycles, r.power.total());
//! ```

#![warn(missing_docs)]

mod adaptive;
mod multiprogram;
mod run;

pub use adaptive::{
    adapt_composition, adapt_composition_observed, AdaptDecision, AdaptGoal, AdaptOutcome,
    AdaptStep,
};
pub use multiprogram::{
    run_multiprogram, run_multiprogram_observed, MultiOutcome, PlacementError, ProgramSpec,
};
pub use run::{
    compile_workload, run_compiled, run_compiled_observed, run_workload, speedup_curve, sweep,
    CompiledWorkload, FailureClass, ObsOptions, ProcessorConfig, ProcessorKind, RunFailure,
    RunOutcome,
};
// Fault-injection vocabulary, re-exported so harnesses and tests can
// build plans without depending on clp-sim directly.
pub use clp_sim::{FaultKind, FaultPlan, FaultStats, ALL_FAULT_KINDS};
