//! Single-workload runs and composition sweeps.

use clp_alloc::{SpeedupCurve, SIZES};
use clp_compiler::{compile, CompileError, CompileOptions};
use clp_isa::{EdgeProgram, Reg};
use clp_obs::{ProfileReport, StatsSnapshot, Tracer, TrendOptions, TrendReport};
use clp_power::{AreaModel, EnergyModel, PowerBreakdown, PowerConfig};
use clp_sim::{Machine, ProcId, RunError, RunStats, SimConfig};
use clp_workloads::{Golden, VerifyError, Workload};
use std::fmt;

/// The processor organization to run on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessorKind {
    /// A TFlex composition of N cores (N a power of two, 1..=32).
    TFlex {
        /// Participating cores.
        cores: usize,
    },
    /// The TRIPS prototype baseline (16 tiles, centralized control).
    Trips,
}

/// A processor configuration (organization + simulator knobs).
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessorConfig {
    /// The organization.
    pub kind: ProcessorKind,
    /// Simulator configuration (derived from `kind` by the constructors;
    /// override fields for ablations).
    pub sim: SimConfig,
}

impl ProcessorConfig {
    /// A TFlex composition of `cores` cores.
    #[must_use]
    pub fn tflex(cores: usize) -> Self {
        ProcessorConfig {
            kind: ProcessorKind::TFlex { cores },
            sim: SimConfig::tflex(),
        }
    }

    /// The TRIPS baseline.
    #[must_use]
    pub fn trips() -> Self {
        ProcessorConfig {
            kind: ProcessorKind::Trips,
            sim: SimConfig::trips(),
        }
    }

    /// The same configuration with a fault-injection plan attached
    /// (builder style). `FaultPlan::none()` is the default and leaves
    /// cycle counts bit-identical.
    #[must_use]
    pub fn with_faults(mut self, faults: clp_sim::FaultPlan) -> Self {
        self.sim.faults = faults;
        self
    }

    /// The same configuration with a per-run cycle deadline (builder
    /// style): the run aborts with a typed deadline kill
    /// ([`RunError::DeadlineExceeded`]) once `budget` cycles have
    /// elapsed. clp-serve attaches one to every job so a runaway
    /// simulation is reaped and reported instead of occupying a worker
    /// until the 200M-cycle safety net.
    #[must_use]
    pub fn with_deadline(mut self, budget: u64) -> Self {
        self.sim.deadline = Some(budget);
        self
    }

    /// Cores the organization occupies.
    #[must_use]
    pub fn cores(&self) -> usize {
        match self.kind {
            ProcessorKind::TFlex { cores } => cores,
            ProcessorKind::Trips => 16,
        }
    }

    fn power_config(&self) -> PowerConfig {
        match self.kind {
            ProcessorKind::TFlex { cores } => PowerConfig::tflex(cores),
            ProcessorKind::Trips => PowerConfig::trips(),
        }
    }
}

/// Why a run failed.
#[derive(Debug)]
pub enum RunFailure {
    /// The workload failed to compile to EDGE code.
    Compile(CompileError),
    /// The reference interpreter could not produce a golden result (the
    /// program never terminates or blows the call stack) — a malformed
    /// job, rejected before any machine is composed.
    Golden(clp_compiler::InterpError),
    /// The machine could not be composed.
    Compose(clp_sim::ComposeError),
    /// No chip region could be found for a program of a multiprogrammed
    /// mix (region exhaustion is a schedulable condition, not a crash).
    Placement(crate::multiprogram::PlacementError),
    /// The simulation did not complete.
    Run(RunError),
    /// Outputs differ from the reference interpreter.
    Verify(VerifyError),
}

/// How a [`RunFailure`] should be treated by a scheduler: the typed
/// taxonomy clp-serve uses to decide between rejecting a job outright,
/// retrying it with backoff, and retrying it with a larger budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// The job itself is bad (malformed program, wrong outputs): no
    /// retry can ever succeed.
    Permanent,
    /// The *environment* failed (injected faults, recovery failure,
    /// region exhaustion, busy cores): the same job can be retried.
    Transient,
    /// The job outlived its cycle budget: retryable, but only with an
    /// escalated deadline.
    DeadlineKill,
}

impl RunFailure {
    /// Classifies this failure for retry policy. See [`FailureClass`].
    #[must_use]
    pub fn class(&self) -> FailureClass {
        match self {
            RunFailure::Compile(_) | RunFailure::Golden(_) | RunFailure::Verify(_) => {
                FailureClass::Permanent
            }
            // Argument overflow is a property of the job; busy cores and
            // unsatisfiable regions are properties of the moment.
            RunFailure::Compose(clp_sim::ComposeError::TooManyArgs(_)) => FailureClass::Permanent,
            RunFailure::Compose(_) | RunFailure::Placement(_) => FailureClass::Transient,
            RunFailure::Run(RunError::DeadlineExceeded { .. })
            | RunFailure::Run(RunError::CycleLimit(_)) => FailureClass::DeadlineKill,
            // Deadlock, invalid kills, and no-survivor schedules are
            // recovery failures: the next attempt runs on fresh hardware.
            RunFailure::Run(_) => FailureClass::Transient,
        }
    }
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunFailure::Compile(e) => write!(f, "compile: {e}"),
            RunFailure::Golden(e) => write!(f, "golden: {e}"),
            RunFailure::Compose(e) => write!(f, "compose: {e}"),
            RunFailure::Placement(e) => write!(f, "placement: {e}"),
            RunFailure::Run(e) => write!(f, "run: {e}"),
            RunFailure::Verify(e) => write!(f, "verify: {e}"),
        }
    }
}

impl std::error::Error for RunFailure {}

/// A workload compiled to EDGE code, with its golden reference
/// (compile/interpret once, run many).
#[derive(Clone, Debug)]
pub struct CompiledWorkload {
    /// The source workload.
    pub workload: Workload,
    /// The compiled EDGE program.
    pub edge: EdgeProgram,
    /// The interpreter's golden result.
    pub golden: Golden,
}

/// Compiles a workload and computes its golden reference.
///
/// # Errors
///
/// Returns [`RunFailure::Compile`] if lowering fails, or
/// [`RunFailure::Golden`] if the reference interpreter cannot produce a
/// golden result (non-terminating or stack-blowing program) — both are
/// typed rejections of a malformed job, never panics.
pub fn compile_workload(w: &Workload) -> Result<CompiledWorkload, RunFailure> {
    let edge = compile(&w.program, &CompileOptions::default()).map_err(RunFailure::Compile)?;
    Ok(CompiledWorkload {
        golden: w.try_golden().map_err(RunFailure::Golden)?,
        workload: w.clone(),
        edge,
    })
}

/// Outcome of a verified run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Chip-level statistics.
    pub stats: RunStats,
    /// The unified stats registry for the run (tree of every subsystem's
    /// counters, plus interval samples when sampling was enabled).
    pub snapshot: StatsSnapshot,
    /// The entry function's return value (`r1`).
    pub ret: u64,
    /// Whether outputs matched the golden reference.
    pub correct: bool,
    /// Power breakdown for the run.
    pub power: PowerBreakdown,
    /// Area of the organization in mm².
    pub area_mm2: f64,
    /// Cycle-accounting profile (present when [`ObsOptions::profile`]
    /// was set).
    pub profile: Option<ProfileReport>,
    /// Columnar time series + phase table (present when
    /// [`ObsOptions::trend`] was set).
    pub trend: Option<TrendReport>,
}

impl RunOutcome {
    /// Total machine cycles, read through the stats registry — the
    /// figure binaries take their inputs from the snapshot rather than
    /// plucking raw stats fields.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.snapshot.expect("cycles") as u64
    }
}

/// Observability options for a run.
#[derive(Clone, Debug, Default)]
pub struct ObsOptions {
    /// Tracer to attach to the machine (default: off). The caller keeps
    /// ownership of the sink and is responsible for
    /// [`Tracer::finish`]-ing it after the run.
    pub tracer: Tracer,
    /// Record one interval sample every N cycles (default: no sampling).
    pub sample_every: Option<u64>,
    /// Enable the clp-prof cycle-accounting layer (default: off). When
    /// off, the run is bit-identical to an unprofiled run.
    pub profile: bool,
    /// Record a clp-trend columnar time series (default: off). When the
    /// options ask for bucket or heat columns, profiling is enabled
    /// implicitly — the trend layer reads the profiler's accumulators
    /// but never feeds timing, so cycles stay bit-identical either way.
    pub trend: Option<TrendOptions>,
    /// Drive the run with the reference single-step loop instead of the
    /// event-driven skip-ahead engine (default: off). The two are
    /// bit-identical by contract; this switch exists so the equivalence
    /// suite can prove it on every workload rather than assume it.
    pub stepped: bool,
}

/// Runs a pre-compiled workload on `cfg`, verifying outputs.
///
/// # Errors
///
/// Returns a [`RunFailure`] on composition errors, simulation failures,
/// or output mismatches.
pub fn run_compiled(
    cw: &CompiledWorkload,
    cfg: &ProcessorConfig,
) -> Result<RunOutcome, RunFailure> {
    run_compiled_observed(cw, cfg, &ObsOptions::default())
}

/// Like [`run_compiled`], with tracing/sampling attached.
///
/// # Errors
///
/// Returns a [`RunFailure`] on composition errors, simulation failures,
/// or output mismatches.
pub fn run_compiled_observed(
    cw: &CompiledWorkload,
    cfg: &ProcessorConfig,
    obs: &ObsOptions,
) -> Result<RunOutcome, RunFailure> {
    let mut sim = cfg.sim;
    // `CLP_SIM_THREADS` overrides the sharded-stepper width for every
    // run in the process — the CI matrix uses it to re-run the whole
    // test suite threaded without touching each call site. Thread
    // count never changes results (cycle counts, stats, traces), only
    // wall clock, so an override cannot invalidate a test.
    if let Some(t) = std::env::var("CLP_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        sim.threads = t.max(1);
    }
    let mut m = Machine::new(sim);
    if obs.tracer.enabled() {
        m.set_tracer(obs.tracer.clone());
    }
    if let Some(period) = obs.sample_every {
        m.set_sample_period(period);
    }
    if obs.profile {
        m.enable_profiling();
    }
    if let Some(t) = &obs.trend {
        if (t.buckets || t.heat) && !m.profiling_enabled() {
            m.enable_profiling();
        }
        m.enable_trend(t.clone());
    }
    for (addr, words) in &cw.workload.init_mem {
        m.memory_mut().image.load_words(*addr, words);
    }
    let pid: ProcId = m
        .compose(cfg.cores(), 0, cw.edge.clone(), &cw.workload.args)
        .map_err(RunFailure::Compose)?;
    let stats = if obs.stepped {
        m.run_stepped().map_err(RunFailure::Run)?
    } else {
        m.run().map_err(RunFailure::Run)?
    };
    let trend = m.take_trend_report();
    let snapshot = m.snapshot();
    let profile = m.profile_report();
    let ret = m.register(pid, Reg::new(1));
    cw.workload
        .verify_against(&cw.golden, ret, &m.memory().image)
        .map_err(RunFailure::Verify)?;
    let area = AreaModel::at_130nm();
    let energy = EnergyModel::at_130nm();
    let pc = cfg.power_config();
    let power = energy.power(&stats, &pc, &area);
    let area_mm2 = match cfg.kind {
        ProcessorKind::TFlex { cores } => area.tflex_mm2(cores),
        ProcessorKind::Trips => area.trips_mm2(),
    };
    Ok(RunOutcome {
        stats,
        snapshot,
        ret,
        correct: true,
        power,
        area_mm2,
        profile,
        trend,
    })
}

/// Compiles and runs a workload on `cfg` (convenience wrapper).
///
/// # Errors
///
/// See [`run_compiled`].
pub fn run_workload(w: &Workload, cfg: &ProcessorConfig) -> Result<RunOutcome, RunFailure> {
    let cw = compile_workload(w)?;
    run_compiled(&cw, cfg)
}

/// Runs a workload at every requested TFlex composition size.
///
/// # Errors
///
/// Propagates the first failure.
pub fn sweep(w: &Workload, sizes: &[usize]) -> Result<Vec<(usize, RunOutcome)>, RunFailure> {
    let cw = compile_workload(w)?;
    sizes
        .iter()
        .map(|&n| run_compiled(&cw, &ProcessorConfig::tflex(n)).map(|r| (n, r)))
        .collect()
}

/// Measures the full Figure 6 speedup curve (all six sizes, normalized
/// to one core).
///
/// # Errors
///
/// Propagates the first failure.
pub fn speedup_curve(w: &Workload) -> Result<SpeedupCurve, RunFailure> {
    let runs = sweep(w, &SIZES)?;
    let base = runs
        .iter()
        .find(|(n, _)| *n == 1)
        .map(|(_, r)| r.stats.cycles)
        .expect("size 1 in SIZES");
    let samples: Vec<(usize, f64)> = runs
        .iter()
        .map(|(n, r)| (*n, base as f64 / r.stats.cycles as f64))
        .collect();
    Ok(SpeedupCurve::new(w.name, &samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clp_workloads::suite;

    #[test]
    fn processor_config_cores() {
        assert_eq!(ProcessorConfig::tflex(4).cores(), 4);
        assert_eq!(ProcessorConfig::trips().cores(), 16);
        assert_eq!(
            ProcessorConfig::tflex(8).kind,
            ProcessorKind::TFlex { cores: 8 }
        );
    }

    #[test]
    fn run_failure_renders() {
        let e = RunFailure::Run(clp_sim::RunError::CycleLimit(9));
        assert!(e.to_string().contains("9"));
        let e = RunFailure::Compose(clp_sim::ComposeError::CoreBusy(3));
        assert!(e.to_string().starts_with("compose"));
    }

    #[test]
    fn bad_composition_is_reported_not_panicking() {
        let w = suite::by_name("conv").unwrap();
        let err = run_workload(&w, &ProcessorConfig::tflex(64)).unwrap_err();
        assert!(matches!(err, RunFailure::Compose(_)));
    }

    #[test]
    fn conv_runs_correctly_on_4_cores() {
        let w = suite::by_name("conv").unwrap();
        let r = run_workload(&w, &ProcessorConfig::tflex(4)).expect("runs");
        assert!(r.correct);
        assert!(r.stats.cycles > 100);
        assert!(r.power.total() > 0.0);
        assert!(r.area_mm2 > 1.0);
    }

    #[test]
    fn trips_mode_runs_conv() {
        let w = suite::by_name("conv").unwrap();
        let r = run_workload(&w, &ProcessorConfig::trips()).expect("runs");
        assert!(r.correct);
    }

    #[test]
    fn sweep_produces_monotone_sizes() {
        let w = suite::by_name("bezier").unwrap();
        let runs = sweep(&w, &[1, 4, 16]).expect("sweeps");
        assert_eq!(runs.len(), 3);
        for (n, r) in &runs {
            assert!(r.correct, "incorrect at {n} cores");
        }
    }

    #[test]
    fn speedup_curve_normalizes_to_one() {
        let w = suite::by_name("autocor").unwrap();
        let c = speedup_curve(&w).expect("curve");
        assert!((c.at(1) - 1.0).abs() < 1e-12);
        assert!(c.best_speedup() >= 1.0);
    }
}
