//! Multiprogrammed execution: several workloads simultaneously on
//! disjoint compositions of one chip, sharing the L2 and DRAM.

use crate::run::{compile_workload, ObsOptions, ProcessorConfig, RunFailure};
use clp_isa::Reg;
use clp_obs::{StatsSnapshot, TrendReport};
use clp_sim::{Machine, ProcId, RunStats};
use clp_workloads::Workload;
use std::fmt;

/// One entry of a multiprogrammed workload: a benchmark and the number
/// of cores its logical processor gets.
#[derive(Clone, Debug)]
pub struct ProgramSpec {
    /// The benchmark.
    pub workload: Workload,
    /// Composition size (power of two).
    pub cores: usize,
}

/// Why a program of a multiprogrammed mix could not be placed on the
/// chip. Region exhaustion is a *schedulable* condition — a service can
/// hold the job until a region frees up, shrink the request, or reject
/// it with a typed error — so it must never crash the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// The specs together ask for more cores than the chip has.
    Oversubscribed {
        /// Total cores requested across all specs.
        requested: usize,
        /// Cores the chip has.
        capacity: usize,
    },
    /// No free aligned region of the requested size exists (either the
    /// size has no tiling on this mesh, or every candidate region
    /// overlaps an earlier placement).
    NoFreeRegion {
        /// The composition size that could not be placed.
        cores: usize,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::Oversubscribed {
                requested,
                capacity,
            } => {
                write!(f, "{requested} cores requested, chip has {capacity}")
            }
            PlacementError::NoFreeRegion { cores } => {
                write!(f, "no free {cores}-core region")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Result of a multiprogrammed run.
#[derive(Clone, Debug)]
pub struct MultiOutcome {
    /// Chip statistics (per-processor counters inside).
    pub stats: RunStats,
    /// The unified stats registry for the run — the `compose/*` node
    /// records every composition made while packing the chip.
    pub snapshot: StatsSnapshot,
    /// Per-program cycle counts (until each halted).
    pub cycles: Vec<u64>,
    /// Per-program verification status.
    pub correct: Vec<bool>,
    /// Chip-wide columnar time series (present when
    /// [`ObsOptions::trend`] was set).
    pub trend: Option<TrendReport>,
}

/// Runs several programs simultaneously on one chip. Core regions are
/// packed largest-first so every composition is aligned; the combined
/// sizes must fit the 32-core chip.
///
/// Inter-processor contention for the shared L2 and memory is modeled
/// (the processors share one [`clp_mem::MemorySystem`]); each program
/// runs in its own address space.
///
/// # Errors
///
/// Returns [`RunFailure::Placement`] if the specs do not fit (total
/// oversubscription or region exhaustion), or another [`RunFailure`] if
/// a program fails to compile, the simulation fails, or any program's
/// outputs mismatch.
pub fn run_multiprogram(specs: &[ProgramSpec]) -> Result<MultiOutcome, RunFailure> {
    run_multiprogram_observed(specs, &ObsOptions::default())
}

/// Like [`run_multiprogram`], with tracing/sampling/trend recording
/// attached to the shared chip. Composition decisions surface as
/// `processor_composed` trace events and in the snapshot's `compose/*`
/// counters.
///
/// # Errors
///
/// See [`run_multiprogram`].
pub fn run_multiprogram_observed(
    specs: &[ProgramSpec],
    obs: &ObsOptions,
) -> Result<MultiOutcome, RunFailure> {
    let total: usize = specs.iter().map(|s| s.cores).sum();
    if total > 32 {
        return Err(RunFailure::Placement(PlacementError::Oversubscribed {
            requested: total,
            capacity: 32,
        }));
    }

    // Place largest-first (best-fit packing), remembering original order.
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(specs[i].cores));

    let cfg = ProcessorConfig::tflex(32).sim;
    let mut m = Machine::new(cfg);
    if obs.tracer.enabled() {
        m.set_tracer(obs.tracer.clone());
    }
    if let Some(period) = obs.sample_every {
        m.set_sample_period(period);
    }
    if obs.profile {
        m.enable_profiling();
    }
    if let Some(t) = &obs.trend {
        if (t.buckets || t.heat) && !m.profiling_enabled() {
            m.enable_profiling();
        }
        m.enable_trend(t.clone());
    }
    let mut compiled = Vec::with_capacity(specs.len());
    for s in specs {
        compiled.push(compile_workload(&s.workload)?);
    }

    let mut pids: Vec<Option<ProcId>> = vec![None; specs.len()];
    let mut used = [false; 32];
    for &i in &order {
        let s = &specs[i];
        // First-fit over the standard tiling: regions are rectangles, so
        // a simple linear offset does not work for mixed sizes.
        let mesh = clp_noc::MeshConfig::tflex_operand();
        let index = (0..32 / s.cores.max(1))
            .find(|&idx| {
                clp_noc::region_for(&mesh, s.cores, idx)
                    .map(|nodes| nodes.iter().all(|n| !used[n.0]))
                    .unwrap_or(false)
            })
            .ok_or(RunFailure::Placement(PlacementError::NoFreeRegion {
                cores: s.cores,
            }))?;
        for n in clp_noc::region_for(&mesh, s.cores, index).expect("checked") {
            used[n.0] = true;
        }
        let pid = m
            .compose(s.cores, index, compiled[i].edge.clone(), &s.workload.args)
            .map_err(RunFailure::Compose)?;
        // Load this program's memory into its own address space.
        let base = m.addr_base(pid);
        for (addr, words) in &s.workload.init_mem {
            m.memory_mut().image.load_words(base + addr, words);
        }
        pids[i] = Some(pid);
    }

    let stats = m.run().map_err(RunFailure::Run)?;
    let trend = m.take_trend_report();
    let snapshot = m.snapshot();

    let mut cycles = Vec::with_capacity(specs.len());
    let mut correct = Vec::with_capacity(specs.len());
    for (i, s) in specs.iter().enumerate() {
        let pid = pids[i].expect("composed");
        let ret = m.register(pid, Reg::new(1));
        let base = m.addr_base(pid);
        // Verify within the program's own address space.
        let ok = verify_at_base(s, &compiled[i], ret, m.memory(), base);
        correct.push(ok);
        cycles.push(stats.procs[pid.0].cycles);
    }
    Ok(MultiOutcome {
        stats,
        snapshot,
        cycles,
        correct,
        trend,
    })
}

fn verify_at_base(
    spec: &ProgramSpec,
    cw: &crate::run::CompiledWorkload,
    ret: u64,
    mem: &clp_mem::MemorySystem,
    base: u64,
) -> bool {
    let golden = &cw.golden;
    if spec.workload.check.check_ret && golden.ret != Some(ret) {
        return false;
    }
    for &(region, len) in &spec.workload.check.regions {
        for k in 0..len {
            let a = region + 8 * k as u64;
            if golden.image.read_u64(a) != mem.image.read_u64(base + a) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use clp_workloads::suite;

    #[test]
    fn two_programs_share_the_chip_correctly() {
        let specs = vec![
            ProgramSpec {
                workload: suite::by_name("conv").unwrap(),
                cores: 8,
            },
            ProgramSpec {
                workload: suite::by_name("bezier").unwrap(),
                cores: 4,
            },
        ];
        let out = run_multiprogram(&specs).expect("runs");
        assert!(out.correct.iter().all(|&c| c), "all programs correct");
        assert!(out.cycles.iter().all(|&c| c > 0));
        assert_eq!(out.stats.procs.len(), 2);
    }

    #[test]
    fn compose_decisions_surface_in_the_snapshot() {
        let specs = vec![
            ProgramSpec {
                workload: suite::by_name("conv").unwrap(),
                cores: 8,
            },
            ProgramSpec {
                workload: suite::by_name("bezier").unwrap(),
                cores: 4,
            },
        ];
        let out = run_multiprogram_observed(&specs, &ObsOptions::default()).expect("runs");
        assert_eq!(out.snapshot.expect("compose/compositions"), 2.0);
        assert_eq!(out.snapshot.expect("compose/cores_allocated"), 12.0);
        assert_eq!(out.snapshot.expect("compose/decompositions"), 0.0);
    }

    #[test]
    fn same_program_twice_is_isolated() {
        // Identical virtual layouts must not interfere.
        let w = suite::by_name("autocor").unwrap();
        let specs = vec![
            ProgramSpec {
                workload: w.clone(),
                cores: 4,
            },
            ProgramSpec {
                workload: w,
                cores: 4,
            },
        ];
        let out = run_multiprogram(&specs).expect("runs");
        assert!(out.correct.iter().all(|&c| c));
    }

    #[test]
    fn asymmetric_mix_runs() {
        let specs = vec![
            ProgramSpec {
                workload: suite::by_name("conv").unwrap(),
                cores: 16,
            },
            ProgramSpec {
                workload: suite::by_name("tblook").unwrap(),
                cores: 2,
            },
            ProgramSpec {
                workload: suite::by_name("rspeed").unwrap(),
                cores: 2,
            },
        ];
        let out = run_multiprogram(&specs).expect("runs");
        assert!(out.correct.iter().all(|&c| c));
    }

    #[test]
    fn oversubscription_rejected_with_typed_error() {
        let w = suite::by_name("conv").unwrap();
        let specs: Vec<ProgramSpec> = (0..3)
            .map(|_| ProgramSpec {
                workload: w.clone(),
                cores: 16,
            })
            .collect();
        match run_multiprogram(&specs) {
            Err(RunFailure::Placement(PlacementError::Oversubscribed {
                requested,
                capacity,
            })) => {
                assert_eq!(requested, 48);
                assert_eq!(capacity, 32);
            }
            other => panic!("expected Oversubscribed, got {other:?}"),
        }
    }

    #[test]
    fn untileable_size_rejected_with_typed_error() {
        // 3 is not a power of two, so no aligned region exists for it:
        // the placement loop must report NoFreeRegion, not panic.
        let specs = vec![ProgramSpec {
            workload: suite::by_name("conv").unwrap(),
            cores: 3,
        }];
        match run_multiprogram(&specs) {
            Err(RunFailure::Placement(PlacementError::NoFreeRegion { cores })) => {
                assert_eq!(cores, 3);
            }
            other => panic!("expected NoFreeRegion, got {other:?}"),
        }
    }

    #[test]
    fn placement_errors_are_transient() {
        use crate::run::FailureClass;
        let e = RunFailure::Placement(PlacementError::NoFreeRegion { cores: 8 });
        assert_eq!(e.class(), FailureClass::Transient);
    }
}
