//! Multiprogrammed execution: several workloads simultaneously on
//! disjoint compositions of one chip, sharing the L2 and DRAM.

use crate::run::{compile_workload, ObsOptions, ProcessorConfig, RunFailure};
use clp_isa::Reg;
use clp_obs::{StatsSnapshot, TrendReport};
use clp_sim::{Machine, ProcId, RunStats};
use clp_workloads::Workload;

/// One entry of a multiprogrammed workload: a benchmark and the number
/// of cores its logical processor gets.
#[derive(Clone, Debug)]
pub struct ProgramSpec {
    /// The benchmark.
    pub workload: Workload,
    /// Composition size (power of two).
    pub cores: usize,
}

/// Result of a multiprogrammed run.
#[derive(Clone, Debug)]
pub struct MultiOutcome {
    /// Chip statistics (per-processor counters inside).
    pub stats: RunStats,
    /// The unified stats registry for the run — the `compose/*` node
    /// records every composition made while packing the chip.
    pub snapshot: StatsSnapshot,
    /// Per-program cycle counts (until each halted).
    pub cycles: Vec<u64>,
    /// Per-program verification status.
    pub correct: Vec<bool>,
    /// Chip-wide columnar time series (present when
    /// [`ObsOptions::trend`] was set).
    pub trend: Option<TrendReport>,
}

/// Runs several programs simultaneously on one chip. Core regions are
/// packed largest-first so every composition is aligned; the combined
/// sizes must fit the 32-core chip.
///
/// Inter-processor contention for the shared L2 and memory is modeled
/// (the processors share one [`clp_mem::MemorySystem`]); each program
/// runs in its own address space.
///
/// # Errors
///
/// Returns a [`RunFailure`] if the specs do not fit, a program fails to
/// compile, the simulation fails, or any program's outputs mismatch.
pub fn run_multiprogram(specs: &[ProgramSpec]) -> Result<MultiOutcome, RunFailure> {
    run_multiprogram_observed(specs, &ObsOptions::default())
}

/// Like [`run_multiprogram`], with tracing/sampling/trend recording
/// attached to the shared chip. Composition decisions surface as
/// `processor_composed` trace events and in the snapshot's `compose/*`
/// counters.
///
/// # Errors
///
/// See [`run_multiprogram`].
pub fn run_multiprogram_observed(
    specs: &[ProgramSpec],
    obs: &ObsOptions,
) -> Result<MultiOutcome, RunFailure> {
    let total: usize = specs.iter().map(|s| s.cores).sum();
    assert!(total <= 32, "{total} cores requested, chip has 32");

    // Place largest-first (best-fit packing), remembering original order.
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(specs[i].cores));

    let cfg = ProcessorConfig::tflex(32).sim;
    let mut m = Machine::new(cfg);
    if obs.tracer.enabled() {
        m.set_tracer(obs.tracer.clone());
    }
    if let Some(period) = obs.sample_every {
        m.set_sample_period(period);
    }
    if obs.profile {
        m.enable_profiling();
    }
    if let Some(t) = &obs.trend {
        if (t.buckets || t.heat) && !m.profiling_enabled() {
            m.enable_profiling();
        }
        m.enable_trend(t.clone());
    }
    let mut compiled = Vec::with_capacity(specs.len());
    for s in specs {
        compiled.push(compile_workload(&s.workload)?);
    }

    let mut pids: Vec<Option<ProcId>> = vec![None; specs.len()];
    let mut used = [false; 32];
    for &i in &order {
        let s = &specs[i];
        // First-fit over the standard tiling: regions are rectangles, so
        // a simple linear offset does not work for mixed sizes.
        let mesh = clp_noc::MeshConfig::tflex_operand();
        let index = (0..32 / s.cores)
            .find(|&idx| {
                clp_noc::region_for(&mesh, s.cores, idx)
                    .map(|nodes| nodes.iter().all(|n| !used[n.0]))
                    .unwrap_or(false)
            })
            .unwrap_or_else(|| panic!("no free {}-core region", s.cores));
        for n in clp_noc::region_for(&mesh, s.cores, index).expect("checked") {
            used[n.0] = true;
        }
        let pid = m
            .compose(s.cores, index, compiled[i].edge.clone(), &s.workload.args)
            .map_err(RunFailure::Compose)?;
        // Load this program's memory into its own address space.
        let base = m.addr_base(pid);
        for (addr, words) in &s.workload.init_mem {
            m.memory_mut().image.load_words(base + addr, words);
        }
        pids[i] = Some(pid);
    }

    let stats = m.run().map_err(RunFailure::Run)?;
    let trend = m.take_trend_report();
    let snapshot = m.snapshot();

    let mut cycles = Vec::with_capacity(specs.len());
    let mut correct = Vec::with_capacity(specs.len());
    for (i, s) in specs.iter().enumerate() {
        let pid = pids[i].expect("composed");
        let ret = m.register(pid, Reg::new(1));
        let base = m.addr_base(pid);
        // Verify within the program's own address space.
        let ok = verify_at_base(s, &compiled[i], ret, m.memory(), base);
        correct.push(ok);
        cycles.push(stats.procs[pid.0].cycles);
    }
    Ok(MultiOutcome {
        stats,
        snapshot,
        cycles,
        correct,
        trend,
    })
}

fn verify_at_base(
    spec: &ProgramSpec,
    cw: &crate::run::CompiledWorkload,
    ret: u64,
    mem: &clp_mem::MemorySystem,
    base: u64,
) -> bool {
    let golden = &cw.golden;
    if spec.workload.check.check_ret && golden.ret != Some(ret) {
        return false;
    }
    for &(region, len) in &spec.workload.check.regions {
        for k in 0..len {
            let a = region + 8 * k as u64;
            if golden.image.read_u64(a) != mem.image.read_u64(base + a) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use clp_workloads::suite;

    #[test]
    fn two_programs_share_the_chip_correctly() {
        let specs = vec![
            ProgramSpec {
                workload: suite::by_name("conv").unwrap(),
                cores: 8,
            },
            ProgramSpec {
                workload: suite::by_name("bezier").unwrap(),
                cores: 4,
            },
        ];
        let out = run_multiprogram(&specs).expect("runs");
        assert!(out.correct.iter().all(|&c| c), "all programs correct");
        assert!(out.cycles.iter().all(|&c| c > 0));
        assert_eq!(out.stats.procs.len(), 2);
    }

    #[test]
    fn compose_decisions_surface_in_the_snapshot() {
        let specs = vec![
            ProgramSpec {
                workload: suite::by_name("conv").unwrap(),
                cores: 8,
            },
            ProgramSpec {
                workload: suite::by_name("bezier").unwrap(),
                cores: 4,
            },
        ];
        let out = run_multiprogram_observed(&specs, &ObsOptions::default()).expect("runs");
        assert_eq!(out.snapshot.expect("compose/compositions"), 2.0);
        assert_eq!(out.snapshot.expect("compose/cores_allocated"), 12.0);
        assert_eq!(out.snapshot.expect("compose/decompositions"), 0.0);
    }

    #[test]
    fn same_program_twice_is_isolated() {
        // Identical virtual layouts must not interfere.
        let w = suite::by_name("autocor").unwrap();
        let specs = vec![
            ProgramSpec {
                workload: w.clone(),
                cores: 4,
            },
            ProgramSpec {
                workload: w,
                cores: 4,
            },
        ];
        let out = run_multiprogram(&specs).expect("runs");
        assert!(out.correct.iter().all(|&c| c));
    }

    #[test]
    fn asymmetric_mix_runs() {
        let specs = vec![
            ProgramSpec {
                workload: suite::by_name("conv").unwrap(),
                cores: 16,
            },
            ProgramSpec {
                workload: suite::by_name("tblook").unwrap(),
                cores: 2,
            },
            ProgramSpec {
                workload: suite::by_name("rspeed").unwrap(),
                cores: 2,
            },
        ];
        let out = run_multiprogram(&specs).expect("runs");
        assert!(out.correct.iter().all(|&c| c));
    }

    #[test]
    #[should_panic(expected = "chip has 32")]
    fn oversubscription_rejected() {
        let w = suite::by_name("conv").unwrap();
        let specs: Vec<ProgramSpec> = (0..3)
            .map(|_| ProgramSpec {
                workload: w.clone(),
                cores: 16,
            })
            .collect();
        let _ = run_multiprogram(&specs);
    }
}
