//! Adaptive composition control — the paper's future-work direction
//! (§8): "the OS could even monitor how each thread uses its allocated
//! resources and reallocate them among the threads as necessary", or
//! hardware could adjust the number of cores per thread automatically.
//!
//! This module implements that controller as run-to-run hill climbing:
//! the thread executes an epoch at its current composition, the monitor
//! scores the epoch under an [`AdaptGoal`], and the controller grows or
//! shrinks the composition (by powers of two) while the score improves.
//! Because EDGE binaries are placement-transparent, no recompilation
//! happens between epochs — exactly the property the paper's conclusion
//! leans on.

use crate::run::{
    compile_workload, run_compiled_observed, CompiledWorkload, ObsOptions, ProcessorConfig,
    RunFailure,
};
use clp_power::{perf, perf2_per_watt, perf_per_area};
use clp_workloads::Workload;

/// What the controller optimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdaptGoal {
    /// Minimize cycles (Figure 6's BEST point).
    Performance,
    /// Maximize `1/(cycles * mm^2)` (Figure 7's operating point).
    AreaEfficiency,
    /// Maximize `perf^2/W` (Figure 8's operating point — the data-center
    /// / battery mode of §1).
    PowerEfficiency,
}

/// One epoch observed by the controller.
#[derive(Clone, Debug)]
pub struct AdaptStep {
    /// Composition size run this epoch.
    pub cores: usize,
    /// Cycles the epoch took.
    pub cycles: u64,
    /// Score under the goal (higher is better).
    pub score: f64,
}

/// One recomposition decision the controller made while searching —
/// when (which epoch), which allocation change, and why.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptDecision {
    /// Epoch index (into [`AdaptOutcome::history`]) at which the
    /// controller moved.
    pub epoch: usize,
    /// Composition size before the move.
    pub from_cores: usize,
    /// Composition size after the move.
    pub to_cores: usize,
    /// Why the controller moved: `"start"`, `"grow"`, or `"shrink"`.
    pub why: &'static str,
}

/// The controller's final decision.
#[derive(Clone, Debug)]
pub struct AdaptOutcome {
    /// Chosen composition size.
    pub cores: usize,
    /// All epochs observed while searching.
    pub history: Vec<AdaptStep>,
    /// Every recomposition decision, in order — the audit trail an OS
    /// scheduler would log when reallocating cores between threads.
    pub decisions: Vec<AdaptDecision>,
}

fn score(goal: AdaptGoal, cycles: u64, area: f64, watts: f64) -> f64 {
    match goal {
        AdaptGoal::Performance => perf(cycles),
        AdaptGoal::AreaEfficiency => perf_per_area(cycles, area),
        AdaptGoal::PowerEfficiency => perf2_per_watt(cycles, watts),
    }
}

fn run_epoch(
    cw: &CompiledWorkload,
    cores: usize,
    goal: AdaptGoal,
    obs: &ObsOptions,
) -> Result<AdaptStep, RunFailure> {
    let r = run_compiled_observed(cw, &ProcessorConfig::tflex(cores), obs)?;
    Ok(AdaptStep {
        cores,
        cycles: r.stats.cycles,
        score: score(goal, r.stats.cycles, r.area_mm2, r.power.total()),
    })
}

/// Hill-climbs the composition size for `workload` under `goal`,
/// starting from `start` cores.
///
/// The controller doubles or halves the allocation while the measured
/// score improves, stopping at the first local optimum — the same
/// decision procedure an OS scheduler could run on epoch counters.
///
/// # Errors
///
/// Propagates the first failed epoch.
pub fn adapt_composition(
    workload: &Workload,
    goal: AdaptGoal,
    start: usize,
) -> Result<AdaptOutcome, RunFailure> {
    adapt_composition_observed(workload, goal, start, &ObsOptions::default())
}

/// Like [`adapt_composition`], with observability attached to every
/// epoch's run (the tracer sees each epoch's `processor_composed`
/// event, so the controller's moves land in the trace too).
///
/// # Errors
///
/// Propagates the first failed epoch.
pub fn adapt_composition_observed(
    workload: &Workload,
    goal: AdaptGoal,
    start: usize,
    obs: &ObsOptions,
) -> Result<AdaptOutcome, RunFailure> {
    assert!(start.is_power_of_two() && start <= 32, "bad start size");
    let cw = compile_workload(workload)?;
    let mut history = Vec::new();
    let mut decisions = Vec::new();
    let mut current = run_epoch(&cw, start, goal, obs)?;
    history.push(current.clone());
    decisions.push(AdaptDecision {
        epoch: 0,
        from_cores: start,
        to_cores: start,
        why: "start",
    });

    // Try growing, then shrinking, until neither helps.
    loop {
        let mut improved = false;
        for candidate in [current.cores * 2, current.cores / 2] {
            if !(1..=32).contains(&candidate) || !candidate.is_power_of_two() {
                continue;
            }
            if history.iter().any(|s| s.cores == candidate) {
                continue; // already measured, known not better (or start)
            }
            let step = run_epoch(&cw, candidate, goal, obs)?;
            history.push(step.clone());
            if step.score > current.score {
                decisions.push(AdaptDecision {
                    epoch: history.len() - 1,
                    from_cores: current.cores,
                    to_cores: step.cores,
                    why: if step.cores > current.cores {
                        "grow"
                    } else {
                        "shrink"
                    },
                });
                current = step;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    Ok(AdaptOutcome {
        cores: current.cores,
        history,
        decisions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clp_alloc::SIZES;
    use clp_workloads::suite;

    #[test]
    fn performance_goal_finds_a_local_optimum() {
        let w = suite::by_name("autocor").unwrap();
        let out = adapt_composition(&w, AdaptGoal::Performance, 1).expect("adapts");
        assert!(SIZES.contains(&out.cores));
        // The chosen point beats its measured neighbors.
        let chosen = out
            .history
            .iter()
            .find(|s| s.cores == out.cores)
            .expect("in history");
        for s in &out.history {
            assert!(
                s.score <= chosen.score + 1e-15,
                "{} cores scored better than the choice",
                s.cores
            );
        }
        // A high-ILP kernel should not settle at one core.
        assert!(out.cores > 1, "autocor should grow past one core");
    }

    #[test]
    fn decisions_record_every_move_with_a_reason() {
        let w = suite::by_name("autocor").unwrap();
        let out = adapt_composition(&w, AdaptGoal::Performance, 1).expect("adapts");
        assert_eq!(out.decisions[0].why, "start");
        assert_eq!(out.decisions[0].from_cores, 1);
        // The chain of moves ends at the chosen size, each step doubling
        // or halving the allocation.
        let last = out.decisions.last().expect("at least start");
        assert_eq!(last.to_cores, out.cores);
        for w in out.decisions.windows(2) {
            assert_eq!(w[1].from_cores, w[0].to_cores, "moves must chain");
            assert!(
                w[1].to_cores == w[1].from_cores * 2 || w[1].to_cores == w[1].from_cores / 2,
                "moves are powers-of-two steps"
            );
            assert!(w[1].why == "grow" || w[1].why == "shrink");
        }
    }

    #[test]
    fn area_goal_prefers_small_compositions() {
        let w = suite::by_name("tblook").unwrap();
        let out = adapt_composition(&w, AdaptGoal::AreaEfficiency, 8).expect("adapts");
        assert!(
            out.cores <= 4,
            "area efficiency should shrink a serial workload: {}",
            out.cores
        );
    }

    #[test]
    fn power_goal_lands_between_the_extremes() {
        let w = suite::by_name("conv").unwrap();
        let out = adapt_composition(&w, AdaptGoal::PowerEfficiency, 1).expect("adapts");
        assert!((2..=16).contains(&out.cores), "got {}", out.cores);
    }
}
