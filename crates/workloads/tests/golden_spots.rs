//! Hand-computed spot checks of individual workloads' golden outputs —
//! guards against a silently-wrong kernel definition (the interpreter
//! cross-check alone cannot catch a kernel that computes the wrong thing
//! consistently).

use clp_workloads::suite;

fn golden_words(name: &str, addr: u64, n: usize) -> Vec<u64> {
    let w = suite::by_name(name).expect("exists");
    w.golden().image.read_words(addr, n)
}

#[test]
fn conv_is_a_true_fir_filter() {
    let w = suite::by_name("conv").unwrap();
    let (in_base, out_base, taps_base) = (w.args[0], w.args[1], w.args[2]);
    let g = w.golden();
    let x = g.image.read_words(in_base, 168);
    let h = g.image.read_words(taps_base, 8);
    let y = g.image.read_words(out_base, 160);
    for (i, &yi) in y.iter().enumerate() {
        let want: u64 = (0..8).map(|k| x[i + k].wrapping_mul(h[k])).sum();
        assert_eq!(yi, want, "output {i}");
    }
}

#[test]
fn bezier_endpoints_match_control_points() {
    // B(0) = p0 = 0.0; the curve stays within a loose hull bound.
    let y = golden_words("bezier", 0x2_0001_0000, 96);
    assert_eq!(f64::from_bits(y[0]), 0.0, "B(0) = p0");
    for (i, &w) in y.iter().enumerate() {
        let v = f64::from_bits(w);
        assert!(
            (-0.1..=2.5).contains(&v),
            "B(t_{i}) = {v} escapes the control hull"
        );
    }
}

#[test]
fn autocor_lag_zero_is_the_energy() {
    let w = suite::by_name("autocor").unwrap();
    let g = w.golden();
    let x = g.image.read_words(w.args[0], 128);
    let r = g.image.read_words(w.args[1], 8);
    let energy: u64 = x[..120].iter().map(|&v| v * v).sum();
    assert_eq!(r[0], energy, "R[0] = sum of squares over the window");
    // Lags are bounded by lag 0 for this non-negative input... not in
    // general, but R[k] <= R[0] holds for equal-length windows by
    // Cauchy-Schwarz when the windows coincide; here windows shift, so
    // just check magnitudes are plausible.
    for (k, &rk) in r.iter().enumerate().skip(1) {
        assert!(rk <= 2 * energy, "R[{k}] = {rk} implausible vs {energy}");
    }
}

#[test]
fn tblook_results_are_valid_indices() {
    let w = suite::by_name("tblook").unwrap();
    let g = w.golden();
    let out = g.image.read_words(w.args[2], 80);
    for (i, &idx) in out.iter().enumerate() {
        assert!(idx < 64, "query {i} produced out-of-table index {idx}");
    }
}

#[test]
fn dither_output_is_black_and_white() {
    let w = suite::by_name("dither").unwrap();
    let g = w.golden();
    for word_idx in 0..(16 * 16 / 8) {
        let word = g.image.read_u64(w.args[0] + 8 * word_idx as u64);
        for b in 0..8 {
            let px = (word >> (8 * b)) & 0xff;
            assert!(px == 0 || px == 255, "pixel {px:#x} not thresholded");
        }
    }
}

#[test]
fn bzip2_runs_reconstruct_the_input_length() {
    let w = suite::by_name("bzip2").unwrap();
    let g = w.golden();
    let pairs = g.ret.expect("emitted pair count") as usize;
    let out = g.image.read_words(w.args[1], pairs);
    // Skip the sentinel first record (prev = -1, run = 0) and sum runs;
    // with the final open run unemitted, total <= input length.
    let total_run: u64 = out.iter().skip(1).map(|rec| rec & 0xff).sum();
    assert!(total_run <= 256);
    assert!(pairs >= 8, "repetitive input must produce several runs");
}

#[test]
fn mcf_checksum_matches_direct_walk() {
    let w = suite::by_name("mcf").unwrap();
    let g = w.golden();
    // Walk the list directly in the golden image.
    let mut cur = w.args[0];
    let mut total = 0u64;
    for _ in 0..w.args[1] {
        total = total.wrapping_add(g.image.read_u64(cur + 8));
        cur = g.image.read_u64(cur);
    }
    assert_eq!(g.ret, Some(total));
}

#[test]
fn perlbmk_histogram_counts_all_strings() {
    let w = suite::by_name("perlbmk").unwrap();
    let g = w.golden();
    let hist = g.image.read_words(w.args[1], 32);
    assert_eq!(hist.iter().sum::<u64>(), w.args[2], "every string hashed");
}

#[test]
fn swim_interior_is_neighbor_average() {
    let w = suite::by_name("swim").unwrap();
    let g = w.golden();
    let dim = w.args[2] as usize;
    let grid = g.image.read_words(w.args[0], dim * dim);
    let out = g.image.read_words(w.args[1], dim * dim);
    let at = |x: usize, y: usize| f64::from_bits(grid[y * dim + x]);
    for y in 1..dim - 1 {
        for x in 1..dim - 1 {
            let want = 0.25 * (at(x, y - 1) + at(x, y + 1) + at(x - 1, y) + at(x + 1, y));
            let got = f64::from_bits(out[y * dim + x]);
            assert!((got - want).abs() < 1e-12, "({x},{y}): {got} vs {want}");
        }
    }
}

#[test]
fn parser_counts_are_packed_sanely() {
    let w = suite::by_name("parser").unwrap();
    let g = w.golden();
    let packed = g.ret.unwrap();
    let words = packed >> 16;
    let digits = packed & 0xffff;
    assert!(words > 0 && words < 160, "{words} words");
    assert!(digits > 0 && digits < 160, "{digits} digits");
}

#[test]
fn equake_rows_match_dense_recompute() {
    let w = suite::by_name("equake").unwrap();
    let g = w.golden();
    let dim = w.args[4] as usize;
    let nnz = 5;
    let vals = g.image.read_words(w.args[0], dim * nnz);
    let cols = g.image.read_words(w.args[1], dim * nnz);
    let x = g.image.read_words(w.args[2], dim);
    let y = g.image.read_words(w.args[3], dim);
    for (r, &row_y) in y.iter().enumerate() {
        let mut acc = 0.0;
        for k in 0..nnz {
            let idx = r * nnz + k;
            acc += f64::from_bits(vals[idx]) * f64::from_bits(x[cols[idx] as usize]);
        }
        let got = f64::from_bits(row_y);
        assert!((got - acc).abs() < 1e-9, "row {r}: {got} vs {acc}");
    }
}
