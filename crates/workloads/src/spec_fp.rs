//! SPEC CPU2000 floating-point-like programs: `swim`, `mgrid`, `applu`,
//! `art`, `equake`, `ammp`.

use crate::util::{for_loop, idx8, Lcg};
use crate::{CheckSpec, IlpClass, Workload, WorkloadClass};
use clp_compiler::{FunctionBuilder, ProgramBuilder};
use clp_isa::Opcode;

const A: u64 = 0x5_0000_0000;
const B: u64 = 0x5_0001_0000;
const OUT: u64 = 0x5_0003_0000;

/// `swim`: shallow-water-style 5-point stencil over a 24x24 grid
/// (independent FP work per point: high ILP).
#[must_use]
pub fn swim() -> Workload {
    let dim = 24usize;
    let mut f = FunctionBuilder::new("swim", 3);
    let grid = f.param(0);
    let out = f.param(1);
    let d = f.param(2);
    let quarter = f.cf(0.25);
    let one = f.c(1);
    let inner = f.bin(Opcode::Sub, d, one);
    let row_start = f.c(1);
    let _ = row_start;
    for_loop(&mut f, inner, |f, y| {
        let one_i = f.c(1);
        let yy = f.bin(Opcode::Add, y, one_i);
        let skip = f.bin(Opcode::Teq, yy, d);
        let (work, done, join) = (f.new_block(), f.new_block(), f.new_block());
        f.branch(skip, done, work);
        f.switch_to(work);
        let inner_x = f.bin(Opcode::Sub, d, one_i);
        for_loop(f, inner_x, |f, x| {
            let one2 = f.c(1);
            let xx = f.bin(Opcode::Add, x, one2);
            let at_edge = f.bin(Opcode::Teq, xx, d);
            let (wx, dx, jx) = (f.new_block(), f.new_block(), f.new_block());
            f.branch(at_edge, dx, wx);
            f.switch_to(wx);
            let row = f.bin(Opcode::Mul, yy, d);
            let cell = f.bin(Opcode::Add, row, xx);
            let ca = idx8(f, grid, cell);
            let north = f.load(ca, -(8 * dim as i64));
            let south = f.load(ca, 8 * dim as i64);
            let west = f.load(ca, -8);
            let east = f.load(ca, 8);
            let ns = f.bin(Opcode::Fadd, north, south);
            let we = f.bin(Opcode::Fadd, west, east);
            let sum = f.bin(Opcode::Fadd, ns, we);
            let avg = f.bin(Opcode::Fmul, sum, quarter);
            let oa = idx8(f, out, cell);
            f.store(oa, 0, avg);
            f.jump(jx);
            f.switch_to(dx);
            f.jump(jx);
            f.switch_to(jx);
        });
        f.jump(join);
        f.switch_to(done);
        f.jump(join);
        f.switch_to(join);
    });
    let z = f.c(0);
    f.ret(Some(z));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0x5317);
    Workload {
        name: "swim",
        class: WorkloadClass::SpecFp,
        ilp: IlpClass::High,
        program: pb.finish(id),
        args: vec![A, OUT, dim as u64],
        init_mem: vec![(A, rng.f64_words(dim * dim))],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, dim * dim)],
        },
    }
}

/// `mgrid`: two smoothing passes of a 1-D multigrid relaxation
/// (three-point stencil, pass-to-pass serialization).
#[must_use]
pub fn mgrid() -> Workload {
    let n = 224usize;
    let mut f = FunctionBuilder::new("mgrid", 3);
    let v = f.param(0);
    let tmp = f.param(1);
    let nv = f.param(2);
    let half = f.cf(0.5);
    let quarter = f.cf(0.25);
    let two = f.c(2);
    let inner = f.bin(Opcode::Sub, nv, two);
    // Pass 1: tmp = smooth(v); Pass 2: v = smooth(tmp).
    for (src, dst) in [(v, tmp), (tmp, v)] {
        for_loop(&mut f, inner, |f, i| {
            let one = f.c(1);
            let c = f.bin(Opcode::Add, i, one);
            let ca = idx8(f, src, c);
            let left = f.load(ca, -8);
            let mid = f.load(ca, 0);
            let right = f.load(ca, 8);
            let lr = f.bin(Opcode::Fadd, left, right);
            let lr4 = f.bin(Opcode::Fmul, lr, quarter);
            let m2 = f.bin(Opcode::Fmul, mid, half);
            let s = f.bin(Opcode::Fadd, lr4, m2);
            let da = idx8(f, dst, c);
            f.store(da, 0, s);
        });
    }
    let z = f.c(0);
    f.ret(Some(z));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0x361D);
    Workload {
        name: "mgrid",
        class: WorkloadClass::SpecFp,
        ilp: IlpClass::High,
        program: pb.finish(id),
        args: vec![A, B, n as u64],
        init_mem: vec![(A, rng.f64_words(n)), (B, vec![0; n])],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(A, n), (B, n)],
        },
    }
}

/// `applu`: a lower-triangular solve sweep — each element depends on the
/// previous (serial FP recurrence: latency-bound, low ILP).
#[must_use]
pub fn applu() -> Workload {
    let n = 160usize;
    let mut f = FunctionBuilder::new("applu", 4);
    let diag = f.param(0);
    let rhs = f.param(1);
    let x = f.param(2);
    let nv = f.param(3);
    let carry = f.cf(0.0);
    for_loop(&mut f, nv, |f, i| {
        let ra = idx8(f, rhs, i);
        let r = f.load(ra, 0);
        let da = idx8(f, diag, i);
        let dv = f.load(da, 0);
        let num = f.bin(Opcode::Fsub, r, carry);
        let xi = f.bin(Opcode::Fdiv, num, dv);
        let xa = idx8(f, x, i);
        f.store(xa, 0, xi);
        let coupling = f.cf(0.3);
        f.bin_into(carry, Opcode::Fmul, xi, coupling);
    });
    let z = f.c(0);
    f.ret(Some(z));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0xA91);
    // Diagonal entries bounded away from zero.
    let diag: Vec<u64> = (0..n)
        .map(|_| (1.0 + f64::from_bits(rng.f64_bits())).to_bits())
        .collect();
    Workload {
        name: "applu",
        class: WorkloadClass::SpecFp,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![A, B, OUT, n as u64],
        init_mem: vec![(A, diag), (B, rng.f64_words(n))],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, n)],
        },
    }
}

/// `art`: neural-network pattern matching — dot products of an input
/// vector against 12 weight rows, inner loop unrolled 4x (high FP ILP).
#[must_use]
pub fn art() -> Workload {
    let dimension = 48usize;
    let rows = 16usize;
    let mut f = FunctionBuilder::new("art", 4);
    let weights = f.param(0);
    let input = f.param(1);
    let out = f.param(2);
    let nrows = f.param(3);
    let dim = f.c(dimension as i64);
    for_loop(&mut f, nrows, |f, r| {
        let row_off = f.bin(Opcode::Mul, r, dim);
        let three = f.c(3);
        let row_bytes = f.bin(Opcode::Shl, row_off, three);
        let row = f.bin(Opcode::Add, weights, row_bytes);
        let acc = f.cf(0.0);
        crate::util::for_loop_step(f, dim, 4, &mut |f, j| {
            let ja = idx8(f, row, j);
            let ia = idx8(f, input, j);
            for k in 0..4i64 {
                let w = f.load(ja, 8 * k);
                let x = f.load(ia, 8 * k);
                let p = f.bin(Opcode::Fmul, w, x);
                f.bin_into(acc, Opcode::Fadd, acc, p);
            }
        });
        let oa = idx8(f, out, r);
        f.store(oa, 0, acc);
    });
    let z = f.c(0);
    f.ret(Some(z));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0xA27);
    Workload {
        name: "art",
        class: WorkloadClass::SpecFp,
        ilp: IlpClass::High,
        program: pb.finish(id),
        args: vec![A, B, OUT, rows as u64],
        init_mem: vec![
            (A, rng.f64_words(dimension * rows)),
            (B, rng.f64_words(dimension)),
        ],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, rows)],
        },
    }
}

/// `equake`: sparse matrix-vector product in CSR form (indirect loads
/// feeding FP multiplies; memory-level parallelism with irregular
/// access).
#[must_use]
pub fn equake() -> Workload {
    let dim = 72usize;
    let nnz_per_row = 5usize;
    const COLS: u64 = 0x5_0004_0000;
    let mut f = FunctionBuilder::new("equake", 5);
    let vals = f.param(0);
    let cols = f.param(1);
    let x = f.param(2);
    let y = f.param(3);
    let nrows = f.param(4);
    let nnz = f.c(nnz_per_row as i64);
    for_loop(&mut f, nrows, |f, r| {
        let start = f.bin(Opcode::Mul, r, nnz);
        let acc = f.cf(0.0);
        for_loop(f, nnz, |f, k| {
            let idx = f.bin(Opcode::Add, start, k);
            let va = idx8(f, vals, idx);
            let v = f.load(va, 0);
            let ca = idx8(f, cols, idx);
            let col = f.load(ca, 0);
            let xa = idx8(f, x, col);
            let xv = f.load(xa, 0);
            let p = f.bin(Opcode::Fmul, v, xv);
            f.bin_into(acc, Opcode::Fadd, acc, p);
        });
        let ya = idx8(f, y, r);
        f.store(ya, 0, acc);
    });
    let z = f.c(0);
    f.ret(Some(z));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0xE0);
    let nnz_total = dim * nnz_per_row;
    Workload {
        name: "equake",
        class: WorkloadClass::SpecFp,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![A, COLS, B, OUT, dim as u64],
        init_mem: vec![
            (A, rng.f64_words(nnz_total)),
            (COLS, rng.words(nnz_total, dim as u64)),
            (B, rng.f64_words(dim)),
        ],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, dim)],
        },
    }
}

/// `ammp`: molecular-mechanics pairwise potential over 14 particles —
/// O(n²) independent distance computations (high FP ILP).
#[must_use]
pub fn ammp() -> Workload {
    let particles = 20usize;
    let mut f = FunctionBuilder::new("ammp", 4);
    let px = f.param(0);
    let py = f.param(1);
    let forces = f.param(2);
    let np = f.param(3);
    for_loop(&mut f, np, |f, i| {
        let acc = f.cf(0.0);
        let xa = idx8(f, px, i);
        let xi = f.load(xa, 0);
        let ya = idx8(f, py, i);
        let yi = f.load(ya, 0);
        for_loop(f, np, |f, j| {
            let same = f.bin(Opcode::Teq, i, j);
            let (skip, work, join) = (f.new_block(), f.new_block(), f.new_block());
            f.branch(same, skip, work);
            f.switch_to(work);
            let xb = idx8(f, px, j);
            let xj = f.load(xb, 0);
            let yb = idx8(f, py, j);
            let yj = f.load(yb, 0);
            let dx = f.bin(Opcode::Fsub, xi, xj);
            let dy = f.bin(Opcode::Fsub, yi, yj);
            let dx2 = f.bin(Opcode::Fmul, dx, dx);
            let dy2 = f.bin(Opcode::Fmul, dy, dy);
            let r2 = f.bin(Opcode::Fadd, dx2, dy2);
            let softening = f.cf(0.01);
            let r2s = f.bin(Opcode::Fadd, r2, softening);
            let one = f.cf(1.0);
            let inv = f.bin(Opcode::Fdiv, one, r2s);
            f.bin_into(acc, Opcode::Fadd, acc, inv);
            f.jump(join);
            f.switch_to(skip);
            f.jump(join);
            f.switch_to(join);
        });
        let fa = idx8(f, forces, i);
        f.store(fa, 0, acc);
    });
    let z = f.c(0);
    f.ret(Some(z));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0xA3B);
    Workload {
        name: "ammp",
        class: WorkloadClass::SpecFp,
        ilp: IlpClass::High,
        program: pb.finish(id),
        args: vec![A, B, OUT, particles as u64],
        init_mem: vec![(A, rng.f64_words(particles)), (B, rng.f64_words(particles))],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, particles)],
        },
    }
}
