//! The three hand-optimized kernels: `conv`, `ct`, `genalg`.
//!
//! "Hand-optimized" here means what it meant for TRIPS: loop bodies are
//! unrolled and scheduled to fill hyperblocks with independent work.

use crate::util::{for_loop, idx8, Lcg};
use crate::{CheckSpec, IlpClass, Workload, WorkloadClass};
use clp_compiler::{FunctionBuilder, ProgramBuilder};
use clp_isa::Opcode;

const IN: u64 = 0x1_0000_0000;
const OUT: u64 = 0x1_0001_0000;
const TAPS: u64 = 0x1_0002_0000;

/// `conv`: an 8-tap FIR filter with the inner product fully unrolled
/// (high ILP: eight independent multiplies per output).
#[must_use]
pub fn conv() -> Workload {
    let n_out = 160usize;
    let mut f = FunctionBuilder::new("conv", 3);
    let input = f.param(0);
    let out = f.param(1);
    let taps = f.param(2);
    // Preload the eight taps into registers (hand optimization).
    let tap_regs: Vec<_> = (0..8)
        .map(|k| {
            let t = f.c(8 * k);
            let a = f.bin(Opcode::Add, taps, t);
            f.load(a, 0)
        })
        .collect();
    let n = f.c(n_out as i64);
    for_loop(&mut f, n, |f, i| {
        let base = idx8(f, input, i);
        let mut acc = f.c(0);
        for (k, &tap) in tap_regs.iter().enumerate() {
            let x = f.load(base, 8 * k as i64);
            let prod = f.bin(Opcode::Mul, x, tap);
            acc = f.bin(Opcode::Add, acc, prod);
        }
        let dst = idx8(f, out, i);
        f.store(dst, 0, acc);
    });
    let zero = f.c(0);
    f.ret(Some(zero));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());

    let mut rng = Lcg::new(0xC0);
    Workload {
        name: "conv",
        class: WorkloadClass::HandOptimized,
        ilp: IlpClass::High,
        program: pb.finish(id),
        args: vec![IN, OUT, TAPS],
        init_mem: vec![(IN, rng.words(n_out + 8, 100)), (TAPS, rng.words(8, 16))],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, n_out)],
        },
    }
}

/// `ct`: divide-and-conquer checksum over an array via recursion
/// (exercises calls, returns, the distributed RAS, and stack frames).
#[must_use]
pub fn ct() -> Workload {
    let n = 128usize;
    let mut pb = ProgramBuilder::new();
    let tree = pb.declare();

    // fn tree(base, lo, hi): if hi-lo <= 4 -> serial sum; else split.
    let mut f = FunctionBuilder::new("tree", 3);
    let base = f.param(0);
    let lo = f.param(1);
    let hi = f.param(2);
    let span = f.bin(Opcode::Sub, hi, lo);
    let four = f.c(4);
    let small = f.bin(Opcode::Tle, span, four);
    let (leaf, split, cont1, cont2) = (f.new_block(), f.new_block(), f.new_block(), f.new_block());
    f.branch(small, leaf, split);
    // Leaf: serial sum of up to four elements.
    f.switch_to(leaf);
    let acc = f.c(0);
    let j = f.vreg();
    f.assign(j, lo);
    let (lh, lb, lx) = (f.new_block(), f.new_block(), f.new_block());
    f.jump(lh);
    f.switch_to(lh);
    let c = f.bin(Opcode::Tlt, j, hi);
    f.branch(c, lb, lx);
    f.switch_to(lb);
    let a = idx8(&mut f, base, j);
    let v = f.load(a, 0);
    // Mix so order matters: acc = acc*3 + v.
    let three = f.c(3);
    let t = f.bin(Opcode::Mul, acc, three);
    f.bin_into(acc, Opcode::Add, t, v);
    let one = f.c(1);
    f.bin_into(j, Opcode::Add, j, one);
    f.jump(lh);
    f.switch_to(lx);
    f.ret(Some(acc));
    // Split: mid = (lo+hi)/2; tree(lo,mid) then tree(mid,hi).
    f.switch_to(split);
    let sum_lo_hi = f.bin(Opcode::Add, lo, hi);
    let two = f.c(2);
    let mid = f.bin(Opcode::Div, sum_lo_hi, two);
    let left = f.vreg();
    f.call(tree, &[base, lo, mid], Some(left), cont1);
    f.switch_to(cont1);
    let right = f.vreg();
    f.call(tree, &[base, mid, hi], Some(right), cont2);
    f.switch_to(cont2);
    let seven = f.c(7);
    let lm = f.bin(Opcode::Mul, left, seven);
    let s = f.bin(Opcode::Add, lm, right);
    f.ret(Some(s));
    pb.set_function(tree, f.finish());

    let mut rng = Lcg::new(0xC7);
    Workload {
        name: "ct",
        class: WorkloadClass::HandOptimized,
        ilp: IlpClass::Low,
        program: pb.finish(tree),
        args: vec![IN, 0, n as u64],
        init_mem: vec![(IN, rng.words(n, 1000))],
        check: CheckSpec {
            check_ret: true,
            regions: vec![],
        },
    }
}

/// `genalg`: one generation of a toy genetic algorithm — fitness
/// evaluation plus a conditional selection/crossover sweep (mixed ILP,
/// data-dependent branches).
#[must_use]
pub fn genalg() -> Workload {
    let pop = 96usize;
    const FIT: u64 = 0x1_0003_0000;
    let mut f = FunctionBuilder::new("genalg", 3);
    let genes = f.param(0);
    let fit = f.param(1);
    let npop = f.param(2);
    // Fitness: f(g) = popcount-ish via shifts (4 steps, unrolled).
    for_loop(&mut f, npop, |f, i| {
        let ga = idx8(f, genes, i);
        let g = f.load(ga, 0);
        let mut score = f.c(0);
        for shift in [0i64, 13, 27, 45] {
            let sh = f.c(shift);
            let part = f.bin(Opcode::Shr, g, sh);
            let mask = f.c(0x3ff);
            let bits = f.bin(Opcode::And, part, mask);
            score = f.bin(Opcode::Add, score, bits);
        }
        let fa = idx8(f, fit, i);
        f.store(fa, 0, score);
    });
    // Selection sweep: neighbors tournament; winner's gene overwrites
    // loser, mutated by XOR of the index.
    let nm1 = {
        let one = f.c(1);
        f.bin(Opcode::Sub, npop, one)
    };
    let total = f.c(0);
    for_loop(&mut f, nm1, |f, i| {
        let fa = idx8(f, fit, i);
        let cur = f.load(fa, 0);
        let nxt = f.load(fa, 8);
        let worse = f.bin(Opcode::Tlt, cur, nxt);
        let (take_next, keep, join) = (f.new_block(), f.new_block(), f.new_block());
        f.branch(worse, take_next, keep);
        f.switch_to(take_next);
        let ga = idx8(f, genes, i);
        let g_next = f.load(ga, 8);
        let mut_g = f.bin(Opcode::Xor, g_next, i);
        f.store(ga, 0, mut_g);
        f.jump(join);
        f.switch_to(keep);
        f.bin_into(total, Opcode::Add, total, cur);
        f.jump(join);
        f.switch_to(join);
    });
    f.ret(Some(total));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());

    let mut rng = Lcg::new(0x6A);
    Workload {
        name: "genalg",
        class: WorkloadClass::HandOptimized,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![IN, FIT, pop as u64],
        init_mem: vec![(IN, rng.words(pop, u64::MAX / 2))],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(IN, pop), (FIT, pop)],
        },
    }
}
