//! Shared helpers for kernel construction: loop scaffolds and
//! deterministic pseudo-random data.

use clp_compiler::{FunctionBuilder, VReg};
use clp_isa::Opcode;

/// Deterministic 64-bit LCG for reproducible input data.
pub(crate) struct Lcg(u64);

impl Lcg {
    pub(crate) fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }

    /// A value in `0..bound`.
    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// An `f64` in `[0, 1)`, stored as bits.
    pub(crate) fn f64_bits(&mut self) -> u64 {
        let x = (self.next() % 1_000_000) as f64 / 1_000_000.0;
        x.to_bits()
    }

    pub(crate) fn words(&mut self, n: usize, bound: u64) -> Vec<u64> {
        (0..n).map(|_| self.below(bound)).collect()
    }

    pub(crate) fn f64_words(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.f64_bits()).collect()
    }
}

/// Emits `for i in 0..n { body }` with stride 1; leaves the cursor in the
/// exit block and returns the induction register.
pub(crate) fn for_loop(
    f: &mut FunctionBuilder,
    n: VReg,
    mut body: impl FnMut(&mut FunctionBuilder, VReg),
) -> VReg {
    for_loop_step(f, n, 1, &mut body)
}

/// Emits `for i in 0..n step s { body }`.
pub(crate) fn for_loop_step(
    f: &mut FunctionBuilder,
    n: VReg,
    step: i64,
    body: &mut dyn FnMut(&mut FunctionBuilder, VReg),
) -> VReg {
    let i = f.c(0);
    let header = f.new_block();
    let body_bb = f.new_block();
    let exit = f.new_block();
    f.jump(header);
    f.switch_to(header);
    let c = f.bin(Opcode::Tlt, i, n);
    f.branch(c, body_bb, exit);
    f.switch_to(body_bb);
    body(f, i);
    let s = f.c(step);
    f.bin_into(i, Opcode::Add, i, s);
    f.jump(header);
    f.switch_to(exit);
    i
}

/// `base + 8*i` addressing: returns the address register of element `i`.
pub(crate) fn idx8(f: &mut FunctionBuilder, base: VReg, i: VReg) -> VReg {
    let three = f.c(3);
    let off = f.bin(Opcode::Shl, i, three);
    f.bin(Opcode::Add, base, off)
}

/// `base + i` addressing for byte arrays.
pub(crate) fn idx1(f: &mut FunctionBuilder, base: VReg, i: VReg) -> VReg {
    f.bin(Opcode::Add, base, i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clp_compiler::{interpret, ProgramBuilder};
    use clp_mem::MemoryImage;

    #[test]
    fn lcg_is_deterministic_and_bounded() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        for _ in 0..100 {
            let x = a.below(50);
            assert_eq!(x, b.below(50));
            assert!(x < 50);
        }
        assert_ne!(Lcg::new(1).next(), Lcg::new(2).next());
    }

    #[test]
    fn for_loop_scaffold_counts() {
        let mut f = FunctionBuilder::new("count", 1);
        let n = f.param(0);
        let acc = f.c(0);
        for_loop(&mut f, n, |f, _i| {
            let one = f.c(1);
            f.bin_into(acc, Opcode::Add, acc, one);
        });
        f.ret(Some(acc));
        let mut pb = ProgramBuilder::new();
        let id = pb.add_function(f.finish());
        let p = pb.finish(id);
        let mut image = MemoryImage::new();
        let r = interpret(&p, &[17], &mut image, 10_000).unwrap();
        assert_eq!(r.ret, Some(17));
    }

    #[test]
    fn idx8_computes_word_addresses() {
        let mut f = FunctionBuilder::new("ld3", 1);
        let base = f.param(0);
        let three = f.c(3);
        let addr = idx8(&mut f, base, three);
        let v = f.load(addr, 0);
        f.ret(Some(v));
        let mut pb = ProgramBuilder::new();
        let id = pb.add_function(f.finish());
        let p = pb.finish(id);
        let mut image = MemoryImage::new();
        image.load_words(0x100, &[10, 11, 12, 13]);
        let r = interpret(&p, &[0x100], &mut image, 1_000).unwrap();
        assert_eq!(r.ret, Some(13));
    }
}
