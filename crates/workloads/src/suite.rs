//! The benchmark suite registry.

use crate::{eembc, hand, spec_fp, spec_int, versabench, Workload, WorkloadClass};

/// All 26 workloads, in the paper's Figure 6 grouping: hand-optimized,
/// EEMBC, Versabench, SPEC INT, then SPEC FP.
#[must_use]
pub fn all() -> Vec<Workload> {
    vec![
        hand::conv(),
        hand::ct(),
        hand::genalg(),
        eembc::a2time(),
        eembc::autocor(),
        eembc::basefp(),
        eembc::bezier(),
        eembc::dither(),
        eembc::rspeed(),
        eembc::tblook(),
        versabench::dot11b(),
        versabench::b8b10(),
        spec_int::gzip(),
        spec_int::bzip2(),
        spec_int::mcf(),
        spec_int::parser(),
        spec_int::twolf(),
        spec_int::vpr(),
        spec_int::gcc(),
        spec_int::perlbmk(),
        spec_fp::swim(),
        spec_fp::mgrid(),
        spec_fp::applu(),
        spec_fp::art(),
        spec_fp::equake(),
        spec_fp::ammp(),
    ]
}

/// Looks a workload up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// The 12 hand-optimized benchmarks used by the multiprogramming study
/// (Figure 10): hand kernels + EEMBC + Versabench.
#[must_use]
pub fn hand_optimized() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| {
            matches!(
                w.class,
                WorkloadClass::HandOptimized | WorkloadClass::Eembc | WorkloadClass::Versabench
            )
        })
        .collect()
}

/// The 14 compiled (SPEC-like) benchmarks.
#[must_use]
pub fn compiled() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| matches!(w.class, WorkloadClass::SpecInt | WorkloadClass::SpecFp))
        .collect()
}
