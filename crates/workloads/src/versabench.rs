//! Versabench-like kernels: `802.11b` and `8b10b`.

use crate::util::{for_loop, idx8, Lcg};
use crate::{CheckSpec, IlpClass, Workload, WorkloadClass};
use clp_compiler::{FunctionBuilder, ProgramBuilder};
use clp_isa::Opcode;

const IN: u64 = 0x3_0000_0000;
const OUT: u64 = 0x3_0001_0000;

/// `802.11b`: the scrambler stage of the 802.11b PHY — a 7-bit LFSR
/// (x^7 + x^4 + 1) XORed over the payload, processed one 64-bit word at a
/// time with the 8 bit-steps per byte unrolled (high integer ILP from the
/// independent per-word bit manipulation).
#[must_use]
pub fn dot11b() -> Workload {
    let n = 112usize;
    let mut f = FunctionBuilder::new("dot11b", 3);
    let input = f.param(0);
    let out = f.param(1);
    let nv = f.param(2);
    let state = f.c(0x5b);
    for_loop(&mut f, nv, |f, i| {
        let a = idx8(f, input, i);
        let w = f.load(a, 0);
        // Generate 8 scrambler bits (one per byte lane), unrolled four
        // per block (a full 8x unroll exceeds one 128-instruction
        // hyperblock once fan-out movs are counted).
        let mut key = f.c(0);
        for lane in 0..8i64 {
            if lane == 4 {
                let half = f.new_block();
                f.jump(half);
                f.switch_to(half);
            }
            // bit = s[6] ^ s[3]
            let s6 = f.c(6);
            let t6 = f.bin(Opcode::Shr, state, s6);
            let s3 = f.c(3);
            let t3 = f.bin(Opcode::Shr, state, s3);
            let x = f.bin(Opcode::Xor, t6, t3);
            let one = f.c(1);
            let bit = f.bin(Opcode::And, x, one);
            // state = ((state << 1) | bit) & 0x7f
            let sh = f.bin(Opcode::Shl, state, one);
            let ns = f.bin(Opcode::Or, sh, bit);
            let mask = f.c(0x7f);
            f.bin_into(state, Opcode::And, ns, mask);
            // key |= (0xff * bit) << (8*lane)
            let ff = f.c(0xff);
            let by = f.bin(Opcode::Mul, bit, ff);
            let lsh = f.c(8 * lane);
            let placed = f.bin(Opcode::Shl, by, lsh);
            key = f.bin(Opcode::Or, key, placed);
        }
        let scrambled = f.bin(Opcode::Xor, w, key);
        let dst = idx8(f, out, i);
        f.store(dst, 0, scrambled);
    });
    f.ret(Some(state));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0x80211);
    Workload {
        name: "802.11b",
        class: WorkloadClass::Versabench,
        ilp: IlpClass::High,
        program: pb.finish(id),
        args: vec![IN, OUT, n as u64],
        init_mem: vec![(IN, rng.words(n, u64::MAX / 2))],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, n)],
        },
    }
}

/// `8b10b`: 8b/10b line-code encoder — per input byte, a 5b/6b + 3b/4b
/// table encode with running-disparity selection (table lookups plus a
/// disparity-dependent branch per symbol).
#[must_use]
pub fn b8b10() -> Workload {
    let n = 144usize;
    const TAB5: u64 = 0x3_0002_0000;
    const TAB3: u64 = 0x3_0003_0000;
    let mut f = FunctionBuilder::new("b8b10", 5);
    let input = f.param(0);
    let out = f.param(1);
    let t5 = f.param(2);
    let t3 = f.param(3);
    let nv = f.param(4);
    let disparity = f.c(0);
    for_loop(&mut f, nv, |f, i| {
        let a = idx8(f, input, i);
        let byte = f.load(a, 0);
        let m5 = f.c(0x1f);
        let low5 = f.bin(Opcode::And, byte, m5);
        let s5 = f.c(5);
        let high3 = f.bin(Opcode::Shr, byte, s5);
        let a5 = idx8(f, t5, low5);
        let c6 = f.load(a5, 0);
        let a3 = idx8(f, t3, high3);
        let c4 = f.load(a3, 0);
        // Disparity: popcount surrogate = sum of nibble keys.
        let zd = f.c(0);
        let neg = f.bin(Opcode::Tlt, disparity, zd);
        let (flip, keep, join) = (f.new_block(), f.new_block(), f.new_block());
        let code = f.c(0);
        f.branch(neg, flip, keep);
        f.switch_to(flip);
        // Negative running disparity: complement the 6-bit group.
        let m6 = f.c(0x3f);
        let c6f = f.bin(Opcode::Xor, c6, m6);
        let s4 = f.c(4);
        let hi = f.bin(Opcode::Shl, c6f, s4);
        f.bin_into(code, Opcode::Or, hi, c4);
        f.jump(join);
        f.switch_to(keep);
        let s4b = f.c(4);
        let hi2 = f.bin(Opcode::Shl, c6, s4b);
        f.bin_into(code, Opcode::Or, hi2, c4);
        f.jump(join);
        f.switch_to(join);
        // Update disparity with a +/-1 per symbol based on bit 0.
        let one = f.c(1);
        let b0 = f.bin(Opcode::And, code, one);
        let two = f.c(2);
        let delta = f.bin(Opcode::Mul, b0, two);
        let dm1 = f.bin(Opcode::Sub, delta, one);
        f.bin_into(disparity, Opcode::Add, disparity, dm1);
        let dst = idx8(f, out, i);
        f.store(dst, 0, code);
    });
    f.ret(Some(disparity));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0x8b10b);
    Workload {
        name: "8b10b",
        class: WorkloadClass::Versabench,
        ilp: IlpClass::High,
        program: pb.finish(id),
        args: vec![IN, OUT, TAB5, TAB3, n as u64],
        init_mem: vec![
            (IN, rng.words(n, 256)),
            (TAB5, rng.words(32, 64)),
            (TAB3, rng.words(8, 16)),
        ],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, n)],
        },
    }
}
