//! SPEC CPU2000 integer-like programs: `gzip`, `bzip2`, `mcf`, `parser`,
//! `twolf`, `vpr`, `gcc`, `perlbmk`.

use crate::util::{for_loop, idx1, idx8, Lcg};
use crate::{CheckSpec, IlpClass, Workload, WorkloadClass};
use clp_compiler::{FunctionBuilder, ProgramBuilder};
use clp_isa::Opcode;

const IN: u64 = 0x4_0000_0000;
const IN2: u64 = 0x4_0004_0000;
const OUT: u64 = 0x4_0001_0000;
const BIG: u64 = 0x4_0010_0000;

/// `gzip`: LZ77-style longest-match search — for each position, compare
/// against 8 window candidates and record the best length (nested
/// data-dependent loops, medium-low ILP).
#[must_use]
pub fn gzip() -> Workload {
    let n = 192usize;
    let mut f = FunctionBuilder::new("gzip", 3);
    let text = f.param(0);
    let out = f.param(1);
    let nv = f.param(2);
    let start = f.c(16);
    let span = f.bin(Opcode::Sub, nv, start);
    for_loop(&mut f, span, |f, k| {
        let pos = f.bin(Opcode::Add, k, start);
        let best = f.c(0);
        let cand_count = f.c(8);
        for_loop(f, cand_count, |f, c| {
            // candidate offset = c + 1 positions back
            let one = f.c(1);
            let back = f.bin(Opcode::Add, c, one);
            let cand = f.bin(Opcode::Sub, pos, back);
            // match length up to 4, fixed-depth with early predicate
            let len = f.c(0);
            let run = f.c(1);
            for d in 0..4i64 {
                let pa = idx1(f, text, pos);
                let ca = idx1(f, text, cand);
                let pc = f.loadb(pa, d);
                let cc = f.loadb(ca, d);
                let eq = f.bin(Opcode::Teq, pc, cc);
                f.bin_into(run, Opcode::And, run, eq);
                f.bin_into(len, Opcode::Add, len, run);
            }
            let better = f.bin(Opcode::Tgt, len, best);
            let (upd, skip, join) = (f.new_block(), f.new_block(), f.new_block());
            f.branch(better, upd, skip);
            f.switch_to(upd);
            f.assign(best, len);
            f.jump(join);
            f.switch_to(skip);
            f.jump(join);
            f.switch_to(join);
        });
        let dst = idx8(f, out, k);
        f.store(dst, 0, best);
    });
    let z = f.c(0);
    f.ret(Some(z));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0x6219);
    // Byte text with enough repetition for matches.
    let bytes: Vec<u64> = (0..n / 8)
        .map(|_| {
            let mut w = 0u64;
            for b in 0..8 {
                w |= (rng.below(4) + 97) << (8 * b);
            }
            w
        })
        .collect();
    Workload {
        name: "gzip",
        class: WorkloadClass::SpecInt,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![IN, OUT, n as u64],
        init_mem: vec![(IN, bytes)],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, n - 16)],
        },
    }
}

/// `bzip2`: run-length encoding of a byte stream (serial dependence on
/// the output cursor; low ILP).
#[must_use]
pub fn bzip2() -> Workload {
    let n = 256usize;
    let mut f = FunctionBuilder::new("bzip2", 3);
    let text = f.param(0);
    let out = f.param(1);
    let nv = f.param(2);
    let wcursor = f.c(0);
    let prev = f.c(-1);
    let run = f.c(0);
    for_loop(&mut f, nv, |f, i| {
        let a = idx1(f, text, i);
        let ch = f.loadb(a, 0);
        let same = f.bin(Opcode::Teq, ch, prev);
        let (cont, emit, join) = (f.new_block(), f.new_block(), f.new_block());
        f.branch(same, cont, emit);
        f.switch_to(cont);
        let one = f.c(1);
        f.bin_into(run, Opcode::Add, run, one);
        f.jump(join);
        f.switch_to(emit);
        // emit (prev, run) pair
        let pair_addr = idx8(f, out, wcursor);
        let eight = f.c(8);
        let packed = f.bin(Opcode::Shl, prev, eight);
        let rec = f.bin(Opcode::Or, packed, run);
        f.store(pair_addr, 0, rec);
        let one2 = f.c(1);
        f.bin_into(wcursor, Opcode::Add, wcursor, one2);
        f.assign(prev, ch);
        f.c_into(run, 1);
        f.jump(join);
        f.switch_to(join);
    });
    f.ret(Some(wcursor));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0xB217);
    let bytes: Vec<u64> = (0..n / 8)
        .map(|_| {
            let mut w = 0u64;
            let c = rng.below(3) + 65;
            for b in 0..8 {
                let ch = if rng.below(4) == 0 {
                    rng.below(3) + 65
                } else {
                    c
                };
                w |= ch << (8 * b);
            }
            w
        })
        .collect();
    Workload {
        name: "bzip2",
        class: WorkloadClass::SpecInt,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![IN, OUT, n as u64],
        init_mem: vec![(IN, bytes)],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, 64)],
        },
    }
}

/// `mcf`: pointer chasing through a linked list scattered over a region
/// much larger than the L1 (serial loads, cache-miss bound — the classic
/// low-IPC SPEC profile).
#[must_use]
pub fn mcf() -> Workload {
    let nodes = 2048usize; // 2048 * 16B = 32 KB >> 8 KB L1
    let hops = 1200usize;
    let mut f = FunctionBuilder::new("mcf", 2);
    let head = f.param(0);
    let nhops = f.param(1);
    let cur = f.vreg();
    f.assign(cur, head);
    let total = f.c(0);
    for_loop(&mut f, nhops, |f, _i| {
        let val = f.load(cur, 8);
        f.bin_into(total, Opcode::Add, total, val);
        let next = f.load(cur, 0);
        f.assign(cur, next);
    });
    f.ret(Some(total));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    // Scattered permutation cycle: node k at BIG + 16*perm[k].
    let mut rng = Lcg::new(0x3CF);
    let mut perm: Vec<usize> = (0..nodes).collect();
    for k in (1..nodes).rev() {
        let j = rng.below(k as u64 + 1) as usize;
        perm.swap(k, j);
    }
    let mut words = vec![0u64; nodes * 2];
    for k in 0..nodes {
        let slot = perm[k];
        let next_slot = perm[(k + 1) % nodes];
        words[slot * 2] = BIG + 16 * next_slot as u64;
        words[slot * 2 + 1] = (k as u64 * 37) % 1009;
    }
    let head = BIG + 16 * perm[0] as u64;
    Workload {
        name: "mcf",
        class: WorkloadClass::SpecInt,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![head, hops as u64],
        init_mem: vec![(BIG, words)],
        check: CheckSpec {
            check_ret: true,
            regions: vec![],
        },
    }
}

/// `parser`: byte-stream tokenizer counting words, numbers, and
/// punctuation (character-class branches per byte).
#[must_use]
pub fn parser() -> Workload {
    let n = 320usize;
    let mut f = FunctionBuilder::new("parser", 2);
    let text = f.param(0);
    let nv = f.param(1);
    let words = f.c(0);
    let digits = f.c(0);
    let in_word = f.c(0);
    for_loop(&mut f, nv, |f, i| {
        let a = idx1(f, text, i);
        let ch = f.loadb(a, 0);
        let ca = f.c(97);
        let cz = f.c(122);
        let ge_a = f.bin(Opcode::Tge, ch, ca);
        let le_z = f.bin(Opcode::Tle, ch, cz);
        let alpha = f.bin(Opcode::And, ge_a, le_z);
        let c0 = f.c(48);
        let c9 = f.c(57);
        let ge_0 = f.bin(Opcode::Tge, ch, c0);
        let le_9 = f.bin(Opcode::Tle, ch, c9);
        let digit = f.bin(Opcode::And, ge_0, le_9);
        f.bin_into(digits, Opcode::Add, digits, digit);
        // Word-start detection: alpha && !in_word.
        let z = f.c(0);
        let not_in = f.bin(Opcode::Teq, in_word, z);
        let startw = f.bin(Opcode::And, alpha, not_in);
        f.bin_into(words, Opcode::Add, words, startw);
        f.assign(in_word, alpha);
    });
    let sh = f.c(16);
    let packed = f.bin(Opcode::Shl, words, sh);
    let res = f.bin(Opcode::Or, packed, digits);
    f.ret(Some(res));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0x9A);
    let bytes: Vec<u64> = (0..n / 8)
        .map(|_| {
            let mut w = 0u64;
            for b in 0..8 {
                let cls = rng.below(10);
                let ch = match cls {
                    0..=5 => rng.below(26) + 97,
                    6..=7 => rng.below(10) + 48,
                    _ => 32,
                };
                w |= ch << (8 * b);
            }
            w
        })
        .collect();
    Workload {
        name: "parser",
        class: WorkloadClass::SpecInt,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![IN, n as u64],
        init_mem: vec![(IN, bytes)],
        check: CheckSpec {
            check_ret: true,
            regions: vec![],
        },
    }
}

/// `twolf`: standard-cell placement cost sweep — wire-length deltas with
/// conditional accept (table-driven integer math with branches).
#[must_use]
pub fn twolf() -> Workload {
    let cells = 128usize;
    let mut f = FunctionBuilder::new("twolf", 3);
    let xs = f.param(0);
    let ys = f.param(1);
    let ncells = f.param(2);
    let cost = f.c(0);
    let one_const = f.c(1);
    let limit = f.bin(Opcode::Sub, ncells, one_const);
    for_loop(&mut f, limit, |f, i| {
        let xa = idx8(f, xs, i);
        let x0 = f.load(xa, 0);
        let x1 = f.load(xa, 8);
        let ya = idx8(f, ys, i);
        let y0 = f.load(ya, 0);
        let y1 = f.load(ya, 8);
        let dx = f.bin(Opcode::Sub, x1, x0);
        let dy = f.bin(Opcode::Sub, y1, y0);
        // |dx| + |dy| via branches
        let adx = f.vreg();
        f.assign(adx, dx);
        let zx = f.c(0);
        let negx = f.bin(Opcode::Tlt, dx, zx);
        let (nx, px, jx) = (f.new_block(), f.new_block(), f.new_block());
        f.branch(negx, nx, px);
        f.switch_to(nx);
        let ndx = f.un(Opcode::Neg, dx);
        f.assign(adx, ndx);
        f.jump(jx);
        f.switch_to(px);
        f.jump(jx);
        f.switch_to(jx);
        let ady = f.vreg();
        f.assign(ady, dy);
        let zy = f.c(0);
        let negy = f.bin(Opcode::Tlt, dy, zy);
        let (ny, py, jy) = (f.new_block(), f.new_block(), f.new_block());
        f.branch(negy, ny, py);
        f.switch_to(ny);
        let ndy = f.un(Opcode::Neg, dy);
        f.assign(ady, ndy);
        f.jump(jy);
        f.switch_to(py);
        f.jump(jy);
        f.switch_to(jy);
        let wl = f.bin(Opcode::Add, adx, ady);
        // Congestion penalty if both deltas exceed 8.
        let eight = f.c(8);
        let bx = f.bin(Opcode::Tgt, adx, eight);
        let by = f.bin(Opcode::Tgt, ady, eight);
        let both = f.bin(Opcode::And, bx, by);
        let pen = f.c(16);
        let extra = f.bin(Opcode::Mul, both, pen);
        let c1 = f.bin(Opcode::Add, wl, extra);
        f.bin_into(cost, Opcode::Add, cost, c1);
    });
    f.ret(Some(cost));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0x2017);
    Workload {
        name: "twolf",
        class: WorkloadClass::SpecInt,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![IN, IN2, cells as u64],
        init_mem: vec![(IN, rng.words(cells, 64)), (IN2, rng.words(cells, 64))],
        check: CheckSpec {
            check_ret: true,
            regions: vec![],
        },
    }
}

/// `vpr`: FPGA routing cost — per net, walk a bounding box over a cost
/// grid accumulating table-driven costs (regular loads, medium ILP).
#[must_use]
pub fn vpr() -> Workload {
    let grid = 16usize;
    let nets = 48usize;
    const GRID: u64 = 0x4_0002_0000;
    let mut f = FunctionBuilder::new("vpr", 4);
    let gridp = f.param(0);
    let netp = f.param(1);
    let out = f.param(2);
    let nnets = f.param(3);
    let gdim = f.c(grid as i64);
    for_loop(&mut f, nnets, |f, ni| {
        let na = idx8(f, netp, ni);
        let packed = f.load(na, 0);
        let m = f.c(0xf);
        let x0 = f.bin(Opcode::And, packed, m);
        let four = f.c(4);
        let t1 = f.bin(Opcode::Shr, packed, four);
        let y0 = f.bin(Opcode::And, t1, m);
        let eightc = f.c(8);
        let t2 = f.bin(Opcode::Shr, packed, eightc);
        let w = f.bin(Opcode::And, t2, m);
        let total = f.c(0);
        for_loop(f, w, |f, dx| {
            let x = f.bin(Opcode::Add, x0, dx);
            let row = f.bin(Opcode::Mul, y0, gdim);
            let cell = f.bin(Opcode::Add, row, x);
            let ca = idx8(f, gridp, cell);
            let cost = f.load(ca, 0);
            f.bin_into(total, Opcode::Add, total, cost);
        });
        let dst = idx8(f, out, ni);
        f.store(dst, 0, total);
    });
    let z = f.c(0);
    f.ret(Some(z));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0x0FB);
    let netdata: Vec<u64> = (0..nets)
        .map(|_| {
            let x0 = rng.below(8);
            let y0 = rng.below(16);
            let w = rng.below(8) + 1;
            x0 | (y0 << 4) | (w << 8)
        })
        .collect();
    Workload {
        name: "vpr",
        class: WorkloadClass::SpecInt,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![GRID, IN, OUT, nets as u64],
        init_mem: vec![(GRID, rng.words(grid * grid, 20)), (IN, netdata)],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, nets)],
        },
    }
}

/// `gcc`: a tiny stack-machine expression evaluator over a bytecode
/// stream (indirect, very branchy dispatch — the classic compiler
/// profile).
#[must_use]
pub fn gcc() -> Workload {
    let prog_len = 192usize;
    const STACK: u64 = 0x4_0003_0000;
    let mut f = FunctionBuilder::new("gcc", 3);
    let code = f.param(0);
    let stackp = f.param(1);
    let nv = f.param(2);
    let sp = f.c(0);
    for_loop(&mut f, nv, |f, i| {
        let ca = idx8(f, code, i);
        let insn = f.load(ca, 0);
        let m = f.c(3);
        let op = f.bin(Opcode::And, insn, m);
        let two = f.c(2);
        let imm = f.bin(Opcode::Shr, insn, two);
        let zero = f.c(0);
        let is_push = f.bin(Opcode::Teq, op, zero);
        let (push_bb, not_push, join) = (f.new_block(), f.new_block(), f.new_block());
        f.branch(is_push, push_bb, not_push);
        // PUSH imm
        f.switch_to(push_bb);
        let sa = idx8(f, stackp, sp);
        f.store(sa, 0, imm);
        let one = f.c(1);
        f.bin_into(sp, Opcode::Add, sp, one);
        f.jump(join);
        // Binary ops need two operands; guard against underflow.
        f.switch_to(not_push);
        let two2 = f.c(2);
        let deep = f.bin(Opcode::Tge, sp, two2);
        let (do_op, skip, j2) = (f.new_block(), f.new_block(), f.new_block());
        f.branch(deep, do_op, skip);
        f.switch_to(do_op);
        let one2 = f.c(1);
        f.bin_into(sp, Opcode::Sub, sp, one2);
        let ta = idx8(f, stackp, sp);
        let b = f.load(ta, 0);
        let spm1 = f.bin(Opcode::Sub, sp, one2);
        let ba = idx8(f, stackp, spm1);
        let a = f.load(ba, 0);
        let onec = f.c(1);
        let is_add = f.bin(Opcode::Teq, op, onec);
        let (addb, mulb, j3) = (f.new_block(), f.new_block(), f.new_block());
        let r = f.c(0);
        f.branch(is_add, addb, mulb);
        f.switch_to(addb);
        f.bin_into(r, Opcode::Add, a, b);
        f.jump(j3);
        f.switch_to(mulb);
        let prod = f.bin(Opcode::Mul, a, b);
        let mask = f.c(0xffff);
        f.bin_into(r, Opcode::And, prod, mask);
        f.jump(j3);
        f.switch_to(j3);
        f.store(ba, 0, r);
        f.jump(j2);
        f.switch_to(skip);
        f.jump(j2);
        f.switch_to(j2);
        f.jump(join);
        f.switch_to(join);
    });
    // Result: top of stack (or sp if empty).
    f.ret(Some(sp));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0x6CC);
    let codev: Vec<u64> = (0..prog_len)
        .map(|_| {
            let op = if rng.below(2) == 0 {
                0
            } else {
                rng.below(2) + 1
            };
            let imm = rng.below(100);
            op | (imm << 2)
        })
        .collect();
    Workload {
        name: "gcc",
        class: WorkloadClass::SpecInt,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![IN, STACK, prog_len as u64],
        init_mem: vec![(IN, codev)],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(STACK, 8)],
        },
    }
}

/// `perlbmk`: string hashing (djb2) over fixed-length records plus a
/// hash-table bucket histogram (byte loads, serial hash chain).
#[must_use]
pub fn perlbmk() -> Workload {
    let nstrings = 48usize;
    let strlen = 12usize;
    const HIST: u64 = 0x4_0005_0000;
    let mut f = FunctionBuilder::new("perlbmk", 4);
    let text = f.param(0);
    let hist = f.param(1);
    let ns = f.param(2);
    let sl = f.param(3);
    for_loop(&mut f, ns, |f, si| {
        let off = f.bin(Opcode::Mul, si, sl);
        let base = f.bin(Opcode::Add, text, off);
        let h = f.c(5381);
        for_loop(f, sl, |f, ci| {
            let a = f.bin(Opcode::Add, base, ci);
            let ch = f.loadb(a, 0);
            let five = f.c(5);
            let h32 = f.bin(Opcode::Shl, h, five);
            let sum = f.bin(Opcode::Add, h32, h);
            f.bin_into(h, Opcode::Add, sum, ch);
        });
        let m = f.c(31);
        let bucket = f.bin(Opcode::And, h, m);
        let ba = idx8(f, hist, bucket);
        let cnt = f.load(ba, 0);
        let one = f.c(1);
        let c1 = f.bin(Opcode::Add, cnt, one);
        f.store(ba, 0, c1);
    });
    let z = f.c(0);
    f.ret(Some(z));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0x9E51);
    let total_bytes = nstrings * strlen;
    let bytes: Vec<u64> = (0..total_bytes.div_ceil(8))
        .map(|_| {
            let mut w = 0u64;
            for b in 0..8 {
                w |= (rng.below(26) + 97) << (8 * b);
            }
            w
        })
        .collect();
    Workload {
        name: "perlbmk",
        class: WorkloadClass::SpecInt,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![IN, HIST, nstrings as u64, strlen as u64],
        init_mem: vec![(IN, bytes)],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(HIST, 32)],
        },
    }
}
