//! EEMBC-like embedded kernels: `a2time`, `autocor`, `basefp`, `bezier`,
//! `dither`, `rspeed`, `tblook`.

use crate::util::{for_loop, idx8, Lcg};
use crate::{CheckSpec, IlpClass, Workload, WorkloadClass};
use clp_compiler::{FunctionBuilder, ProgramBuilder};
use clp_isa::Opcode;

const IN: u64 = 0x2_0000_0000;
const OUT: u64 = 0x2_0001_0000;
const TAB: u64 = 0x2_0002_0000;

/// `a2time`: angle-to-time conversion — integer divide/modulo per sample
/// with range-check branches (low ILP: serial divides).
#[must_use]
pub fn a2time() -> Workload {
    let n = 96usize;
    let mut f = FunctionBuilder::new("a2time", 3);
    let input = f.param(0);
    let out = f.param(1);
    let nv = f.param(2);
    for_loop(&mut f, nv, |f, i| {
        let a = idx8(f, input, i);
        let angle = f.load(a, 0);
        let deg360 = f.c(360);
        let wrapped = f.bin(Opcode::Rem, angle, deg360);
        // Quadrant adjustment: if wrapped >= 180, time = (360-wrapped)*50
        // else time = wrapped*50.
        let d180 = f.c(180);
        let hi = f.bin(Opcode::Tge, wrapped, d180);
        let (q_hi, q_lo, join) = (f.new_block(), f.new_block(), f.new_block());
        let time = f.c(0);
        f.branch(hi, q_hi, q_lo);
        f.switch_to(q_hi);
        let inv = f.bin(Opcode::Sub, deg360, wrapped);
        let fifty = f.c(50);
        f.bin_into(time, Opcode::Mul, inv, fifty);
        f.jump(join);
        f.switch_to(q_lo);
        let fifty2 = f.c(50);
        f.bin_into(time, Opcode::Mul, wrapped, fifty2);
        f.jump(join);
        f.switch_to(join);
        let per_tooth = f.c(7);
        let tooth = f.bin(Opcode::Div, time, per_tooth);
        let dst = idx8(f, out, i);
        f.store(dst, 0, tooth);
    });
    let z = f.c(0);
    f.ret(Some(z));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0xA2);
    Workload {
        name: "a2time",
        class: WorkloadClass::Eembc,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![IN, OUT, n as u64],
        init_mem: vec![(IN, rng.words(n, 100_000))],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, n)],
        },
    }
}

/// `autocor`: autocorrelation over 8 lags with a 4x-unrolled inner
/// product (high ILP).
#[must_use]
pub fn autocor() -> Workload {
    let n = 128usize;
    let lags = 8usize;
    let mut f = FunctionBuilder::new("autocor", 3);
    let x = f.param(0);
    let out = f.param(1);
    let _nv = f.param(2);
    let nlags = f.c(lags as i64);
    for_loop(&mut f, nlags, |f, lag| {
        let acc = f.c(0);
        let three = f.c(3);
        let lag_off = f.bin(Opcode::Shl, lag, three);
        let limit = { f.c((n - lags) as i64) };
        crate::util::for_loop_step(f, limit, 4, &mut |f, i| {
            let base = idx8(f, x, i);
            let shifted = f.bin(Opcode::Add, base, lag_off);
            for k in 0..4i64 {
                let a = f.load(base, 8 * k);
                let b = f.load(shifted, 8 * k);
                let p = f.bin(Opcode::Mul, a, b);
                f.bin_into(acc, Opcode::Add, acc, p);
            }
        });
        let dst = idx8(f, out, lag);
        f.store(dst, 0, acc);
    });
    let z = f.c(0);
    f.ret(Some(z));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0xAC);
    Workload {
        name: "autocor",
        class: WorkloadClass::Eembc,
        ilp: IlpClass::High,
        program: pb.finish(id),
        args: vec![IN, OUT, n as u64],
        init_mem: vec![(IN, rng.words(n, 256))],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, lags)],
        },
    }
}

/// `basefp`: basic floating-point chain — per element
/// `y = (x*a + b) / (x + c)` (medium ILP, FP-latency bound).
#[must_use]
pub fn basefp() -> Workload {
    let n = 96usize;
    let mut f = FunctionBuilder::new("basefp", 3);
    let x = f.param(0);
    let out = f.param(1);
    let nv = f.param(2);
    let a = f.cf(1.5);
    let b = f.cf(2.25);
    let c = f.cf(4.0);
    for_loop(&mut f, nv, |f, i| {
        let addr = idx8(f, x, i);
        let xv = f.load(addr, 0);
        let xa = f.bin(Opcode::Fmul, xv, a);
        let num = f.bin(Opcode::Fadd, xa, b);
        let den = f.bin(Opcode::Fadd, xv, c);
        let y = f.bin(Opcode::Fdiv, num, den);
        let dst = idx8(f, out, i);
        f.store(dst, 0, y);
    });
    let z = f.c(0);
    f.ret(Some(z));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0xBF);
    Workload {
        name: "basefp",
        class: WorkloadClass::Eembc,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![IN, OUT, n as u64],
        init_mem: vec![(IN, rng.f64_words(n))],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, n)],
        },
    }
}

/// `bezier`: cubic Bézier curve evaluation at 32 parameter values, with
/// the Bernstein basis expanded (high FP ILP).
#[must_use]
pub fn bezier() -> Workload {
    let steps = 96usize;
    let mut f = FunctionBuilder::new("bezier", 2);
    let out = f.param(0);
    let nv = f.param(1);
    let p0 = f.cf(0.0);
    let p1 = f.cf(1.8);
    let p2 = f.cf(2.4);
    let p3 = f.cf(0.9);
    let one = f.cf(1.0);
    let step = f.cf(1.0 / steps as f64);
    for_loop(&mut f, nv, |f, i| {
        let if64 = f.un(Opcode::Itof, i);
        let t = f.bin(Opcode::Fmul, if64, step);
        let mt = f.bin(Opcode::Fsub, one, t);
        let t2 = f.bin(Opcode::Fmul, t, t);
        let t3 = f.bin(Opcode::Fmul, t2, t);
        let mt2 = f.bin(Opcode::Fmul, mt, mt);
        let mt3 = f.bin(Opcode::Fmul, mt2, mt);
        let three_t = f.cf(3.0);
        let b1c = f.bin(Opcode::Fmul, three_t, t);
        let b1 = f.bin(Opcode::Fmul, b1c, mt2);
        let b2c = f.bin(Opcode::Fmul, three_t, t2);
        let b2 = f.bin(Opcode::Fmul, b2c, mt);
        let term0 = f.bin(Opcode::Fmul, mt3, p0);
        let term1 = f.bin(Opcode::Fmul, b1, p1);
        let term2 = f.bin(Opcode::Fmul, b2, p2);
        let term3 = f.bin(Opcode::Fmul, t3, p3);
        let s01 = f.bin(Opcode::Fadd, term0, term1);
        let s23 = f.bin(Opcode::Fadd, term2, term3);
        let y = f.bin(Opcode::Fadd, s01, s23);
        let dst = idx8(f, out, i);
        f.store(dst, 0, y);
    });
    let z = f.c(0);
    f.ret(Some(z));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    Workload {
        name: "bezier",
        class: WorkloadClass::Eembc,
        ilp: IlpClass::High,
        program: pb.finish(id),
        args: vec![OUT, steps as u64],
        init_mem: vec![],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, steps)],
        },
    }
}

/// `dither`: threshold dithering of a 16x16 8-bit image with error
/// diffusion to the right neighbor (byte loads/stores, serial carry).
#[must_use]
pub fn dither() -> Workload {
    let w = 16usize;
    let h = 16usize;
    let mut f = FunctionBuilder::new("dither", 3);
    let img = f.param(0);
    let wv = f.param(1);
    let hv = f.param(2);
    for_loop(&mut f, hv, |f, y| {
        let row_off = f.bin(Opcode::Mul, y, wv);
        let row = f.bin(Opcode::Add, img, row_off);
        let err = f.c(0);
        let wm = wv;
        for_loop(f, wm, |f, xx| {
            let a = f.bin(Opcode::Add, row, xx);
            let pix = f.loadb(a, 0);
            let v = f.bin(Opcode::Add, pix, err);
            let thresh = f.c(128);
            let on = f.bin(Opcode::Tge, v, thresh);
            let (white, black, join) = (f.new_block(), f.new_block(), f.new_block());
            f.branch(on, white, black);
            f.switch_to(white);
            let w255 = f.c(255);
            f.storeb(a, 0, w255);
            let e1 = f.bin(Opcode::Sub, v, w255);
            f.assign(err, e1);
            f.jump(join);
            f.switch_to(black);
            let zero = f.c(0);
            f.storeb(a, 0, zero);
            f.assign(err, v);
            f.jump(join);
            f.switch_to(join);
            // halve the carried error
            let one = f.c(1);
            f.bin_into(err, Opcode::Sar, err, one);
        });
    });
    let z = f.c(0);
    f.ret(Some(z));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0xD1);
    let bytes: Vec<u64> = (0..(w * h / 8))
        .map(|_| {
            let mut word = 0u64;
            for b in 0..8 {
                word |= rng.below(256) << (8 * b);
            }
            word
        })
        .collect();
    Workload {
        name: "dither",
        class: WorkloadClass::Eembc,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![IN, w as u64, h as u64],
        init_mem: vec![(IN, bytes)],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(IN, w * h / 8)],
        },
    }
}

/// `rspeed`: road-speed calculation — pulse-interval classification with
/// nested branches (low ILP, branchy).
#[must_use]
pub fn rspeed() -> Workload {
    let n = 112usize;
    let mut f = FunctionBuilder::new("rspeed", 3);
    let pulses = f.param(0);
    let out = f.param(1);
    let nv = f.param(2);
    let fast_count = f.c(0);
    for_loop(&mut f, nv, |f, i| {
        let a = idx8(f, pulses, i);
        let interval = f.load(a, 0);
        let k = f.c(100_000);
        let speed = f.bin(Opcode::Div, k, interval);
        let lim_hi = f.c(120);
        let lim_lo = f.c(30);
        let too_fast = f.bin(Opcode::Tgt, speed, lim_hi);
        let (fast, rest, join) = (f.new_block(), f.new_block(), f.new_block());
        let clamped = f.c(0);
        f.branch(too_fast, fast, rest);
        f.switch_to(fast);
        f.assign(clamped, lim_hi);
        let one = f.c(1);
        f.bin_into(fast_count, Opcode::Add, fast_count, one);
        f.jump(join);
        f.switch_to(rest);
        let too_slow = f.bin(Opcode::Tlt, speed, lim_lo);
        let (slow, normal, j2) = (f.new_block(), f.new_block(), f.new_block());
        f.branch(too_slow, slow, normal);
        f.switch_to(slow);
        f.assign(clamped, lim_lo);
        f.jump(j2);
        f.switch_to(normal);
        f.assign(clamped, speed);
        f.jump(j2);
        f.switch_to(j2);
        f.jump(join);
        f.switch_to(join);
        let dst = idx8(f, out, i);
        f.store(dst, 0, clamped);
    });
    f.ret(Some(fast_count));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0x55);
    let data: Vec<u64> = (0..n).map(|_| rng.below(5000) + 500).collect();
    Workload {
        name: "rspeed",
        class: WorkloadClass::Eembc,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![IN, OUT, n as u64],
        init_mem: vec![(IN, data)],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, n)],
        },
    }
}

/// `tblook`: table lookup with interpolation — binary search over a
/// 64-entry sorted table per query (low ILP, dependent branches).
#[must_use]
pub fn tblook() -> Workload {
    let table_len = 64usize;
    let queries = 80usize;
    let mut f = FunctionBuilder::new("tblook", 4);
    let table = f.param(0);
    let q = f.param(1);
    let out = f.param(2);
    let nq = f.param(3);
    for_loop(&mut f, nq, |f, i| {
        let qa = idx8(f, q, i);
        let key = f.load(qa, 0);
        let lo = f.c(0);
        let hi = f.c(table_len as i64);
        // Fixed-depth binary search (6 levels for 64 entries).
        for _ in 0..6 {
            let sum = f.bin(Opcode::Add, lo, hi);
            let one = f.c(1);
            let mid = f.bin(Opcode::Shr, sum, one);
            let ma = idx8(f, table, mid);
            let mv = f.load(ma, 0);
            let le = f.bin(Opcode::Tle, mv, key);
            let (go_hi, go_lo, join) = (f.new_block(), f.new_block(), f.new_block());
            f.branch(le, go_hi, go_lo);
            f.switch_to(go_hi);
            f.assign(lo, mid);
            f.jump(join);
            f.switch_to(go_lo);
            f.assign(hi, mid);
            f.jump(join);
            f.switch_to(join);
        }
        let dst = idx8(f, out, i);
        f.store(dst, 0, lo);
    });
    let z = f.c(0);
    f.ret(Some(z));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let mut rng = Lcg::new(0x7B);
    // Sorted table: cumulative sums.
    let mut acc = 0u64;
    let table: Vec<u64> = (0..table_len)
        .map(|_| {
            acc += rng.below(50) + 1;
            acc
        })
        .collect();
    let max = acc;
    Workload {
        name: "tblook",
        class: WorkloadClass::Eembc,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![TAB, IN, OUT, queries as u64],
        init_mem: vec![(TAB, table), (IN, rng.words(queries, max))],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(OUT, queries)],
        },
    }
}
