//! # clp-workloads — the 26-kernel benchmark suite
//!
//! Stand-ins for the paper's benchmarks (Table 1): the EEMBC, SPEC
//! CPU2000, Versabench, and hand-optimized programs are unavailable or
//! unportable to a reconstructed EDGE toolchain, so this crate provides
//! 26 kernels written in the mini-IR, named after and shaped like the
//! originals, spanning the same spectrum from high-ILP dense loops to
//! low-ILP pointer chasing (see DESIGN.md for the substitution argument).
//!
//! Every workload carries its inputs and a *verification specification*;
//! [`Workload::golden`] runs the reference interpreter and
//! [`Workload::verify`] checks a simulator's outputs against it, so all
//! three execution engines in this repository are continuously
//! cross-checked.
//!
//! ```
//! use clp_workloads::suite;
//!
//! let all = suite::all();
//! assert_eq!(all.len(), 26);
//! let conv = suite::by_name("conv").expect("exists");
//! let golden = conv.golden();
//! assert!(golden.ret.is_some());
//! ```

#![warn(missing_docs)]

mod eembc;
mod hand;
mod spec_fp;
mod spec_int;
pub mod suite;
mod util;
mod versabench;

use clp_compiler::{interpret, Program};
use clp_mem::MemoryImage;
use serde::Serialize;
use std::fmt;

/// Which suite a workload stands in for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum WorkloadClass {
    /// Hand-optimized kernels (conv, ct, genalg).
    HandOptimized,
    /// EEMBC-like embedded benchmarks.
    Eembc,
    /// Versabench-like kernels.
    Versabench,
    /// SPEC CPU2000 integer-like programs.
    SpecInt,
    /// SPEC CPU2000 floating-point-like programs.
    SpecFp,
}

impl WorkloadClass {
    /// Every class, in canonical (rendering) order.
    pub const ALL: [WorkloadClass; 5] = [
        WorkloadClass::HandOptimized,
        WorkloadClass::Eembc,
        WorkloadClass::Versabench,
        WorkloadClass::SpecInt,
        WorkloadClass::SpecFp,
    ];

    /// Stable snake_case label (JSON keys, stats-registry metric names,
    /// clp-scope fleet-book rollup keys).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WorkloadClass::HandOptimized => "hand_optimized",
            WorkloadClass::Eembc => "eembc",
            WorkloadClass::Versabench => "versabench",
            WorkloadClass::SpecInt => "spec_int",
            WorkloadClass::SpecFp => "spec_fp",
        }
    }
}

/// Coarse ILP classification used to arrange Figure 6's x-axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum IlpClass {
    /// Plenty of independent work per block (dense, unrolled loops).
    High,
    /// Serial dependences, branchy control, or pointer chasing.
    Low,
}

/// What to check after a run.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct CheckSpec {
    /// Compare the entry function's return value (`r1`).
    pub check_ret: bool,
    /// Word regions `(address, length-in-words)` to compare against the
    /// interpreter's final memory.
    pub regions: Vec<(u64, usize)>,
}

/// Golden reference produced by the IR interpreter.
#[derive(Clone, Debug)]
pub struct Golden {
    /// Return value of the entry function.
    pub ret: Option<u64>,
    /// Final memory image.
    pub image: MemoryImage,
    /// Dynamic IR statistics (op counts).
    pub stats: clp_compiler::InterpStats,
}

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The return value differs.
    Ret {
        /// Expected value.
        expected: Option<u64>,
        /// Observed value.
        got: u64,
    },
    /// A word in a checked region differs.
    Memory {
        /// Address of the mismatching word.
        addr: u64,
        /// Expected word.
        expected: u64,
        /// Observed word.
        got: u64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Ret { expected, got } => {
                write!(f, "return value {got:#x}, expected {expected:?}")
            }
            VerifyError::Memory {
                addr,
                expected,
                got,
            } => write!(f, "mem[{addr:#x}] = {got:#x}, expected {expected:#x}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// One benchmark: an IR program, its inputs, and how to verify a run.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (matches the paper's suite where applicable).
    pub name: &'static str,
    /// Suite the workload stands in for.
    pub class: WorkloadClass,
    /// ILP classification.
    pub ilp: IlpClass,
    /// The IR program.
    pub program: Program,
    /// Entry-function arguments.
    pub args: Vec<u64>,
    /// Initial memory contents `(address, words)`.
    pub init_mem: Vec<(u64, Vec<u64>)>,
    /// Verification specification.
    pub check: CheckSpec,
}

impl Workload {
    /// Builds the initial memory image.
    #[must_use]
    pub fn initial_image(&self) -> MemoryImage {
        let mut image = MemoryImage::new();
        for (addr, words) in &self.init_mem {
            image.load_words(*addr, words);
        }
        image
    }

    /// Runs the reference interpreter to produce the golden result.
    ///
    /// # Examples
    ///
    /// ```
    /// let w = clp_workloads::suite::by_name("conv").expect("exists");
    /// let golden = w.golden();
    /// assert_eq!(golden.ret, Some(0));
    /// assert!(golden.stats.loads > 0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the program fails to terminate within a generous budget
    /// (a workload-definition bug). Job-facing callers that accept
    /// arbitrary workloads should use [`Workload::try_golden`], which
    /// reports the same condition as a typed error instead.
    #[must_use]
    pub fn golden(&self) -> Golden {
        self.try_golden()
            .unwrap_or_else(|e| panic!("workload '{}' golden run failed: {e}", self.name))
    }

    /// Like [`Workload::golden`], but a non-terminating or stack-blowing
    /// program is reported as a typed [`InterpError`] rather than a
    /// panic — the form the clp-serve admission path uses so a malformed
    /// job is rejected instead of taking a worker down.
    ///
    /// # Errors
    ///
    /// Returns the interpreter error if the program exceeds the dynamic
    /// operation budget or the call-depth limit.
    pub fn try_golden(&self) -> Result<Golden, clp_compiler::InterpError> {
        let mut image = self.initial_image();
        let r = interpret(&self.program, &self.args, &mut image, 200_000_000)?;
        Ok(Golden {
            ret: r.ret,
            image,
            stats: r.stats,
        })
    }

    /// Verifies a run's outputs against the golden reference.
    ///
    /// # Errors
    ///
    /// Returns the first mismatch found.
    pub fn verify(&self, ret: u64, image: &MemoryImage) -> Result<(), VerifyError> {
        let golden = self.golden();
        self.verify_against(&golden, ret, image)
    }

    /// Verifies against an already-computed golden result (avoids
    /// re-interpreting in sweeps).
    ///
    /// # Errors
    ///
    /// Returns the first mismatch found.
    pub fn verify_against(
        &self,
        golden: &Golden,
        ret: u64,
        image: &MemoryImage,
    ) -> Result<(), VerifyError> {
        if self.check.check_ret && golden.ret != Some(ret) {
            return Err(VerifyError::Ret {
                expected: golden.ret,
                got: ret,
            });
        }
        for &(base, len) in &self.check.regions {
            for k in 0..len {
                let addr = base + 8 * k as u64;
                let expected = golden.image.read_u64(addr);
                let got = image.read_u64(addr);
                if expected != got {
                    return Err(VerifyError::Memory {
                        addr,
                        expected,
                        got,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_26_unique_workloads() {
        let all = suite::all();
        assert_eq!(all.len(), 26);
        let mut names: Vec<&str> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26, "duplicate names");
    }

    #[test]
    fn classes_match_the_paper_counts() {
        let all = suite::all();
        let count = |c: WorkloadClass| all.iter().filter(|w| w.class == c).count();
        assert_eq!(count(WorkloadClass::HandOptimized), 3);
        assert_eq!(count(WorkloadClass::Eembc), 7);
        assert_eq!(count(WorkloadClass::Versabench), 2);
        assert_eq!(count(WorkloadClass::SpecInt), 8);
        assert_eq!(count(WorkloadClass::SpecFp), 6);
    }

    #[test]
    fn every_workload_interprets_and_checks_something() {
        for w in suite::all() {
            let g = w.golden();
            assert!(
                w.check.check_ret || !w.check.regions.is_empty(),
                "'{}' checks nothing",
                w.name
            );
            assert!(
                g.stats.fired_ops > 100,
                "'{}' does almost no work ({} ops)",
                w.name,
                g.stats.fired_ops
            );
            // Self-verification must pass trivially.
            let ret = g.ret.unwrap_or(0);
            w.verify_against(&g, ret, &g.image).expect(w.name);
        }
    }

    #[test]
    fn verify_detects_corruption() {
        let w = suite::by_name("conv").unwrap();
        let g = w.golden();
        let mut bad = g.image.clone();
        let (base, _) = w.check.regions[0];
        bad.write_u64(base, bad.read_u64(base) ^ 0xdead);
        assert!(w.verify_against(&g, g.ret.unwrap_or(0), &bad).is_err());
    }

    #[test]
    fn hand_optimized_set_for_figure_10() {
        // Figure 10 uses the 12 hand-optimized benchmarks.
        assert_eq!(suite::hand_optimized().len(), 12);
    }
}
