//! # clp-sim — the TFlex composable-processor simulator
//!
//! A cycle-stepped model of the TFlex CLP microarchitecture (Kim et al.,
//! MICRO 2007): up to 32 dual-issue EDGE cores on a 2-D mesh that can be
//! dynamically aggregated into logical processors of 1-32 cores, plus a
//! TRIPS-prototype configuration of the same machine for the paper's
//! baseline comparisons.
//!
//! The simulator executes EDGE programs *functionally* (every run's
//! outputs are checked against the IR interpreter in the test suite)
//! while charging Table 1 latencies and modeling the paper's distributed
//! protocols:
//!
//! * composable fetch: block-owner hash, next-block prediction,
//!   owner-to-owner hand-off, fetch-command broadcast, sliced dispatch;
//! * composable execution: dataflow wakeup, dual issue, operand routing
//!   over a contended mesh with single-cycle hops;
//! * composable memory: address-interleaved L1/LSQ banks with NACK
//!   overflow handling and violation flushes;
//! * composable commit: completion detection at the owner, 4-phase
//!   commit handshake, dealloc;
//! * misprediction rollback with exact repair of speculative predictor
//!   state.
//!
//! ```no_run
//! use clp_sim::{Machine, SimConfig};
//! # fn example(program: clp_isa::EdgeProgram) -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = Machine::new(SimConfig::tflex());
//! let pid = m.compose(8, 0, program, &[])?;
//! let stats = m.run()?;
//! println!("cycles: {}", stats.cycles);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod config;
mod events;
pub mod fault;
mod machine;
mod regfile;
mod stats;

pub use config::{table1_text, CoreConfig, ProtocolTiming, SimConfig};
pub use fault::{
    CoreKill, FaultKind, FaultPlan, FaultPlanError, FaultStats, ALL_FAULT_KINDS, MAX_KILLS,
};
pub use machine::{ComposeError, Machine, ProcId, RunError};
pub use regfile::{RegFile, RegRead};
pub use stats::{
    CommitLatencyBreakdown, ComposeStats, FetchLatencyBreakdown, ProcStats, RecoveryStats, RunStats,
};
