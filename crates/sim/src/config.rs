//! Simulator configuration (Table 1 of the paper).

use crate::fault::FaultPlan;
use clp_mem::MemConfig;
use clp_noc::MeshConfig;
use clp_predictor::PredictorConfig;
use serde::{Deserialize, Serialize};

/// How distributed-protocol handshakes are charged (§6.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolTiming {
    /// Full message-level timing over the control network.
    Modeled,
    /// All protocol handshakes (hand-off, fetch command, completion,
    /// commit, dealloc) are instantaneous — the idealized architecture of
    /// the §6.4 ablation. Operand traffic is still modeled.
    Instant,
}

/// Per-core microarchitectural parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Maximum instructions issued per cycle.
    pub issue_width: usize,
    /// Of which at most this many floating-point.
    pub fp_issue: usize,
    /// Instructions dispatched into the window per cycle.
    pub dispatch_per_cycle: usize,
    /// Issue-window entries (one block's worth).
    pub window_entries: usize,
    /// Architectural registers per bank (128 total / participating cores).
    pub registers: usize,
}

/// Full simulator configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Core pipeline parameters.
    pub core: CoreConfig,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// Next-block predictor parameters.
    pub predictor: PredictorConfig,
    /// Operand-network parameters (TFlex doubles link bandwidth).
    pub operand_net: MeshConfig,
    /// Control-network parameters.
    pub control_net: MeshConfig,
    /// Handshake timing mode.
    pub protocol: ProtocolTiming,
    /// Cycles a NACKed memory request waits before retrying.
    pub nack_retry: u32,
    /// Maximum in-flight blocks per logical processor; `None` means one
    /// per participating core (the TFlex window rule).
    pub max_inflight: Option<usize>,
    /// TRIPS mode: every block is owned and sequenced by core 0
    /// (centralized control/prediction) and the predictor is a single
    /// shared bank.
    pub centralized_control: bool,
    /// Initial stack-pointer value installed in `r126`.
    pub stack_top: u64,
    /// Cycle budget before [`RunError::CycleLimit`](crate::RunError).
    pub max_cycles: u64,
    /// Per-run cycle deadline, enforced by the run-loop watchdog:
    /// crossing it aborts the run with
    /// [`RunError::DeadlineExceeded`](crate::RunError) instead of hanging
    /// until `max_cycles`. Unlike `max_cycles` (a safety net against
    /// simulator bugs), the deadline is a *policy* knob — clp-serve sets
    /// it per job so a runaway simulation is killed and reported as a
    /// retryable deadline kill. `None` (the default) disables it.
    pub deadline: Option<u64>,
    /// Deterministic fault-injection plan ([`FaultPlan::none`] disables
    /// injection entirely and is bit-identical to a fault-free build).
    pub faults: FaultPlan,
    /// Base heartbeat timeout (cycles of protocol silence from a
    /// participating core before the survivors probe it). Only armed when
    /// the fault plan schedules core kills; fault-free runs never pay for
    /// the watchdog.
    pub watchdog_timeout: u64,
    /// Cap on the exponent of the watchdog's bounded exponential backoff:
    /// after each all-alive probe round the timeout doubles, up to
    /// `watchdog_timeout << watchdog_backoff_cap`.
    pub watchdog_backoff_cap: u32,
    /// Worker threads for the sharded mesh stepper; `1` (the default)
    /// steps serially. Any value produces bit-identical cycle counts,
    /// stats, profiles, and trends — sharding only changes *how* the
    /// operand-router phase of each cycle is computed, never its
    /// result.
    pub threads: usize,
}

impl SimConfig {
    /// The TFlex configuration of Table 1: dual-issue (two INT, one FP)
    /// cores, 128-entry windows, partitioned 8 KB I/D caches, 44-entry
    /// LSQ banks, the distributed tournament predictor, and a
    /// double-bandwidth operand mesh.
    #[must_use]
    pub fn tflex() -> Self {
        SimConfig {
            core: CoreConfig {
                issue_width: 2,
                fp_issue: 1,
                dispatch_per_cycle: 4,
                window_entries: 128,
                registers: 128,
            },
            mem: MemConfig::tflex(),
            predictor: PredictorConfig::tflex(),
            operand_net: MeshConfig::tflex_operand(),
            control_net: MeshConfig::control(),
            protocol: ProtocolTiming::Modeled,
            nack_retry: 4,
            max_inflight: None,
            centralized_control: false,
            stack_top: 0x4000_0000,
            max_cycles: 200_000_000,
            deadline: None,
            faults: FaultPlan::none(),
            watchdog_timeout: 64,
            watchdog_backoff_cap: 6,
            threads: 1,
        }
    }

    /// The TRIPS prototype baseline: 16 single-issue tiles, centralized
    /// next-block prediction and control at tile 0, single-bandwidth
    /// operand network, 8 in-flight blocks (1K-instruction window),
    /// slower per-tile dispatch.
    #[must_use]
    pub fn trips() -> Self {
        SimConfig {
            core: CoreConfig {
                issue_width: 1,
                fp_issue: 1,
                dispatch_per_cycle: 1,
                window_entries: 64,
                registers: 128,
            },
            mem: MemConfig::tflex(),
            predictor: PredictorConfig::trips_centralized(),
            operand_net: MeshConfig::trips_operand(),
            control_net: MeshConfig::control(),
            protocol: ProtocolTiming::Modeled,
            nack_retry: 4,
            max_inflight: Some(8),
            centralized_control: true,
            stack_top: 0x4000_0000,
            max_cycles: 200_000_000,
            deadline: None,
            faults: FaultPlan::none(),
            watchdog_timeout: 64,
            watchdog_backoff_cap: 6,
            threads: 1,
        }
    }

    /// The number of cores on the chip.
    #[must_use]
    pub fn chip_cores(&self) -> usize {
        self.operand_net.nodes()
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::tflex()
    }
}

/// Renders the Table 1 parameter listing (used by the `table1` binary).
#[must_use]
pub fn table1_text(cfg: &SimConfig) -> String {
    format!(
        "Table 1: single-core TFlex parameters\n\
         Instruction Supply : partitioned {}KB I-cache ({}-cycle hit); \
         local/gshare tournament predictor ({} bits, {}-cycle latency), \
         speculative updates; Local {}(L1)+{}(L2), Global {}, Choice {}, \
         RAS {}, CTB {}, BTB {}, Btype {}\n\
         Execution          : out-of-order, {}-entry RAM-structured window, \
         dual-issue (up to {} INT, {} FP)\n\
         Data Supply        : partitioned {}KB D-cache ({}-cycle hit, {}-way, \
         1R/1W port); {}-entry LSQ bank; {}MB S-NUCA L2 ({}-way, LRU), \
         L2 hit {}..{} cycles; DRAM {} cycles (unloaded)",
        cfg.mem.l1i_bytes / 1024,
        cfg.mem.l1i_hit_latency,
        cfg.predictor.state_bits(),
        cfg.predictor.latency,
        cfg.predictor.local_l1,
        cfg.predictor.local_l2,
        cfg.predictor.global,
        cfg.predictor.choice,
        cfg.predictor.ras_per_core,
        cfg.predictor.ctb,
        cfg.predictor.btb,
        cfg.predictor.btype,
        cfg.core.window_entries,
        cfg.core.issue_width,
        cfg.core.fp_issue,
        cfg.mem.l1d_bytes / 1024,
        cfg.mem.l1d_hit_latency,
        cfg.mem.l1d_ways,
        cfg.mem.lsq_entries,
        cfg.mem.l2_bytes >> 20,
        cfg.mem.l2_ways,
        cfg.mem.l2_min_latency,
        cfg.mem.l2_max_latency,
        cfg.mem.dram_latency,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tflex_matches_table_1() {
        let c = SimConfig::tflex();
        assert_eq!(c.core.issue_width, 2);
        assert_eq!(c.core.fp_issue, 1);
        assert_eq!(c.core.window_entries, 128);
        assert_eq!(c.chip_cores(), 32);
        assert_eq!(c.operand_net.link_bandwidth, 2);
        assert!(!c.centralized_control);
    }

    #[test]
    fn trips_differs_in_the_documented_ways() {
        let t = SimConfig::trips();
        assert_eq!(t.core.issue_width, 1);
        assert_eq!(t.operand_net.link_bandwidth, 1);
        assert!(t.centralized_control);
        assert_eq!(t.max_inflight, Some(8));
    }

    #[test]
    fn table1_text_mentions_key_values() {
        let s = table1_text(&SimConfig::tflex());
        assert!(s.contains("44-entry LSQ"));
        assert!(s.contains("4MB S-NUCA"));
        assert!(s.contains("128-entry"));
        assert!(s.contains("DRAM 150 cycles"));
    }
}
