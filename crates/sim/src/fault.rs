//! Deterministic fault injection for the distributed protocols.
//!
//! The paper's central claim is that TFlex's fully distributed protocols
//! — fetch hand-off, next-block prediction, operand routing, LSQ
//! NACK/replay, and atomic commit/flush — stay *correct* at every
//! composition from 1 to 32 cores. The happy path exercises very little
//! of that recovery machinery, so this module perturbs the protocols
//! in-flight: it adds operand-NoC hop delays, throttles the mesh into
//! contention bursts, forces LSQ NACKs, flips next-block predictions,
//! spikes DRAM latency, and delays block hand-offs.
//!
//! Two invariants define the layer:
//!
//! 1. **Faults cost cycles, never correctness.** Every perturbation maps
//!    onto a legal timing the protocols must already tolerate (a slower
//!    link, a fuller LSQ, a colder DRAM, a wrong prediction), so an
//!    injected run still verifies against the interpreter golden and
//!    terminates under the existing watchdog.
//! 2. **Determinism.** All randomness comes from a seeded [`Prng`] (a
//!    SplitMix64-initialized xorshift64*, no wall-clock anywhere), and a
//!    rate of zero never consumes PRNG state — so the same seed + the
//!    same plan always reproduces the same cycle count, and
//!    [`FaultPlan::none`] is bit-identical to a build without the layer.
//!
//! Rates are expressed in *per-mille* (0–1000) so the whole plan stays
//! integer-valued, `Eq`-comparable, and serializable alongside
//! [`SimConfig`](crate::SimConfig).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A small deterministic PRNG: SplitMix64 seeding + xorshift64* stream.
///
/// No external crate, no wall-clock, no global state — the sequence is a
/// pure function of the seed, which is what the determinism guarantee
/// (same seed + same plan ⇒ same cycle count) rests on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from `seed` (any value, including 0, is fine:
    /// SplitMix64 scrambling guarantees a nonzero internal state).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // SplitMix64 finalizer — decorrelates consecutive seeds.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Prng {
            state: if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z },
        }
    }

    /// Next 64 pseudo-random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A scheduled permanent core failure: at `cycle`, global core `core`'s
/// pipelines and NoC ports go silent forever.
///
/// Unlike the rate-drawn [`FaultKind`]s, a kill is a *hard* fault: it is
/// scheduled at an exact cycle rather than rolled per decision point
/// (the whole point is that survivors must *detect* the silence through
/// the heartbeat watchdog, then recompose without the dead core). Kills
/// therefore live in their own fixed-size slot list on [`FaultPlan`]
/// instead of carrying a per-mille rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CoreKill {
    /// Global core index (0..chip cores) to silence.
    pub core: u16,
    /// Machine cycle at which the core dies. Must be `>= 1`: cycle 0 is
    /// before the machine ever steps, which the builder rejects.
    pub cycle: u64,
}

impl CoreKill {
    /// Parses the `--kill-core` CLI form `ID@CYCLE`, e.g. `3@1500`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on a malformed spec; validity of
    /// the core/cycle values themselves is checked by
    /// [`FaultPlan::add_kill`].
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (core, cycle) = spec
            .split_once('@')
            .ok_or_else(|| format!("expected ID@CYCLE, got `{spec}`"))?;
        let core: u16 = core
            .trim()
            .parse()
            .map_err(|_| format!("bad core id `{core}` in `{spec}`"))?;
        let cycle: u64 = cycle
            .trim()
            .parse()
            .map_err(|_| format!("bad cycle `{cycle}` in `{spec}`"))?;
        Ok(CoreKill { core, cycle })
    }
}

impl fmt::Display for CoreKill {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.core, self.cycle)
    }
}

/// Maximum scheduled core kills per plan. Fixed-size so [`FaultPlan`]
/// stays `Copy + Eq + Serialize` (the determinism goldens compare whole
/// plans).
pub const MAX_KILLS: usize = 4;

/// Typed rejection from the [`FaultPlan`] kill builder: invalid kill
/// schedules error out instead of being silently ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A kill scheduled at cycle 0 — before the machine ever steps.
    KillCycleZero {
        /// The targeted core.
        core: usize,
    },
    /// More kills than the plan's fixed slots can hold.
    TooManyKills {
        /// The capacity that was exceeded.
        max: usize,
    },
    /// Two kills target the same core (the second could never fire — a
    /// dead core cannot die again).
    DuplicateKillTarget {
        /// The doubly-targeted core.
        core: usize,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::KillCycleZero { core } => {
                write!(f, "kill of core {core} scheduled at cycle 0 (must be >= 1)")
            }
            FaultPlanError::TooManyKills { max } => {
                write!(f, "more than {max} scheduled core kills")
            }
            FaultPlanError::DuplicateKillTarget { core } => {
                write!(f, "core {core} is targeted by more than one kill")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// The distinct protocol perturbations the layer can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Extra hop delay on an operand-network message.
    NocDelay,
    /// A link-contention burst: the operand mesh drops to bandwidth 1.
    NocBurst,
    /// A forced LSQ NACK: the bank refuses a request it could accept.
    ForcedNack,
    /// A flipped next-block prediction (forced mispredict).
    Mispredict,
    /// A DRAM latency spike on a load reply.
    DramSpike,
    /// A delayed block hand-off between fetch owners.
    HandoffDelay,
}

/// All injectable fault kinds, in a stable order.
pub const ALL_FAULT_KINDS: [FaultKind; 6] = [
    FaultKind::NocDelay,
    FaultKind::NocBurst,
    FaultKind::ForcedNack,
    FaultKind::Mispredict,
    FaultKind::DramSpike,
    FaultKind::HandoffDelay,
];

impl FaultKind {
    /// Stable snake_case label (used in traces, stats, and `--faults`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::NocDelay => "noc_delay",
            FaultKind::NocBurst => "noc_burst",
            FaultKind::ForcedNack => "forced_nack",
            FaultKind::Mispredict => "mispredict",
            FaultKind::DramSpike => "dram_spike",
            FaultKind::HandoffDelay => "handoff_delay",
        }
    }

    /// Parses a label produced by [`FaultKind::label`].
    #[must_use]
    pub fn from_label(s: &str) -> Option<Self> {
        ALL_FAULT_KINDS.iter().copied().find(|k| k.label() == s)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A complete, serializable description of what to inject.
///
/// Rates are per-mille probabilities (0–1000) evaluated at each decision
/// point; `*_cycles` fields bound the magnitude of the corresponding
/// perturbation. [`FaultPlan::none`] (the [`Default`]) disables every
/// fault and adds exactly zero overhead to a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// PRNG seed; same seed + same plan ⇒ same cycle count.
    pub seed: u64,
    /// Per-mille chance each operand-NoC message is delayed on injection.
    pub noc_delay_rate: u16,
    /// Maximum extra cycles for a delayed message (uniform in `1..=max`).
    pub noc_delay_cycles: u16,
    /// Per-mille chance, evaluated once per machine cycle, of starting a
    /// link-contention burst on the operand mesh.
    pub noc_burst_rate: u16,
    /// Length of a contention burst in cycles.
    pub noc_burst_cycles: u16,
    /// Per-mille chance a memory request is NACKed before reaching the
    /// LSQ (a forced retry through the existing NACK/replay path).
    pub nack_rate: u16,
    /// Per-mille chance a next-block prediction's target is flipped to a
    /// wrong-but-plausible block address (forced mispredict).
    pub mispredict_rate: u16,
    /// Per-mille chance a load reply is charged a DRAM-class latency
    /// spike on top of its real latency.
    pub dram_spike_rate: u16,
    /// Maximum extra cycles for a DRAM spike (uniform in `1..=max`).
    pub dram_spike_cycles: u16,
    /// Per-mille chance a block hand-off message is delayed.
    pub handoff_delay_rate: u16,
    /// Maximum extra cycles for a delayed hand-off (uniform in `1..=max`).
    pub handoff_delay_cycles: u16,
    /// Scheduled hard core failures, in insertion order (`None` slots
    /// are empty). Populate through [`FaultPlan::add_kill`], which
    /// validates the schedule.
    pub kills: [Option<CoreKill>; MAX_KILLS],
}

/// Default magnitude (cycles) for delay-type faults in [`FaultPlan::chaos`]
/// and `--faults` specs that give a rate but no magnitude.
const DEFAULT_DELAY_CYCLES: u16 = 8;
/// Default burst length for [`FaultKind::NocBurst`].
const DEFAULT_BURST_CYCLES: u16 = 16;
/// Default DRAM-spike magnitude (roughly an extra DRAM round trip).
const DEFAULT_SPIKE_CYCLES: u16 = 150;
/// Default per-mille rate when a `--faults` spec names a kind bare.
const DEFAULT_RATE: u16 = 25;

impl FaultPlan {
    /// The empty plan: no faults, no PRNG consumption, bit-identical
    /// cycle counts to a machine without the fault layer.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            noc_delay_rate: 0,
            noc_delay_cycles: 0,
            noc_burst_rate: 0,
            noc_burst_cycles: 0,
            nack_rate: 0,
            mispredict_rate: 0,
            dram_spike_rate: 0,
            dram_spike_cycles: 0,
            handoff_delay_rate: 0,
            handoff_delay_cycles: 0,
            kills: [None; MAX_KILLS],
        }
    }

    /// A moderate all-faults plan: every kind enabled at `rate` per-mille
    /// with default magnitudes. The standard chaos-suite configuration.
    #[must_use]
    pub fn chaos(seed: u64, rate: u16) -> Self {
        let mut p = FaultPlan::none();
        p.seed = seed;
        for k in ALL_FAULT_KINDS {
            p.enable(k, rate);
        }
        p
    }

    /// A plan with exactly one fault kind enabled at `rate` per-mille
    /// (default magnitude) — what the chaos suite sweeps kind-by-kind.
    #[must_use]
    pub fn only(kind: FaultKind, seed: u64, rate: u16) -> Self {
        let mut p = FaultPlan::none();
        p.seed = seed;
        p.enable(kind, rate);
        p
    }

    /// Enables `kind` at `rate` per-mille with its default magnitude.
    pub fn enable(&mut self, kind: FaultKind, rate: u16) {
        match kind {
            FaultKind::NocDelay => {
                self.noc_delay_rate = rate;
                self.noc_delay_cycles = DEFAULT_DELAY_CYCLES;
            }
            FaultKind::NocBurst => {
                self.noc_burst_rate = rate;
                self.noc_burst_cycles = DEFAULT_BURST_CYCLES;
            }
            FaultKind::ForcedNack => self.nack_rate = rate,
            FaultKind::Mispredict => self.mispredict_rate = rate,
            FaultKind::DramSpike => {
                self.dram_spike_rate = rate;
                self.dram_spike_cycles = DEFAULT_SPIKE_CYCLES;
            }
            FaultKind::HandoffDelay => {
                self.handoff_delay_rate = rate;
                self.handoff_delay_cycles = DEFAULT_DELAY_CYCLES;
            }
        }
    }

    /// True if no fault kind can ever fire under this plan, including
    /// scheduled core kills.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.noc_delay_rate == 0
            && self.noc_burst_rate == 0
            && self.nack_rate == 0
            && self.mispredict_rate == 0
            && self.dram_spike_rate == 0
            && self.handoff_delay_rate == 0
            && !self.has_kills()
    }

    /// True if this plan schedules at least one hard core kill.
    #[must_use]
    pub fn has_kills(&self) -> bool {
        self.kills.iter().any(Option::is_some)
    }

    /// True if this plan consumes PRNG state on *every* machine cycle
    /// rather than per event. Event-driven skip-ahead must step such
    /// runs cycle by cycle: skipping a cycle would skip its draw and
    /// shift the whole downstream fault schedule. `noc_burst` is the
    /// only per-cycle draw (all other kinds roll per message, request,
    /// or prediction, and zero-rate rolls never touch the PRNG).
    #[must_use]
    pub fn has_per_cycle_draws(&self) -> bool {
        self.noc_burst_rate > 0
    }

    /// The scheduled kills, in insertion order.
    pub fn kills(&self) -> impl Iterator<Item = CoreKill> + '_ {
        self.kills.iter().filter_map(|k| *k)
    }

    /// Schedules a hard kill of global core `core` at `cycle`.
    ///
    /// # Errors
    ///
    /// - [`FaultPlanError::KillCycleZero`] if `cycle == 0` (the machine
    ///   never runs a cycle-0 step, so the kill could not fire).
    /// - [`FaultPlanError::DuplicateKillTarget`] if `core` already has a
    ///   scheduled kill (a dead core cannot die again).
    /// - [`FaultPlanError::TooManyKills`] if all [`MAX_KILLS`] slots are
    ///   taken.
    ///
    /// Whether `core` is actually part of a composed processor is only
    /// knowable at run start; the `Machine` validates that separately and
    /// rejects kills aimed outside the composition.
    pub fn add_kill(&mut self, core: usize, cycle: u64) -> Result<(), FaultPlanError> {
        if cycle == 0 {
            return Err(FaultPlanError::KillCycleZero { core });
        }
        if self.kills().any(|k| usize::from(k.core) == core) {
            return Err(FaultPlanError::DuplicateKillTarget { core });
        }
        let slot = self
            .kills
            .iter_mut()
            .find(|s| s.is_none())
            .ok_or(FaultPlanError::TooManyKills { max: MAX_KILLS })?;
        *slot = Some(CoreKill {
            core: core as u16,
            cycle,
        });
        Ok(())
    }

    /// Schedules `count` kills drawn deterministically from a PRNG
    /// *forked* off this plan's seed — plan construction never touches
    /// the runtime injection stream, so adding random kills leaves every
    /// rate-drawn fault sequence bit-identical. Targets are distinct
    /// cores drawn from `candidates` (the composition's participating
    /// cores — mesh regions are not identity-numbered); kill cycles are
    /// uniform in `min_cycle..=max_cycle`.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlanError::TooManyKills`] when `count` exceeds
    /// the free slots. `count` is clamped to `candidates.len() - 1` so
    /// at least one survivor always remains.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` has fewer than two cores or `min_cycle`
    /// is 0 or exceeds `max_cycle`.
    pub fn add_random_kills(
        &mut self,
        candidates: &[usize],
        count: usize,
        min_cycle: u64,
        max_cycle: u64,
    ) -> Result<(), FaultPlanError> {
        assert!(candidates.len() >= 2, "random kills need a survivor");
        assert!(min_cycle >= 1 && min_cycle <= max_cycle);
        // Fork: a distinct stream keyed off the plan seed, so the runtime
        // injector (seeded from `seed` directly) is unaffected.
        let mut prng = Prng::new(self.seed ^ 0x6b69_6c6c_7374_7265); // "killstre"
        let already = self.kills().count();
        let free_targets = candidates.len().saturating_sub(1).saturating_sub(already);
        let count = count.min(free_targets);
        let mut chosen = 0usize;
        while chosen < count {
            let core = candidates[prng.next_below(candidates.len() as u64) as usize];
            if self.kills().any(|k| usize::from(k.core) == core) {
                continue;
            }
            let cycle = min_cycle + prng.next_below(max_cycle - min_cycle + 1);
            self.add_kill(core, cycle)?;
            chosen += 1;
        }
        Ok(())
    }

    /// Parses a `--faults` spec: a comma-separated list of
    /// `kind[=rate_permille]` entries, where `kind` is a
    /// [`FaultKind::label`] or `all`. Bare kinds default to rate
    /// 25&nbsp;‰. Examples: `all=20`, `mispredict=50,forced_nack=100`,
    /// `noc_delay`, `none`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on an unknown kind or a rate
    /// outside `0..=1000`.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        plan.seed = seed;
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(plan);
        }
        for entry in spec.split(',') {
            let entry = entry.trim();
            let (name, rate) = match entry.split_once('=') {
                Some((n, r)) => {
                    let rate: u16 = r
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad rate `{r}` in `{entry}`"))?;
                    if rate > 1000 {
                        return Err(format!("rate {rate} out of range 0..=1000 in `{entry}`"));
                    }
                    (n.trim(), rate)
                }
                None => (entry, DEFAULT_RATE),
            };
            if name == "all" {
                for k in ALL_FAULT_KINDS {
                    plan.enable(k, rate);
                }
            } else {
                let kind = FaultKind::from_label(name).ok_or_else(|| {
                    let labels: Vec<&str> = ALL_FAULT_KINDS.iter().map(|k| k.label()).collect();
                    format!(
                        "unknown fault kind `{name}`; expected one of: all, none, {}",
                        labels.join(", ")
                    )
                })?;
                plan.enable(kind, rate);
            }
        }
        Ok(plan)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Counts of what the injector actually did during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Operand-NoC messages delayed.
    pub noc_delays: u64,
    /// Total extra cycles added to delayed NoC messages.
    pub noc_delay_cycles: u64,
    /// Link-contention bursts started.
    pub noc_bursts: u64,
    /// Total cycles of burst throttling requested.
    pub noc_burst_cycles: u64,
    /// Memory requests NACKed by force.
    pub forced_nacks: u64,
    /// Next-block predictions flipped.
    pub flipped_predictions: u64,
    /// Load replies hit with a DRAM spike.
    pub dram_spikes: u64,
    /// Total extra cycles added by DRAM spikes.
    pub dram_spike_cycles: u64,
    /// Block hand-offs delayed.
    pub handoff_delays: u64,
    /// Total extra cycles added to delayed hand-offs.
    pub handoff_delay_cycles: u64,
}

impl FaultStats {
    /// Total faults injected, across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.noc_delays
            + self.noc_bursts
            + self.forced_nacks
            + self.flipped_predictions
            + self.dram_spikes
            + self.handoff_delays
    }

    /// Injection count for one kind.
    #[must_use]
    pub fn count(&self, kind: FaultKind) -> u64 {
        match kind {
            FaultKind::NocDelay => self.noc_delays,
            FaultKind::NocBurst => self.noc_bursts,
            FaultKind::ForcedNack => self.forced_nacks,
            FaultKind::Mispredict => self.flipped_predictions,
            FaultKind::DramSpike => self.dram_spikes,
            FaultKind::HandoffDelay => self.handoff_delays,
        }
    }

    /// Renders these counters as a stats-registry node named `"faults"`.
    #[must_use]
    pub fn to_node(&self) -> clp_obs::StatsNode {
        clp_obs::StatsNode::new("faults")
            .count("total", self.total())
            .count("noc_delays", self.noc_delays)
            .count("noc_delay_cycles", self.noc_delay_cycles)
            .count("noc_bursts", self.noc_bursts)
            .count("noc_burst_cycles", self.noc_burst_cycles)
            .count("forced_nacks", self.forced_nacks)
            .count("flipped_predictions", self.flipped_predictions)
            .count("dram_spikes", self.dram_spikes)
            .count("dram_spike_cycles", self.dram_spike_cycles)
            .count("handoff_delays", self.handoff_delays)
            .count("handoff_delay_cycles", self.handoff_delay_cycles)
    }
}

/// The runtime half of the layer: a [`FaultPlan`] plus the PRNG stream
/// and injection counters. Owned by the `Machine`, consulted at each
/// protocol decision point.
///
/// Every `roll` with a zero rate returns without touching the PRNG, so a
/// plan with some kinds disabled draws exactly the same stream for the
/// enabled ones regardless of which others exist — and
/// [`FaultPlan::none`] never draws at all.
#[derive(Clone, Copy, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    prng: Prng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector for `plan`, seeding the PRNG from `plan.seed`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            prng: Prng::new(plan.seed),
            stats: FaultStats::default(),
        }
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True if this injector can ever fire (used to skip per-cycle work
    /// entirely on fault-free runs).
    #[must_use]
    pub fn active(&self) -> bool {
        !self.plan.is_none()
    }

    /// What was injected so far.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Bernoulli trial at `rate` per-mille. Zero-rate trials never
    /// consume PRNG state (the bit-identity guarantee for disabled
    /// kinds).
    fn roll(&mut self, rate: u16) -> bool {
        rate != 0 && self.prng.next_below(1000) < u64::from(rate)
    }

    /// Uniform magnitude in `1..=max` (0 if `max` is 0).
    fn magnitude(&mut self, max: u16) -> u64 {
        if max == 0 {
            0
        } else {
            1 + self.prng.next_below(u64::from(max))
        }
    }

    /// Should this operand-NoC message be delayed? Returns the extra
    /// cycles to hold it before injection.
    pub fn noc_delay(&mut self) -> Option<u64> {
        if !self.roll(self.plan.noc_delay_rate) {
            return None;
        }
        let extra = self.magnitude(self.plan.noc_delay_cycles);
        self.stats.noc_delays += 1;
        self.stats.noc_delay_cycles += extra;
        Some(extra)
    }

    /// Should a link-contention burst start this cycle? Returns the
    /// burst length in cycles.
    pub fn noc_burst(&mut self) -> Option<u64> {
        if !self.roll(self.plan.noc_burst_rate) {
            return None;
        }
        let len = u64::from(self.plan.noc_burst_cycles.max(1));
        self.stats.noc_bursts += 1;
        self.stats.noc_burst_cycles += len;
        Some(len)
    }

    /// Should this memory request be NACKed by force?
    pub fn forced_nack(&mut self) -> bool {
        let hit = self.roll(self.plan.nack_rate);
        if hit {
            self.stats.forced_nacks += 1;
        }
        hit
    }

    /// Should this next-block prediction be flipped?
    pub fn flip_prediction(&mut self) -> bool {
        let hit = self.roll(self.plan.mispredict_rate);
        if hit {
            self.stats.flipped_predictions += 1;
        }
        hit
    }

    /// Should this load reply take a DRAM spike? Returns the extra
    /// latency cycles.
    pub fn dram_spike(&mut self) -> Option<u64> {
        if !self.roll(self.plan.dram_spike_rate) {
            return None;
        }
        let extra = self.magnitude(self.plan.dram_spike_cycles);
        self.stats.dram_spikes += 1;
        self.stats.dram_spike_cycles += extra;
        Some(extra)
    }

    /// Should this block hand-off be delayed? Returns the extra cycles.
    pub fn handoff_delay(&mut self) -> Option<u64> {
        if !self.roll(self.plan.handoff_delay_rate) {
            return None;
        }
        let extra = self.magnitude(self.plan.handoff_delay_cycles);
        self.stats.handoff_delays += 1;
        self.stats.handoff_delay_cycles += extra;
        Some(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_deterministic_and_seed_sensitive() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        let mut c = Prng::new(43);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn prng_seed_zero_works() {
        let mut p = Prng::new(0);
        let vals: Vec<u64> = (0..16).map(|_| p.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vals.len(), "no short cycle");
    }

    #[test]
    fn zero_rate_never_consumes_prng() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        let before = inj.prng;
        for _ in 0..1000 {
            assert!(inj.noc_delay().is_none());
            assert!(inj.noc_burst().is_none());
            assert!(!inj.forced_nack());
            assert!(!inj.flip_prediction());
            assert!(inj.dram_spike().is_none());
            assert!(inj.handoff_delay().is_none());
        }
        assert_eq!(inj.prng, before, "disabled faults must not draw");
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn full_rate_always_fires() {
        let mut inj = FaultInjector::new(FaultPlan::chaos(7, 1000));
        for _ in 0..100 {
            assert!(inj.noc_delay().is_some());
            assert!(inj.forced_nack());
        }
        assert_eq!(inj.stats().noc_delays, 100);
        assert_eq!(inj.stats().forced_nacks, 100);
        assert_eq!(inj.stats().count(FaultKind::NocDelay), 100);
    }

    #[test]
    fn moderate_rate_fires_roughly_proportionally() {
        let mut inj = FaultInjector::new(FaultPlan::chaos(1234, 100)); // 10%
        for _ in 0..10_000 {
            inj.forced_nack();
        }
        let n = inj.stats().forced_nacks;
        assert!((700..=1300).contains(&n), "10% of 10k ≈ 1000, got {n}");
    }

    #[test]
    fn magnitudes_stay_in_bounds() {
        let mut inj = FaultInjector::new(FaultPlan::chaos(9, 1000));
        for _ in 0..500 {
            if let Some(d) = inj.noc_delay() {
                assert!((1..=u64::from(DEFAULT_DELAY_CYCLES)).contains(&d));
            }
            if let Some(d) = inj.dram_spike() {
                assert!((1..=u64::from(DEFAULT_SPIKE_CYCLES)).contains(&d));
            }
        }
    }

    #[test]
    fn parse_specs() {
        let p = FaultPlan::parse("all=20", 5).unwrap();
        assert_eq!(p.seed, 5);
        assert!(!p.is_none());
        for k in ALL_FAULT_KINDS {
            // All kinds enabled: each has a nonzero rate.
            let rate = match k {
                FaultKind::NocDelay => p.noc_delay_rate,
                FaultKind::NocBurst => p.noc_burst_rate,
                FaultKind::ForcedNack => p.nack_rate,
                FaultKind::Mispredict => p.mispredict_rate,
                FaultKind::DramSpike => p.dram_spike_rate,
                FaultKind::HandoffDelay => p.handoff_delay_rate,
            };
            assert_eq!(rate, 20, "{k}");
        }

        let p = FaultPlan::parse("mispredict=50, forced_nack", 0).unwrap();
        assert_eq!(p.mispredict_rate, 50);
        assert_eq!(p.nack_rate, DEFAULT_RATE);
        assert_eq!(p.noc_delay_rate, 0);

        assert!(FaultPlan::parse("none", 0).unwrap().is_none());
        assert!(FaultPlan::parse("", 0).unwrap().is_none());
        assert!(FaultPlan::parse("bogus=1", 0).is_err());
        assert!(FaultPlan::parse("nack=2000", 0).is_err()); // unknown + range
        assert!(FaultPlan::parse("mispredict=2000", 0).is_err());
    }

    #[test]
    fn kill_builder_validates() {
        let mut p = FaultPlan::none();
        assert!(!p.has_kills());
        assert_eq!(
            p.add_kill(3, 0),
            Err(FaultPlanError::KillCycleZero { core: 3 })
        );
        assert!(p.is_none(), "rejected kill must not stick");

        p.add_kill(3, 500).unwrap();
        assert!(p.has_kills());
        assert!(!p.is_none(), "a kill plan is not the empty plan");
        assert_eq!(
            p.add_kill(3, 900),
            Err(FaultPlanError::DuplicateKillTarget { core: 3 })
        );

        p.add_kill(1, 100).unwrap();
        p.add_kill(2, 200).unwrap();
        p.add_kill(0, 300).unwrap();
        assert_eq!(
            p.add_kill(4, 400),
            Err(FaultPlanError::TooManyKills { max: MAX_KILLS })
        );
        let kills: Vec<CoreKill> = p.kills().collect();
        assert_eq!(kills.len(), 4);
        assert_eq!(
            kills[0],
            CoreKill {
                core: 3,
                cycle: 500
            }
        );
    }

    #[test]
    fn kill_spec_parses() {
        assert_eq!(
            CoreKill::parse("3@1500"),
            Ok(CoreKill {
                core: 3,
                cycle: 1500
            })
        );
        assert_eq!(CoreKill::parse(" 7 @ 42 "), CoreKill::parse("7@42"));
        assert!(CoreKill::parse("3").is_err());
        assert!(CoreKill::parse("x@5").is_err());
        assert!(CoreKill::parse("3@y").is_err());
        assert_eq!(CoreKill { core: 3, cycle: 9 }.to_string(), "3@9");
    }

    #[test]
    fn random_kills_are_deterministic_and_leave_rates_alone() {
        // A non-identity candidate set, as a mesh sub-region would be.
        let region = [4usize, 5, 12, 13, 20, 21, 28, 29];
        let mut a = FaultPlan::none();
        a.seed = 77;
        a.add_random_kills(&region, 2, 100, 1000).unwrap();
        let mut b = FaultPlan::none();
        b.seed = 77;
        b.add_random_kills(&region, 2, 100, 1000).unwrap();
        assert_eq!(a, b, "same seed must build the same schedule");
        assert_eq!(a.kills().count(), 2);
        for k in a.kills() {
            assert!(region.contains(&usize::from(k.core)));
            assert!((100..=1000).contains(&k.cycle));
        }
        let mut c = FaultPlan::none();
        c.seed = 78;
        c.add_random_kills(&region, 2, 100, 1000).unwrap();
        assert_ne!(a.kills, c.kills, "different seed should diverge");

        // Always leaves a survivor, even when asked not to.
        let mut d = FaultPlan::none();
        d.add_random_kills(&[0, 1], 4, 1, 10).unwrap();
        assert_eq!(d.kills().count(), 1);
    }

    #[test]
    fn labels_round_trip() {
        for k in ALL_FAULT_KINDS {
            assert_eq!(FaultKind::from_label(k.label()), Some(k));
        }
        assert_eq!(FaultKind::from_label("nope"), None);
    }

    #[test]
    fn same_seed_same_stream_different_seed_diverges() {
        let mut a = FaultInjector::new(FaultPlan::chaos(1, 500));
        let mut b = FaultInjector::new(FaultPlan::chaos(1, 500));
        let mut c = FaultInjector::new(FaultPlan::chaos(2, 500));
        let da: Vec<_> = (0..64).map(|_| a.noc_delay()).collect();
        let db: Vec<_> = (0..64).map(|_| b.noc_delay()).collect();
        let dc: Vec<_> = (0..64).map(|_| c.noc_delay()).collect();
        assert_eq!(da, db);
        assert_ne!(da, dc);
    }

    #[test]
    fn stats_node_exposes_counts() {
        let mut inj = FaultInjector::new(FaultPlan::only(FaultKind::Mispredict, 3, 1000));
        for _ in 0..5 {
            inj.flip_prediction();
        }
        let root = clp_obs::StatsNode::new("run").child(inj.stats().to_node());
        let snap = clp_obs::StatsSnapshot {
            cycles: 0,
            root,
            intervals: Vec::new(),
        };
        assert_eq!(snap.expect("faults/flipped_predictions"), 5.0);
        assert_eq!(snap.expect("faults/total"), 5.0);
    }
}
